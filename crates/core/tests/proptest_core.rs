//! Property-based tests on the AutoExecutor core: featurization invariants,
//! training-label fitting, and selection behaviour of predicted models.

use ae_engine::plan::{OperatorKind, PlanNode, QueryPlan};
use ae_ppm::model::PpmKind;
use ae_ppm::selection::slowdown_config;
use autoexecutor::{featurize_plan, full_feature_names, FeatureSet, TrainingData};
use proptest::prelude::*;

/// Builds a random chain-shaped plan from a list of operator choices.
fn plan_strategy() -> impl Strategy<Value = QueryPlan> {
    let ops = prop::collection::vec(0usize..6, 0..12);
    (ops, 1.0f64..1e10, 1.0f64..1e9).prop_map(|(ops, bytes, rows)| {
        let mut node = PlanNode::leaf(OperatorKind::TableScan, rows, bytes);
        for op in ops {
            let kind = match op {
                0 => OperatorKind::Filter,
                1 => OperatorKind::Project,
                2 => OperatorKind::Aggregate,
                3 => OperatorKind::Sort,
                4 => OperatorKind::Window,
                _ => OperatorKind::Exchange,
            };
            let rows = node.estimated_rows * 0.8;
            node = PlanNode::internal(kind, rows, vec![node]);
        }
        QueryPlan::new("prop", node)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Featurization always yields the full-width vector with finite,
    /// non-negative entries, and depth/operator-count features agree with
    /// the plan's own statistics.
    #[test]
    fn featurization_is_well_formed(plan in plan_strategy()) {
        let names = full_feature_names();
        let values = featurize_plan(&plan);
        prop_assert_eq!(values.len(), names.len());
        prop_assert!(values.iter().all(|v| v.is_finite() && *v >= 0.0));
        let stats = plan.stats();
        let idx = |n: &str| names.iter().position(|x| x == n).unwrap();
        prop_assert_eq!(values[idx("NumOps")], stats.total_operators as f64);
        prop_assert_eq!(values[idx("MaxDepth")], stats.max_depth as f64);
        prop_assert_eq!(values[idx("NumInputs")], stats.num_input_sources as f64);
    }

    /// Every feature-set projection selects exactly its declared columns and
    /// never invents values that were not in the full vector.
    #[test]
    fn feature_set_projection_is_a_subset(plan in plan_strategy()) {
        let values = featurize_plan(&plan);
        for set in FeatureSet::ALL {
            let projected = set.project(&values);
            prop_assert_eq!(projected.len(), set.feature_names().len());
            for v in &projected {
                prop_assert!(values.contains(v));
            }
        }
    }

    /// Fitting training labels from an arbitrary monotone curve yields PPMs
    /// that are themselves monotone and non-negative over the full candidate
    /// range — the invariant the optimizer rule depends on.
    #[test]
    fn training_labels_are_monotone_models(
        floor in 5.0f64..200.0,
        scale in 10.0f64..2000.0,
        plan in plan_strategy(),
    ) {
        let counts = [1usize, 3, 8, 16, 32, 48];
        let curve: Vec<(usize, f64)> = counts
            .iter()
            .map(|&n| (n, (scale / n as f64).max(floor) + floor))
            .collect();
        let example = TrainingData::example_from_curve("prop", "prop-family", &plan, &curve, curve[0].1).unwrap();
        for kind in [PpmKind::PowerLaw, PpmKind::Amdahl] {
            let data = TrainingData { examples: vec![example.clone()] };
            let ppm = data.fitted_ppm(0, kind);
            let mut last = f64::INFINITY;
            for n in 1..=48usize {
                let t = ppm.predict(n as f64);
                prop_assert!(t.is_finite() && t >= 0.0);
                prop_assert!(t <= last + 1e-9);
                last = t;
            }
        }
    }

    /// Bounded-slowdown selection over any fitted training label always
    /// returns a configuration within the candidate range and within budget
    /// on the model's own curve.
    #[test]
    fn selection_on_fitted_models_respects_budget(
        floor in 5.0f64..100.0,
        scale in 50.0f64..3000.0,
        h in 1.0f64..2.0,
    ) {
        let counts = [1usize, 3, 8, 16, 32, 48];
        let curve: Vec<(usize, f64)> = counts
            .iter()
            .map(|&n| (n, (scale / n as f64).max(floor) + floor))
            .collect();
        let plan = QueryPlan::new("sel", PlanNode::leaf(OperatorKind::TableScan, 10.0, 100.0));
        let example = TrainingData::example_from_curve("sel", "prop-family", &plan, &curve, curve[0].1).unwrap();
        let data = TrainingData { examples: vec![example] };
        let ppm = data.fitted_ppm(0, PpmKind::PowerLaw);
        let dense = ppm.predict_curve(&(1..=48).collect::<Vec<_>>());
        let selected = slowdown_config(&dense, h).unwrap();
        prop_assert!((1..=48).contains(&selected));
        let t_min = dense.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
        let t_sel = dense.iter().find(|&&(n, _)| n == selected).unwrap().1;
        prop_assert!(t_sel <= t_min * h * (1.0 + 1e-9));
    }
}
