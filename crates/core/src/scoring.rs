//! The shared scoring path of the AutoExecutor rule (Figure 6, steps 3–5).
//!
//! Historically these steps lived inline in
//! [`AutoExecutorRule::apply`](crate::optimizer::AutoExecutorRule); the
//! serving runtime (`ae-serve`) needs the identical arithmetic without the
//! optimizer-rule wrapper, so they are factored out here and both callers
//! funnel through these functions. That sharing is what makes the serving
//! runtime's deterministic-mode guarantee ("bit-identical
//! [`ResourceRequest`]s to the sequential rule") a structural property
//! rather than a test-enforced coincidence.
//!
//! Two entry points:
//!
//! * [`score_features`] — one query: predict the PPM, evaluate the candidate
//!   curve, select an executor count. Returns per-step timings for the
//!   Section 5.6 overhead accounting.
//! * [`score_feature_batch`] — a micro-batch of queries laid out in one
//!   [`FeatureMatrix`]: batched forest inference
//!   ([`ParameterModel::predict_ppm_batch`], the compiled batch-major
//!   kernel accumulating into one flat output buffer) followed by batched
//!   selection ([`SelectionObjective::select_batch`]). Per-row results are
//!   bit-identical to [`score_features`].
//!
//! Both entry points run inference on the model's
//! [`CompiledForest`](ae_ml::compiled::CompiledForest) — flat
//! struct-of-arrays tree arenas compiled once per model — whose
//! predictions are bit-identical to the interpreted forest, so the
//! determinism guarantee is unchanged.

use std::time::{Duration, Instant};

use ae_ml::matrix::FeatureMatrix;
use ae_ppm::risk::PreemptionRisk;
use ae_ppm::selection::SelectionObjective;

use crate::optimizer::ResourceRequest;
use crate::training::ParameterModel;
use crate::{AutoExecutorError, Result};

/// Applies the optional preemption-risk adjustment to a predicted curve.
/// `None` (and inactive models) return the curve unchanged, preserving the
/// bit-identity of the risk-unaware path.
fn apply_risk(curve: Vec<(usize, f64)>, risk: Option<&PreemptionRisk>) -> Vec<(usize, f64)> {
    match risk {
        Some(model) if model.is_active() => model.adjust_samples(&curve),
        _ => curve,
    }
}

/// A scored query plus the per-step latencies of producing it.
#[derive(Debug, Clone)]
pub struct ScoredQuery {
    /// The resource request the optimizer (or serving client) receives.
    pub request: ResourceRequest,
    /// Time spent in parameter-model inference.
    pub inference: Duration,
    /// Time spent in curve evaluation + configuration selection.
    pub selection: Duration,
}

/// Scores one query from its full (Table 2) feature vector.
pub fn score_features(
    model: &ParameterModel,
    full_features: &[f64],
    objective: SelectionObjective,
    candidate_counts: &[usize],
) -> Result<ScoredQuery> {
    score_features_with_risk(model, full_features, objective, candidate_counts, None)
}

/// Like [`score_features`], but with an optional preemption-risk model:
/// the predicted curve is converted to expected runtime under revocation
/// before selection, so larger `n` pays for its exposure. `None` is
/// bit-identical to [`score_features`]. The returned
/// [`ResourceRequest::predicted_curve`] carries the adjusted curve (it is
/// the curve the selection was made on).
pub fn score_features_with_risk(
    model: &ParameterModel,
    full_features: &[f64],
    objective: SelectionObjective,
    candidate_counts: &[usize],
    risk: Option<&PreemptionRisk>,
) -> Result<ScoredQuery> {
    let infer_start = Instant::now();
    let ppm = model.predict_ppm_from_full_features(full_features)?;
    let inference = infer_start.elapsed();

    let select_start = Instant::now();
    let curve = apply_risk(ppm.predict_curve(candidate_counts), risk);
    let executors = objective
        .select(&curve)
        .ok_or_else(|| AutoExecutorError::InvalidModel("empty candidate range".into()))?;
    let selection = select_start.elapsed();

    Ok(ScoredQuery {
        request: ResourceRequest {
            executors,
            predicted_ppm: ppm,
            predicted_curve: curve,
        },
        inference,
        selection,
    })
}

/// Scores a micro-batch of queries whose full feature vectors are laid out
/// row-major in `features`. Output order matches row order.
pub fn score_feature_batch(
    model: &ParameterModel,
    features: &FeatureMatrix,
    objective: SelectionObjective,
    candidate_counts: &[usize],
) -> Result<Vec<ResourceRequest>> {
    score_feature_batch_with_risk(model, features, objective, candidate_counts, None)
}

/// Like [`score_feature_batch`], but with the optional preemption-risk
/// adjustment of [`score_features_with_risk`] applied to every row.
pub fn score_feature_batch_with_risk(
    model: &ParameterModel,
    features: &FeatureMatrix,
    objective: SelectionObjective,
    candidate_counts: &[usize],
    risk: Option<&PreemptionRisk>,
) -> Result<Vec<ResourceRequest>> {
    let ppms = model.predict_ppm_batch(features)?;
    let curves: Vec<Vec<(usize, f64)>> = ppms
        .iter()
        .map(|ppm| apply_risk(ppm.predict_curve(candidate_counts), risk))
        .collect();
    let selected = objective.select_batch(&curves);
    ppms.into_iter()
        .zip(curves)
        .zip(selected)
        .map(|((ppm, curve), executors)| {
            let executors = executors
                .ok_or_else(|| AutoExecutorError::InvalidModel("empty candidate range".into()))?;
            Ok(ResourceRequest {
                executors,
                predicted_ppm: ppm,
                predicted_curve: curve,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AutoExecutorConfig;
    use crate::features::featurize_plan;
    use crate::training::train_from_workload;
    use ae_workload::{ScaleFactor, WorkloadGenerator};

    fn trained_fixture() -> (
        ParameterModel,
        AutoExecutorConfig,
        Vec<ae_engine::QueryPlan>,
    ) {
        let generator = WorkloadGenerator::new(ScaleFactor::SF10);
        let queries: Vec<_> = ["q3", "q19", "q55", "q68", "q79", "q94"]
            .iter()
            .map(|n| generator.instance(n))
            .collect();
        let mut config = AutoExecutorConfig::default();
        config.forest.n_estimators = 10;
        config.training_run.noise_cv = 0.0;
        let (_, model) = train_from_workload(&queries, &config).unwrap();
        let plans = ["q11", "q27", "q42", "q7"]
            .iter()
            .map(|n| generator.instance(n).plan)
            .collect();
        (model, config, plans)
    }

    #[test]
    fn batch_scoring_is_bit_identical_to_single_scoring() {
        let (model, config, plans) = trained_fixture();
        let counts = config.candidate_counts();
        let mut matrix = FeatureMatrix::new(crate::features::full_feature_names().len());
        let mut singles = Vec::new();
        for plan in &plans {
            let features = featurize_plan(plan);
            singles.push(
                score_features(&model, &features, config.objective, &counts)
                    .unwrap()
                    .request,
            );
            matrix.push_row(&features).unwrap();
        }
        let batched = score_feature_batch(&model, &matrix, config.objective, &counts).unwrap();
        assert_eq!(batched.len(), singles.len());
        for (single, batch) in singles.iter().zip(&batched) {
            assert_eq!(single.executors, batch.executors);
            assert_eq!(
                single.predicted_ppm.parameters(),
                batch.predicted_ppm.parameters()
            );
            let single_bits: Vec<(usize, u64)> = single
                .predicted_curve
                .iter()
                .map(|&(n, t)| (n, t.to_bits()))
                .collect();
            let batch_bits: Vec<(usize, u64)> = batch
                .predicted_curve
                .iter()
                .map(|&(n, t)| (n, t.to_bits()))
                .collect();
            assert_eq!(single_bits, batch_bits);
        }
    }

    #[test]
    fn empty_candidate_range_is_an_error() {
        let (model, _, plans) = trained_fixture();
        let features = featurize_plan(&plans[0]);
        assert!(score_features(&model, &features, SelectionObjective::Elbow, &[]).is_err());
        let mut matrix = FeatureMatrix::new(features.len());
        matrix.push_row(&features).unwrap();
        assert!(score_feature_batch(&model, &matrix, SelectionObjective::Elbow, &[]).is_err());
    }

    #[test]
    fn risk_none_is_bit_identical_and_active_risk_shrinks_selection() {
        let (model, config, plans) = trained_fixture();
        let counts = config.candidate_counts();
        let features = featurize_plan(&plans[0]);
        let plain = score_features(&model, &features, config.objective, &counts).unwrap();
        let no_risk =
            score_features_with_risk(&model, &features, config.objective, &counts, None).unwrap();
        assert_eq!(plain.request.executors, no_risk.request.executors);
        let plain_bits: Vec<u64> = plain
            .request
            .predicted_curve
            .iter()
            .map(|&(_, t)| t.to_bits())
            .collect();
        let no_risk_bits: Vec<u64> = no_risk
            .request
            .predicted_curve
            .iter()
            .map(|&(_, t)| t.to_bits())
            .collect();
        assert_eq!(plain_bits, no_risk_bits);

        // A harsh risk model: every extra executor costs a minute of
        // expected recovery per revocation; the selection must not grow.
        let risk = PreemptionRisk::new(0.5, 60.0);
        let risky =
            score_features_with_risk(&model, &features, config.objective, &counts, Some(&risk))
                .unwrap();
        assert!(risky.request.executors <= plain.request.executors);
        // And the adjusted curve is what selection saw: pointwise ≥ plain.
        for (&(n, adj), &(_, base)) in risky
            .request
            .predicted_curve
            .iter()
            .zip(&plain.request.predicted_curve)
        {
            assert!(adj >= base, "E({n})={adj} must dominate t({n})={base}");
        }
    }

    #[test]
    fn batch_risk_matches_single_risk() {
        let (model, config, plans) = trained_fixture();
        let counts = config.candidate_counts();
        let risk = PreemptionRisk::new(0.1, 30.0);
        let mut matrix = FeatureMatrix::new(crate::features::full_feature_names().len());
        let mut singles = Vec::new();
        for plan in &plans {
            let features = featurize_plan(plan);
            singles.push(
                score_features_with_risk(&model, &features, config.objective, &counts, Some(&risk))
                    .unwrap()
                    .request,
            );
            matrix.push_row(&features).unwrap();
        }
        let batched =
            score_feature_batch_with_risk(&model, &matrix, config.objective, &counts, Some(&risk))
                .unwrap();
        for (single, batch) in singles.iter().zip(&batched) {
            assert_eq!(single.executors, batch.executors);
        }
    }

    #[test]
    fn empty_batch_yields_empty_results() {
        let (model, config, _) = trained_fixture();
        let matrix = FeatureMatrix::new(crate::features::full_feature_names().len());
        let out = score_feature_batch(
            &model,
            &matrix,
            config.objective,
            &config.candidate_counts(),
        )
        .unwrap();
        assert!(out.is_empty());
    }
}
