//! System-wide configuration of AutoExecutor.

use ae_engine::cluster::ClusterConfig;
use ae_engine::scheduler::RunConfig;
use ae_ml::forest::RandomForestConfig;
use ae_ppm::model::PpmKind;
use ae_ppm::risk::PreemptionRisk;
use ae_ppm::selection::SelectionObjective;
use ae_workload::BuiltinFamily;
use serde::{Deserialize, Serialize};

use crate::features::FeatureSet;

/// Configuration of the end-to-end AutoExecutor pipeline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AutoExecutorConfig {
    /// Which workload family the offline pipeline trains and evaluates on by
    /// default (the paper's setup uses the TPC-DS-like suite). Harnesses that
    /// sweep several families override this per run.
    pub workload_family: BuiltinFamily,
    /// Which PPM family the parameter model predicts.
    pub ppm_kind: PpmKind,
    /// Which feature set the parameter model is trained on.
    pub feature_set: FeatureSet,
    /// Executor count used for the single training run per query
    /// (the paper runs every training query once at n = 16).
    pub training_run_executors: usize,
    /// Executor counts at which Sparklens estimates are generated to fit the
    /// PPM labels.
    pub training_counts: [usize; 6],
    /// Candidate executor counts considered when selecting a configuration.
    pub min_candidate_executors: usize,
    /// Upper end of the candidate range (48 in the paper's setup).
    pub max_candidate_executors: usize,
    /// The default selection objective of the optimizer rule (the paper's
    /// default picks the point "right before the performance flattens").
    pub objective: SelectionObjective,
    /// Random-forest hyper-parameters for the parameter model.
    pub forest: RandomForestConfig,
    /// Cluster the queries run on.
    pub cluster: ClusterConfig,
    /// Per-run simulation settings used while collecting training data.
    pub training_run: RunConfig,
    /// Optional preemption-risk model: when set, predicted curves are
    /// adjusted to expected runtime under revocation before selection, so
    /// the chosen `n` prices its exposure to spot preemption. `None` (the
    /// default) keeps selection bit-identical to the risk-unaware rule.
    pub preemption_risk: Option<PreemptionRisk>,
}

impl Default for AutoExecutorConfig {
    fn default() -> Self {
        Self {
            workload_family: BuiltinFamily::Tpcds,
            ppm_kind: PpmKind::PowerLaw,
            feature_set: FeatureSet::F0,
            training_run_executors: 16,
            training_counts: [1, 3, 8, 16, 32, 48],
            min_candidate_executors: 1,
            max_candidate_executors: 48,
            objective: SelectionObjective::Elbow,
            forest: RandomForestConfig::paper_default(42),
            cluster: ClusterConfig::paper_default(),
            training_run: RunConfig {
                capture_task_log: true,
                ..RunConfig::default()
            },
            preemption_risk: None,
        }
    }
}

impl AutoExecutorConfig {
    /// The paper's default configuration with the AE_PL model.
    pub fn paper_power_law() -> Self {
        Self::default()
    }

    /// The paper's configuration with the AE_AL (Amdahl) model.
    pub fn paper_amdahl() -> Self {
        Self {
            ppm_kind: PpmKind::Amdahl,
            ..Self::default()
        }
    }

    /// Candidate executor counts as a vector (`min..=max`).
    pub fn candidate_counts(&self) -> Vec<usize> {
        (self.min_candidate_executors..=self.max_candidate_executors).collect()
    }

    /// Sets the selection objective.
    pub fn with_objective(mut self, objective: SelectionObjective) -> Self {
        self.objective = objective;
        self
    }

    /// Sets the PPM family.
    pub fn with_ppm_kind(mut self, kind: PpmKind) -> Self {
        self.ppm_kind = kind;
        self
    }

    /// Sets the feature set (for ablations).
    pub fn with_feature_set(mut self, set: FeatureSet) -> Self {
        self.feature_set = set;
        self
    }

    /// Sets the forest seed (used by cross-validation repeats).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.forest.seed = seed;
        self
    }

    /// Sets the default workload family (cross-family experiments).
    pub fn with_workload_family(mut self, family: BuiltinFamily) -> Self {
        self.workload_family = family;
        self
    }

    /// Sets the preemption-risk model applied before selection.
    pub fn with_preemption_risk(mut self, risk: PreemptionRisk) -> Self {
        self.preemption_risk = Some(risk);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let cfg = AutoExecutorConfig::default();
        assert_eq!(cfg.workload_family, BuiltinFamily::Tpcds);
        assert_eq!(cfg.training_run_executors, 16);
        assert_eq!(cfg.training_counts, [1, 3, 8, 16, 32, 48]);
        assert_eq!(cfg.max_candidate_executors, 48);
        assert_eq!(cfg.forest.n_estimators, 100);
        assert!(cfg.training_run.capture_task_log);
        assert_eq!(cfg.candidate_counts().len(), 48);
    }

    #[test]
    fn builders_override_fields() {
        let cfg = AutoExecutorConfig::paper_amdahl()
            .with_feature_set(FeatureSet::F2)
            .with_objective(SelectionObjective::BoundedSlowdown(1.05))
            .with_workload_family(BuiltinFamily::Skew)
            .with_seed(7);
        assert_eq!(cfg.ppm_kind, PpmKind::Amdahl);
        assert_eq!(cfg.workload_family, BuiltinFamily::Skew);
        assert_eq!(cfg.feature_set, FeatureSet::F2);
        assert_eq!(cfg.forest.seed, 7);
        assert!(matches!(
            cfg.objective,
            SelectionObjective::BoundedSlowdown(h) if (h - 1.05).abs() < 1e-12
        ));
    }
}
