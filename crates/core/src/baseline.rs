//! The non-parametric baseline model the paper contrasts against (§3.4).
//!
//! Instead of predicting a handful of PPM parameters once per query, a
//! non-parametric model regresses the run time directly from
//! `(plan features, executor count)` pairs. That design needs one training
//! row per *(query, configuration)* — `103 × c_tr` rows instead of 103 — and
//! one model scoring per *candidate* configuration instead of one per query.
//! The paper argues the parametric PPM is preferable on training-set size,
//! model size, and scoring cost; this module provides the baseline so those
//! claims can be measured (see `bench_training`'s
//! `training_set_design` group and the unit tests below).

use ae_engine::plan::QueryPlan;
use ae_ml::dataset::Dataset;
use ae_ml::forest::{RandomForestConfig, RandomForestRegressor};
use serde::{Deserialize, Serialize};

use crate::config::AutoExecutorConfig;
use crate::features::{featurize_plan, FeatureSet};
use crate::training::TrainingData;
use crate::{AutoExecutorError, Result};

/// Name of the synthetic "executor count" feature column appended to the
/// plan features.
pub const EXECUTOR_COUNT_FEATURE: &str = "ExecutorCount";

/// A non-parametric run-time model: features + executor count → seconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NonParametricModel {
    forest: RandomForestRegressor,
    feature_set: FeatureSet,
    training_rows: usize,
}

impl NonParametricModel {
    /// Trains the baseline on the same collected training data the
    /// parametric pipeline uses: every `(query, executor count)` point of the
    /// Sparklens-augmented curves becomes one training row.
    pub fn train(data: &TrainingData, config: &AutoExecutorConfig) -> Result<Self> {
        Self::train_with(data, config.feature_set, config.forest)
    }

    /// Trains the baseline with explicit feature-set and forest settings.
    pub fn train_with(
        data: &TrainingData,
        feature_set: FeatureSet,
        forest_config: RandomForestConfig,
    ) -> Result<Self> {
        if data.is_empty() {
            return Err(AutoExecutorError::EmptyWorkload);
        }
        let mut feature_names = feature_set.feature_names();
        feature_names.push(EXECUTOR_COUNT_FEATURE.to_string());
        let mut dataset = Dataset::new(feature_names, vec!["time_secs".to_string()]);
        let mut rows = 0usize;
        for example in &data.examples {
            let projected = feature_set.project(&example.full_features);
            for &(n, t) in &example.sparklens_curve {
                let mut row = projected.clone();
                row.push(n as f64);
                dataset
                    .push_row(format!("{}@{n}", example.name), row, vec![t])
                    .map_err(AutoExecutorError::Ml)?;
                rows += 1;
            }
        }
        let mut forest = RandomForestRegressor::new(forest_config);
        forest.fit(&dataset).map_err(AutoExecutorError::Ml)?;
        Ok(Self {
            forest,
            feature_set,
            training_rows: rows,
        })
    }

    /// Number of rows the training set contained (`queries × configurations`).
    pub fn training_rows(&self) -> usize {
        self.training_rows
    }

    /// Total tree nodes — a proxy for the serialized model size, for
    /// comparison against the parametric model.
    pub fn total_nodes(&self) -> usize {
        self.forest.total_nodes()
    }

    /// Predicts the run time of a plan at one executor count. Note that this
    /// is one forest scoring per candidate configuration.
    pub fn predict_time(&self, plan: &QueryPlan, executors: usize) -> Result<f64> {
        let projected = self.feature_set.project(&featurize_plan(plan));
        let mut row = projected;
        row.push(executors.max(1) as f64);
        let out = self.forest.predict(&row).map_err(AutoExecutorError::Ml)?;
        Ok(out[0])
    }

    /// Predicts the full curve over candidate counts (scores the forest once
    /// per count — the cost the parametric design avoids).
    pub fn predict_curve(&self, plan: &QueryPlan, counts: &[usize]) -> Result<Vec<(usize, f64)>> {
        counts
            .iter()
            .map(|&n| self.predict_time(plan, n).map(|t| (n, t)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::ParameterModel;
    use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};

    fn inputs() -> (Vec<QueryInstance>, AutoExecutorConfig, TrainingData) {
        let generator = WorkloadGenerator::new(ScaleFactor::SF10);
        let queries: Vec<_> = ["q6", "q16", "q28", "q37", "q48", "q59", "q70", "q94"]
            .iter()
            .map(|n| generator.instance(n))
            .collect();
        let mut config = AutoExecutorConfig::default();
        config.forest.n_estimators = 10;
        config.training_run.noise_cv = 0.0;
        let data = TrainingData::collect(&queries, &config).unwrap();
        (queries, config, data)
    }

    #[test]
    fn training_set_is_one_row_per_query_configuration() {
        let (queries, config, data) = inputs();
        let model = NonParametricModel::train(&data, &config).unwrap();
        assert_eq!(
            model.training_rows(),
            queries.len() * config.training_counts.len()
        );
    }

    #[test]
    fn predictions_are_positive_and_roughly_decreasing() {
        let (queries, config, data) = inputs();
        let model = NonParametricModel::train(&data, &config).unwrap();
        for query in &queries {
            let curve = model
                .predict_curve(&query.plan, &config.training_counts)
                .unwrap();
            assert!(curve.iter().all(|&(_, t)| t > 0.0));
            // Unlike the PPM, monotonicity is NOT guaranteed — but the broad
            // trend from n=1 to n=48 must still point downward.
            assert!(
                curve.first().unwrap().1 >= curve.last().unwrap().1 * 0.8,
                "{}: {curve:?}",
                query.name
            );
        }
    }

    #[test]
    fn baseline_model_is_larger_than_parametric_model() {
        // The paper's §3.4 size argument: more training rows produce bigger
        // forests for the same hyper-parameters.
        let (_, config, data) = inputs();
        let baseline = NonParametricModel::train(&data, &config).unwrap();
        let parametric = ParameterModel::train(&data, &config).unwrap();
        assert!(
            baseline.total_nodes() > parametric.forest().total_nodes(),
            "baseline {} nodes vs parametric {}",
            baseline.total_nodes(),
            parametric.forest().total_nodes()
        );
    }

    #[test]
    fn empty_training_data_is_rejected() {
        let config = AutoExecutorConfig::default();
        let empty = TrainingData::default();
        assert!(matches!(
            NonParametricModel::train(&empty, &config),
            Err(AutoExecutorError::EmptyWorkload)
        ));
    }
}
