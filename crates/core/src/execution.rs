//! Executing queries under the allocation policies compared in the paper
//! (Section 5.4, Figures 12 and 13).
//!
//! Three policies are compared per query:
//!
//! * `SA(n)` — static allocation of `n` executors at submission,
//! * `DA(min, max)` — Spark dynamic allocation restricted to a range,
//! * `Rule(n)` — AutoExecutor: a small initial pool, the predicted count
//!   requested when the optimizer rule fires, and reactive deallocation of
//!   idle executors.

use ae_engine::allocation::AllocationPolicy;
use ae_engine::cluster::ClusterConfig;
use ae_engine::scheduler::{QueryRunResult, RunConfig, Simulator};
use ae_engine::stage::StageDag;
use serde::{Deserialize, Serialize};

use crate::{AutoExecutorError, Result};

/// Executes one query under one allocation policy.
pub fn run_with_policy(
    cluster: &ClusterConfig,
    policy: AllocationPolicy,
    name: &str,
    dag: &StageDag,
    run_config: &RunConfig,
) -> Result<QueryRunResult> {
    let simulator = Simulator::new(*cluster, policy).map_err(AutoExecutorError::Engine)?;
    Ok(simulator.run(name, dag, run_config))
}

/// Side-by-side comparison of the three allocation policies for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AllocationComparison {
    /// Query name.
    pub name: String,
    /// The executor count the AutoExecutor rule requested.
    pub predicted_executors: usize,
    /// Static allocation at the maximum (SA(48) in the paper).
    pub static_max: QueryRunResult,
    /// Dynamic allocation over [1, max].
    pub dynamic: QueryRunResult,
    /// The AutoExecutor rule policy.
    pub rule: QueryRunResult,
    /// Whether the query ran long enough for the full predicted request to
    /// be allocated (the ◆ marker in Figure 13).
    pub fully_allocated: bool,
}

impl AllocationComparison {
    /// Ratio of maximum executors: SA(max) / Rule.
    pub fn n_ratio_static(&self) -> f64 {
        ratio(
            self.static_max.max_executors as f64,
            self.rule.max_executors as f64,
        )
    }

    /// Ratio of maximum executors: DA / Rule.
    pub fn n_ratio_dynamic(&self) -> f64 {
        ratio(
            self.dynamic.max_executors as f64,
            self.rule.max_executors as f64,
        )
    }

    /// Ratio of executor occupancy: SA(max) / Rule.
    pub fn auc_ratio_static(&self) -> f64 {
        ratio(
            self.static_max.auc_executor_secs,
            self.rule.auc_executor_secs,
        )
    }

    /// Ratio of executor occupancy: DA / Rule.
    pub fn auc_ratio_dynamic(&self) -> f64 {
        ratio(self.dynamic.auc_executor_secs, self.rule.auc_executor_secs)
    }

    /// Speedup of Rule relative to SA(max): `t_SA / t_Rule` (< 1 means the
    /// rule is slower, as the paper observes due to allocation lag).
    pub fn speedup_vs_static(&self) -> f64 {
        ratio(self.static_max.elapsed_secs, self.rule.elapsed_secs)
    }

    /// Speedup of Rule relative to DA.
    pub fn speedup_vs_dynamic(&self) -> f64 {
        ratio(self.dynamic.elapsed_secs, self.rule.elapsed_secs)
    }
}

fn ratio(numerator: f64, denominator: f64) -> f64 {
    if denominator.abs() < f64::EPSILON {
        0.0
    } else {
        numerator / denominator
    }
}

/// Runs the three policies for one query and packages the comparison.
///
/// `max_executors` is the upper bound shared by SA and DA (48 in the paper);
/// `predicted` is the AutoExecutor prediction for the query.
pub fn compare_allocations(
    cluster: &ClusterConfig,
    name: &str,
    dag: &StageDag,
    predicted: usize,
    max_executors: usize,
    run_config: &RunConfig,
) -> Result<AllocationComparison> {
    let static_max = run_with_policy(
        cluster,
        AllocationPolicy::static_allocation(max_executors),
        name,
        dag,
        run_config,
    )?;
    let dynamic = run_with_policy(
        cluster,
        AllocationPolicy::dynamic(1, max_executors),
        name,
        dag,
        run_config,
    )?;
    let rule = run_with_policy(
        cluster,
        AllocationPolicy::predictive(predicted),
        name,
        dag,
        run_config,
    )?;
    let fully_allocated = rule.max_executors >= predicted;
    Ok(AllocationComparison {
        name: name.to_string(),
        predicted_executors: predicted,
        static_max,
        dynamic,
        rule,
        fully_allocated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_workload::{ScaleFactor, WorkloadGenerator};

    #[test]
    fn comparison_reports_consistent_ratios() {
        let query = WorkloadGenerator::new(ScaleFactor::SF10).instance("q94");
        let comparison = compare_allocations(
            &ClusterConfig::paper_default(),
            "q94",
            &query.dag,
            12,
            48,
            &RunConfig::deterministic(),
        )
        .unwrap();
        // SA(48) allocates the most executors (a short SF=10 query may finish
        // before the last grant wave lands); the rule stays at or below its
        // request.
        assert!(comparison.static_max.max_executors <= 48);
        assert!(comparison.static_max.max_executors >= comparison.rule.max_executors);
        assert!(comparison.rule.max_executors <= 12);
        assert!(comparison.n_ratio_static() >= 1.0);
        assert!(comparison.auc_ratio_static() > 1.0);
        // Speedups are positive finite numbers.
        assert!(comparison.speedup_vs_static() > 0.0);
        assert!(comparison.speedup_vs_dynamic() > 0.0);
    }

    #[test]
    fn fully_allocated_flag_reflects_reaching_the_request() {
        let query = WorkloadGenerator::new(ScaleFactor::SF100).instance("q94");
        // A long SF=100 query easily outlives the allocation ramp for a
        // modest request.
        let comparison = compare_allocations(
            &ClusterConfig::paper_default(),
            "q94",
            &query.dag,
            8,
            48,
            &RunConfig::deterministic(),
        )
        .unwrap();
        assert!(comparison.fully_allocated);
    }

    #[test]
    fn run_with_policy_respects_static_count() {
        let query = WorkloadGenerator::new(ScaleFactor::SF10).instance("q5");
        let result = run_with_policy(
            &ClusterConfig::paper_default(),
            AllocationPolicy::static_allocation(25),
            "q5",
            &query.dag,
            &RunConfig::deterministic(),
        )
        .unwrap();
        assert!(result.max_executors <= 25);
        assert!(result.elapsed_secs > 0.0);
    }
}
