//! Training and scoring overhead measurement (Section 5.6).
//!
//! The paper reports per-step costs of the offline and online pipeline:
//! PPM-parameter fitting per training point, random-forest training time,
//! model size on disk, plan featurization time, one-time model load/setup
//! time, and per-query inference time. [`measure_overheads`] reproduces the
//! same breakdown on a given workload.

use std::time::{Duration, Instant};

use ae_ml::portable::ScoringRuntime;
use ae_ppm::fit::{fit_amdahl, fit_power_law};
use ae_workload::QueryInstance;
use serde::{Deserialize, Serialize};

use crate::config::AutoExecutorConfig;
use crate::features::featurize_plan;
use crate::training::{ParameterModel, TrainingData};
use crate::Result;

/// Measured overheads of the AutoExecutor pipeline.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Number of training queries the measurement used.
    pub training_queries: usize,
    /// Mean time to fit the PPM parameters for one training data point.
    pub ppm_fit_per_point: Duration,
    /// Time to train the random-forest parameter model on the full dataset.
    pub forest_training: Duration,
    /// Size of the exported portable model in bytes.
    pub portable_model_bytes: usize,
    /// Mean plan-featurization time per query.
    pub featurization_per_query: Duration,
    /// One-time model deserialisation (load) time.
    pub model_load: Duration,
    /// One-time scoring-session setup time.
    pub session_setup: Duration,
    /// Mean per-query parameter-model inference time.
    pub inference_per_query: Duration,
}

/// Measures the Section 5.6 overheads on previously collected training data.
pub fn measure_overheads(
    queries: &[QueryInstance],
    data: &TrainingData,
    config: &AutoExecutorConfig,
) -> Result<OverheadReport> {
    // PPM fit time per training point (both model families, as in training).
    let fit_start = Instant::now();
    for example in &data.examples {
        let _ = fit_power_law(&example.sparklens_curve);
        let _ = fit_amdahl(&example.sparklens_curve);
    }
    let ppm_fit_per_point = if data.is_empty() {
        Duration::ZERO
    } else {
        fit_start.elapsed() / data.len() as u32
    };

    // Forest training time.
    let train_start = Instant::now();
    let model = ParameterModel::train(data, config)?;
    let forest_training = train_start.elapsed();

    // Export + measure model size, then load it back through the portable
    // scoring path to time load and session setup.
    let portable = model.to_portable("overheads")?;
    let bytes = portable.to_bytes().map_err(crate::AutoExecutorError::Ml)?;
    let portable_model_bytes = bytes.len();
    let mut runtime = ScoringRuntime::from_bytes(&bytes).map_err(crate::AutoExecutorError::Ml)?;

    // Featurization and inference per query.
    let mut featurization_total = Duration::ZERO;
    let mut inference_total = Duration::ZERO;
    for query in queries {
        let feat_start = Instant::now();
        let features = featurize_plan(&query.plan);
        featurization_total += feat_start.elapsed();

        let projected = config.feature_set.project(&features);
        let infer_start = Instant::now();
        let _ = runtime
            .score(&projected)
            .map_err(crate::AutoExecutorError::Ml)?;
        inference_total += infer_start.elapsed();
    }
    let per_query = |total: Duration| {
        if queries.is_empty() {
            Duration::ZERO
        } else {
            total / queries.len() as u32
        }
    };

    Ok(OverheadReport {
        training_queries: data.len(),
        ppm_fit_per_point,
        forest_training,
        portable_model_bytes,
        featurization_per_query: per_query(featurization_total),
        model_load: runtime.stats().load_time,
        session_setup: runtime.stats().setup_time,
        inference_per_query: per_query(inference_total),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_workload::{ScaleFactor, WorkloadGenerator};

    #[test]
    fn overhead_report_has_sensible_values() {
        let generator = WorkloadGenerator::new(ScaleFactor::SF10);
        let queries: Vec<QueryInstance> = ["q4", "q18", "q52", "q88"]
            .iter()
            .map(|n| generator.instance(n))
            .collect();
        let mut config = AutoExecutorConfig::default();
        config.forest.n_estimators = 10;
        config.training_run.noise_cv = 0.0;
        let data = TrainingData::collect(&queries, &config).unwrap();
        let report = measure_overheads(&queries, &data, &config).unwrap();

        assert_eq!(report.training_queries, 4);
        assert!(report.portable_model_bytes > 0);
        assert!(report.forest_training > Duration::ZERO);
        // Per-query costs are small but non-zero.
        assert!(report.inference_per_query > Duration::ZERO);
        assert!(report.featurization_per_query < Duration::from_secs(1));
    }
}
