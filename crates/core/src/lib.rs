//! # AutoExecutor — predictive price-performance optimization for serverless query processing
//!
//! A from-scratch Rust reproduction of *"Predictive Price-Performance
//! Optimization for Serverless Query Processing"* (Sen, Roy, Jindal — EDBT
//! 2023). AutoExecutor predicts, **before a query runs**, how its run time
//! scales with the number of executors, and uses that prediction to request
//! a near-optimal executor count from inside the query optimizer, combining
//! predictive allocation with reactive deallocation.
//!
//! ## Crate map
//!
//! * [`features`] — Table-2 plan featurization and the F0–F3 ablation sets.
//! * [`config`] — end-to-end pipeline configuration.
//! * [`training`] — training-data collection (single run + Sparklens
//!   augmentation + PPM label fitting) and the random-forest parameter model.
//! * [`registry`] — the model registry (ONNX-registry stand-in): sharded,
//!   read-mostly, handing out `Arc` model handles.
//! * [`optimizer`] — the rule-based optimizer with the AutoExecutor
//!   extension rule (model load/cache → featurize → predict → select →
//!   request).
//! * [`scoring`] — the shared predict/select scoring path driven by both
//!   the optimizer rule and the `ae-serve` concurrent serving runtime
//!   (single-query and batched entry points, bit-identical results).
//! * [`execution`] — running queries under static / dynamic / predictive
//!   allocation policies for the cost-saving comparisons.
//! * [`evaluation`] — ground-truth collection, the `E(n)` metric, repeated
//!   cross-validation, selection-impact and ratio summaries.
//! * [`overheads`] — the Section 5.6 overhead measurements.
//!
//! ## Quickstart
//!
//! ```
//! use autoexecutor::prelude::*;
//! use std::sync::Arc;
//!
//! // A small training workload (synthetic TPC-DS-like queries at SF=10).
//! let generator = WorkloadGenerator::new(ScaleFactor::SF10);
//! let queries: Vec<_> = ["q3", "q19", "q42", "q68", "q94"]
//!     .iter()
//!     .map(|name| generator.instance(name))
//!     .collect();
//!
//! // Train the parameter model (a small forest keeps the doctest fast).
//! let mut config = AutoExecutorConfig::default();
//! config.forest.n_estimators = 10;
//! let (_data, model) = train_from_workload(&queries, &config).unwrap();
//!
//! // Publish it and let the optimizer rule pick an executor count.
//! let registry = Arc::new(ModelRegistry::in_memory());
//! registry.register("ppm", model.to_portable("ppm").unwrap()).unwrap();
//! let optimizer = Optimizer::with_default_rules()
//!     .with_rule(Box::new(AutoExecutorRule::from_config(registry, "ppm", &config)));
//!
//! let outcome = optimizer.optimize(generator.instance("q7").plan).unwrap();
//! let request = outcome.resource_request.unwrap();
//! assert!((1..=48).contains(&request.executors));
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod evaluation;
pub mod execution;
pub mod features;
pub mod optimizer;
pub mod overheads;
pub mod registry;
pub mod scoring;
pub mod sizing;
pub mod training;

/// Errors surfaced by the AutoExecutor pipeline.
#[derive(Debug)]
pub enum AutoExecutorError {
    /// The execution simulator rejected a configuration or DAG.
    Engine(ae_engine::EngineError),
    /// The ML substrate failed (fitting, scoring, serialization).
    Ml(ae_ml::MlError),
    /// PPM fitting failed.
    Fit(ae_ppm::fit::FitError),
    /// A requested model is not present in the registry.
    ModelNotFound(String),
    /// A portable model is structurally incompatible with AutoExecutor.
    InvalidModel(String),
    /// The training workload is empty.
    EmptyWorkload,
}

impl std::fmt::Display for AutoExecutorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutoExecutorError::Engine(e) => write!(f, "engine error: {e}"),
            AutoExecutorError::Ml(e) => write!(f, "ml error: {e}"),
            AutoExecutorError::Fit(e) => write!(f, "ppm fit error: {e}"),
            AutoExecutorError::ModelNotFound(name) => write!(f, "model '{name}' not found"),
            AutoExecutorError::InvalidModel(s) => write!(f, "invalid model: {s}"),
            AutoExecutorError::EmptyWorkload => write!(f, "training workload is empty"),
        }
    }
}

impl std::error::Error for AutoExecutorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AutoExecutorError::Engine(e) => Some(e),
            AutoExecutorError::Ml(e) => Some(e),
            AutoExecutorError::Fit(e) => Some(e),
            _ => None,
        }
    }
}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, AutoExecutorError>;

pub use baseline::NonParametricModel;
pub use config::AutoExecutorConfig;
pub use evaluation::{
    cross_validate, error_by_count, ratio_averages, selection_impacts, ActualRuns,
    CrossValidationConfig, CrossValidationReport,
};
pub use execution::{compare_allocations, run_with_policy, AllocationComparison};
pub use features::{featurize_plan, full_feature_names, FeatureSet};
pub use optimizer::{
    AutoExecutorRule, Optimizer, OptimizerContext, OptimizerRule, ResourceRequest,
};
pub use overheads::{measure_overheads, OverheadReport};
pub use registry::ModelRegistry;
pub use scoring::{score_feature_batch, score_features, ScoredQuery};
pub use sizing::{recommend_sizing, SizingRecommendation};
pub use training::{train_from_workload, ParameterModel, TrainingData, TrainingExample};

/// Commonly used items from this crate and its substrates.
pub mod prelude {
    pub use crate::config::AutoExecutorConfig;
    pub use crate::evaluation::{
        cross_validate, error_by_count, ActualRuns, CrossValidationConfig,
    };
    pub use crate::execution::compare_allocations;
    pub use crate::features::FeatureSet;
    pub use crate::optimizer::{AutoExecutorRule, Optimizer};
    pub use crate::registry::ModelRegistry;
    pub use crate::training::{train_from_workload, ParameterModel, TrainingData};
    pub use ae_engine::{AllocationPolicy, ClusterConfig, RunConfig, Simulator};
    pub use ae_ppm::model::{Ppm, PpmKind};
    pub use ae_ppm::selection::SelectionObjective;
    pub use ae_sparklens::SparklensAnalyzer;
    pub use ae_workload::{ProductionWorkload, ScaleFactor, WorkloadGenerator};
}
