//! Executor-size recommendations: from a predicted PPM to a concrete
//! `(executors, cores-per-executor)` configuration.
//!
//! Section 3.3 of the paper argues that the total core count `k = n × ec` is
//! the knob that matters for performance, and that once `k` is chosen it
//! should be factorized into an executor size that minimizes stranded
//! resources on each node. This module packages that workflow on top of the
//! trained parameter model: predict the price-performance curve, apply a
//! selection objective, convert the chosen executor count into total cores,
//! and factorize it under node constraints.

use ae_engine::plan::QueryPlan;
use ae_ppm::cores::{factorize_total_cores, FactorizationConstraints};
use ae_ppm::selection::SelectionObjective;
use serde::{Deserialize, Serialize};

use crate::training::ParameterModel;
use crate::{AutoExecutorError, Result};

/// A concrete sizing recommendation for one query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SizingRecommendation {
    /// Total cores selected for the query (`k`).
    pub total_cores: usize,
    /// Number of executors (`n`) after factorization.
    pub executors: usize,
    /// Cores per executor (`ec`) after factorization.
    pub cores_per_executor: usize,
    /// Cores stranded per node by the chosen executor size.
    pub stranded_cores_per_node: usize,
    /// Predicted run time at the selected configuration.
    pub predicted_secs: f64,
}

/// Recommends a `(total cores, executors, cores/executor)` configuration for
/// a query plan.
///
/// The parameter model's PPM is evaluated over `candidate_executors`
/// (interpreted at the reference executor size `reference_ec`, the size the
/// model was trained with — 4 cores in the paper). The selection `objective`
/// picks an executor count, which is converted to total cores and factorized
/// under `constraints`. Returns `Ok(None)` when no factorization satisfies
/// the constraints.
pub fn recommend_sizing(
    model: &ParameterModel,
    plan: &QueryPlan,
    objective: SelectionObjective,
    candidate_executors: &[usize],
    reference_ec: usize,
    constraints: &FactorizationConstraints,
) -> Result<Option<SizingRecommendation>> {
    if candidate_executors.is_empty() || reference_ec == 0 {
        return Err(AutoExecutorError::InvalidModel(
            "sizing needs a non-empty candidate range and a positive reference executor size"
                .into(),
        ));
    }
    let ppm = model.predict_ppm(plan)?;
    let curve = ppm.predict_curve(candidate_executors);
    let Some(selected_executors) = objective.select(&curve) else {
        return Ok(None);
    };
    let predicted_secs = ppm.predict(selected_executors as f64);
    let total_cores = selected_executors * reference_ec;
    let Some(factorization) = factorize_total_cores(total_cores, constraints) else {
        return Ok(None);
    };
    Ok(Some(SizingRecommendation {
        total_cores,
        executors: factorization.executors,
        cores_per_executor: factorization.cores_per_executor,
        stranded_cores_per_node: factorization.stranded_cores_per_node,
        predicted_secs,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AutoExecutorConfig;
    use crate::training::train_from_workload;
    use ae_workload::{ScaleFactor, WorkloadGenerator};

    fn trained_model() -> (ParameterModel, AutoExecutorConfig) {
        let generator = WorkloadGenerator::new(ScaleFactor::SF10);
        let queries: Vec<_> = ["q2", "q14", "q26", "q38", "q50", "q62", "q74", "q86"]
            .iter()
            .map(|n| generator.instance(n))
            .collect();
        let mut config = AutoExecutorConfig::default();
        config.forest.n_estimators = 10;
        config.training_run.noise_cv = 0.0;
        let (_, model) = train_from_workload(&queries, &config).unwrap();
        (model, config)
    }

    #[test]
    fn recommendation_preserves_total_cores_and_constraints() {
        let (model, config) = trained_model();
        let plan = WorkloadGenerator::new(ScaleFactor::SF10)
            .instance("q94")
            .plan;
        let constraints = FactorizationConstraints::paper_default();
        let recommendation = recommend_sizing(
            &model,
            &plan,
            config.objective,
            &config.candidate_counts(),
            4,
            &constraints,
        )
        .unwrap()
        .expect("a factorization exists for multiples of 4");
        assert_eq!(
            recommendation.executors * recommendation.cores_per_executor,
            recommendation.total_cores
        );
        assert!(recommendation.cores_per_executor >= constraints.min_cores_per_executor);
        assert!(recommendation.cores_per_executor <= constraints.max_cores_per_executor);
        assert!(recommendation.predicted_secs > 0.0);
    }

    #[test]
    fn tighter_slowdown_budget_never_selects_fewer_cores() {
        let (model, config) = trained_model();
        let plan = WorkloadGenerator::new(ScaleFactor::SF10)
            .instance("q7")
            .plan;
        let constraints = FactorizationConstraints::paper_default();
        let cores_at = |h: f64| {
            recommend_sizing(
                &model,
                &plan,
                SelectionObjective::BoundedSlowdown(h),
                &config.candidate_counts(),
                4,
                &constraints,
            )
            .unwrap()
            .expect("factorization exists")
            .total_cores
        };
        assert!(cores_at(1.0) >= cores_at(1.5));
        assert!(cores_at(1.5) >= cores_at(2.0));
    }

    #[test]
    fn empty_candidates_are_rejected() {
        let (model, _) = trained_model();
        let plan = WorkloadGenerator::new(ScaleFactor::SF10)
            .instance("q7")
            .plan;
        assert!(recommend_sizing(
            &model,
            &plan,
            SelectionObjective::Elbow,
            &[],
            4,
            &FactorizationConstraints::paper_default(),
        )
        .is_err());
    }

    #[test]
    fn infeasible_constraints_return_none() {
        let (model, config) = trained_model();
        let plan = WorkloadGenerator::new(ScaleFactor::SF10)
            .instance("q7")
            .plan;
        // Nodes with almost no memory: no executor size fits.
        let constraints = FactorizationConstraints {
            node_memory_gb: 1.0,
            ..FactorizationConstraints::paper_default()
        };
        let result = recommend_sizing(
            &model,
            &plan,
            config.objective,
            &config.candidate_counts(),
            4,
            &constraints,
        )
        .unwrap();
        assert!(result.is_none());
    }
}
