//! Model registry (Section 4.4).
//!
//! In the paper the trained ONNX models live in a model-management service
//! (Azure ML / MLflow) and are looked up by the optimizer extension before
//! being loaded and cached in-process. [`ModelRegistry`] fills that role: a
//! thread-safe store of [`PortableModel`]s addressable by name, optionally
//! backed by a directory of `.aex` files so models survive process restarts.
//!
//! ## Serving-path design
//!
//! The registry sits on the critical path of every scored query, so it is
//! built read-mostly:
//!
//! * models are stored behind `Arc<PortableModel>` handles and [`load`]
//!   returns a cheap handle clone — the pre-refactor deep copy of the whole
//!   forest per call survives only as the explicit [`load_owned`] shim;
//! * the name → model map is split into [`SHARD_COUNT`] shards, each behind
//!   its own `RwLock`, so concurrent lookups of different models never
//!   contend and lookups of the same model share a read lock;
//! * re-registration is an RCU-style swap: the shard briefly takes a write
//!   lock to replace the `Arc`, while every handle already given out keeps
//!   scoring against the old model until dropped. Readers never block
//!   writers for longer than a handle clone.
//!
//! [`load`]: ModelRegistry::load
//! [`load_owned`]: ModelRegistry::load_owned

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use ae_ml::portable::PortableModel;
use parking_lot::RwLock;

use crate::{AutoExecutorError, Result};

/// Number of independent shards in the in-memory map. A small power of two
/// is plenty: contention is per-name, and serving deployments hold a handful
/// of models (one per workload family).
pub const SHARD_COUNT: usize = 8;

type Shard = RwLock<HashMap<String, Arc<PortableModel>>>;

/// A named store of portable parameter models.
#[derive(Debug)]
pub struct ModelRegistry {
    directory: Option<PathBuf>,
    shards: Vec<Shard>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self {
            directory: None,
            shards: (0..SHARD_COUNT)
                .map(|_| RwLock::new(HashMap::new()))
                .collect(),
        }
    }
}

impl ModelRegistry {
    /// Creates a purely in-memory registry.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Creates a registry backed by a directory of `.aex` files. The
    /// directory is created if missing.
    pub fn with_directory(path: impl AsRef<Path>) -> Result<Self> {
        let dir = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| {
            AutoExecutorError::InvalidModel(format!("cannot create registry dir: {e}"))
        })?;
        Ok(Self {
            directory: Some(dir),
            ..Self::default()
        })
    }

    fn shard_for(&self, name: &str) -> &Shard {
        let mut hasher = DefaultHasher::new();
        name.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Registers (or replaces) a model under `name`. Directory-backed
    /// registries also persist it to `<dir>/<name>.aex`.
    ///
    /// Replacement is RCU-style: handles returned by earlier [`load`] calls
    /// remain valid and keep pointing at the previous model; only new loads
    /// observe the replacement.
    ///
    /// [`load`]: Self::load
    pub fn register(&self, name: &str, model: PortableModel) -> Result<()> {
        if let Some(dir) = &self.directory {
            model
                .save(dir.join(format!("{name}.aex")))
                .map_err(AutoExecutorError::Ml)?;
        }
        let handle = Arc::new(model);
        self.shard_for(name)
            .write()
            .insert(name.to_string(), handle);
        Ok(())
    }

    /// Loads a model by name, returning a shared handle: the in-memory cache
    /// is consulted first (read lock only), then the backing directory (if
    /// any). Disk deserialization happens without any lock held; a
    /// double-checked insert resolves the race when several threads fault
    /// the same model in simultaneously.
    pub fn load(&self, name: &str) -> Result<Arc<PortableModel>> {
        let shard = self.shard_for(name);
        if let Some(model) = shard.read().get(name) {
            return Ok(Arc::clone(model));
        }
        if let Some(dir) = &self.directory {
            let path = dir.join(format!("{name}.aex"));
            if path.exists() {
                // Deserialize outside the lock — models are megabytes of
                // JSON and this must not stall concurrent lookups.
                let model = PortableModel::load(&path).map_err(AutoExecutorError::Ml)?;
                let mut guard = shard.write();
                let entry = guard
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(model));
                return Ok(Arc::clone(entry));
            }
        }
        Err(AutoExecutorError::ModelNotFound(name.to_string()))
    }

    /// Loads a model by name and returns an owned deep copy — the
    /// pre-refactor `load` semantics, kept for callers that genuinely need
    /// to mutate or re-serialize the model. The serving path should use
    /// [`load`](Self::load); cloning a trained forest costs roughly as much
    /// as scoring hundreds of queries.
    pub fn load_owned(&self, name: &str) -> Result<PortableModel> {
        Ok((*self.load(name)?).clone())
    }

    /// Names of all models currently known to the registry (in-memory plus
    /// any `.aex` files in the backing directory).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .shards
            .iter()
            .flat_map(|shard| shard.read().keys().cloned().collect::<Vec<_>>())
            .collect();
        if let Some(dir) = &self.directory {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().is_some_and(|e| e == "aex") {
                        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                            if !names.iter().any(|n| n == stem) {
                                names.push(stem.to_string());
                            }
                        }
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// Removes a model from the registry (memory and disk). Handles already
    /// given out stay usable until dropped.
    pub fn remove(&self, name: &str) -> Result<()> {
        self.shard_for(name).write().remove(name);
        if let Some(dir) = &self.directory {
            let path = dir.join(format!("{name}.aex"));
            if path.exists() {
                std::fs::remove_file(&path).map_err(|e| {
                    AutoExecutorError::InvalidModel(format!("cannot remove model file: {e}"))
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_ml::dataset::Dataset;
    use ae_ml::forest::{RandomForestConfig, RandomForestRegressor};

    fn dummy_model(name: &str) -> PortableModel {
        let mut ds = Dataset::new(vec!["x".into()], vec!["y".into()]);
        for i in 0..12 {
            ds.push_row(format!("r{i}"), vec![i as f64], vec![(i * 2) as f64])
                .unwrap();
        }
        let mut forest = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 3,
            ..Default::default()
        });
        forest.fit(&ds).unwrap();
        PortableModel::from_forest(name, forest).unwrap()
    }

    #[test]
    fn in_memory_register_and_load() {
        let registry = ModelRegistry::in_memory();
        registry.register("pl", dummy_model("pl")).unwrap();
        let loaded = registry.load("pl").unwrap();
        assert_eq!(loaded.name, "pl");
        assert_eq!(registry.names(), vec!["pl".to_string()]);
    }

    #[test]
    fn load_returns_shared_handles_not_copies() {
        let registry = ModelRegistry::in_memory();
        registry.register("shared", dummy_model("shared")).unwrap();
        let a = registry.load("shared").unwrap();
        let b = registry.load("shared").unwrap();
        assert!(Arc::ptr_eq(&a, &b), "load must hand out the same Arc");
        let owned = registry.load_owned("shared").unwrap();
        assert_eq!(owned.name, a.name);
    }

    #[test]
    fn reregistration_swaps_rcu_style() {
        let registry = ModelRegistry::in_memory();
        registry.register("m", dummy_model("v1")).unwrap();
        let old = registry.load("m").unwrap();
        registry.register("m", dummy_model("v2")).unwrap();
        let new = registry.load("m").unwrap();
        assert!(!Arc::ptr_eq(&old, &new));
        // The old handle keeps working after the swap.
        assert_eq!(old.name, "v1");
        assert_eq!(new.name, "v2");
    }

    #[test]
    fn missing_model_is_an_error() {
        let registry = ModelRegistry::in_memory();
        assert!(matches!(
            registry.load("nope"),
            Err(AutoExecutorError::ModelNotFound(_))
        ));
    }

    #[test]
    fn directory_backed_registry_persists_models() {
        let dir = std::env::temp_dir().join(format!("ae_registry_test_{}", std::process::id()));
        let registry = ModelRegistry::with_directory(&dir).unwrap();
        registry
            .register("persisted", dummy_model("persisted"))
            .unwrap();

        // A fresh registry over the same directory finds the model on disk.
        let fresh = ModelRegistry::with_directory(&dir).unwrap();
        assert!(fresh.names().contains(&"persisted".to_string()));
        let loaded = fresh.load("persisted").unwrap();
        assert_eq!(loaded.name, "persisted");
        // The disk fault-in is cached: the next load shares the handle.
        let again = fresh.load("persisted").unwrap();
        assert!(Arc::ptr_eq(&loaded, &again));

        registry.remove("persisted").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_clears_memory_and_names() {
        let registry = ModelRegistry::in_memory();
        registry.register("a", dummy_model("a")).unwrap();
        registry.remove("a").unwrap();
        assert!(registry.names().is_empty());
        assert!(registry.load("a").is_err());
    }

    #[test]
    fn concurrent_loads_share_one_model() {
        let registry = Arc::new(ModelRegistry::in_memory());
        registry.register("hot", dummy_model("hot")).unwrap();
        let reference = registry.load("hot").unwrap();
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || registry.load("hot").unwrap())
            })
            .collect();
        for h in handles {
            let loaded = h.join().unwrap();
            assert!(Arc::ptr_eq(&reference, &loaded));
        }
    }
}
