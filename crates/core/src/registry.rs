//! Model registry (Section 4.4).
//!
//! In the paper the trained ONNX models live in a model-management service
//! (Azure ML / MLflow) and are looked up by the optimizer extension before
//! being loaded and cached in-process. [`ModelRegistry`] fills that role: a
//! thread-safe store of [`PortableModel`]s addressable by name, optionally
//! backed by a directory of `.aex` files so models survive process restarts.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use ae_ml::portable::PortableModel;
use parking_lot::Mutex;

use crate::{AutoExecutorError, Result};

/// A named store of portable parameter models.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    directory: Option<PathBuf>,
    memory: Mutex<HashMap<String, PortableModel>>,
}

impl ModelRegistry {
    /// Creates a purely in-memory registry.
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// Creates a registry backed by a directory of `.aex` files. The
    /// directory is created if missing.
    pub fn with_directory(path: impl AsRef<Path>) -> Result<Self> {
        let dir = path.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(|e| {
            AutoExecutorError::InvalidModel(format!("cannot create registry dir: {e}"))
        })?;
        Ok(Self {
            directory: Some(dir),
            memory: Mutex::new(HashMap::new()),
        })
    }

    /// Registers (or replaces) a model under `name`. Directory-backed
    /// registries also persist it to `<dir>/<name>.aex`.
    pub fn register(&self, name: &str, model: PortableModel) -> Result<()> {
        if let Some(dir) = &self.directory {
            model
                .save(dir.join(format!("{name}.aex")))
                .map_err(AutoExecutorError::Ml)?;
        }
        self.memory.lock().insert(name.to_string(), model);
        Ok(())
    }

    /// Loads a model by name: the in-memory cache is consulted first, then
    /// the backing directory (if any).
    pub fn load(&self, name: &str) -> Result<PortableModel> {
        if let Some(model) = self.memory.lock().get(name) {
            return Ok(model.clone());
        }
        if let Some(dir) = &self.directory {
            let path = dir.join(format!("{name}.aex"));
            if path.exists() {
                let model = PortableModel::load(&path).map_err(AutoExecutorError::Ml)?;
                self.memory.lock().insert(name.to_string(), model.clone());
                return Ok(model);
            }
        }
        Err(AutoExecutorError::ModelNotFound(name.to_string()))
    }

    /// Names of all models currently known to the registry (in-memory plus
    /// any `.aex` files in the backing directory).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.memory.lock().keys().cloned().collect();
        if let Some(dir) = &self.directory {
            if let Ok(entries) = std::fs::read_dir(dir) {
                for entry in entries.flatten() {
                    let path = entry.path();
                    if path.extension().is_some_and(|e| e == "aex") {
                        if let Some(stem) = path.file_stem().and_then(|s| s.to_str()) {
                            if !names.iter().any(|n| n == stem) {
                                names.push(stem.to_string());
                            }
                        }
                    }
                }
            }
        }
        names.sort();
        names
    }

    /// Removes a model from the registry (memory and disk).
    pub fn remove(&self, name: &str) -> Result<()> {
        self.memory.lock().remove(name);
        if let Some(dir) = &self.directory {
            let path = dir.join(format!("{name}.aex"));
            if path.exists() {
                std::fs::remove_file(&path).map_err(|e| {
                    AutoExecutorError::InvalidModel(format!("cannot remove model file: {e}"))
                })?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_ml::dataset::Dataset;
    use ae_ml::forest::{RandomForestConfig, RandomForestRegressor};

    fn dummy_model(name: &str) -> PortableModel {
        let mut ds = Dataset::new(vec!["x".into()], vec!["y".into()]);
        for i in 0..12 {
            ds.push_row(format!("r{i}"), vec![i as f64], vec![(i * 2) as f64])
                .unwrap();
        }
        let mut forest = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 3,
            ..Default::default()
        });
        forest.fit(&ds).unwrap();
        PortableModel::from_forest(name, forest).unwrap()
    }

    #[test]
    fn in_memory_register_and_load() {
        let registry = ModelRegistry::in_memory();
        registry.register("pl", dummy_model("pl")).unwrap();
        let loaded = registry.load("pl").unwrap();
        assert_eq!(loaded.name, "pl");
        assert_eq!(registry.names(), vec!["pl".to_string()]);
    }

    #[test]
    fn missing_model_is_an_error() {
        let registry = ModelRegistry::in_memory();
        assert!(matches!(
            registry.load("nope"),
            Err(AutoExecutorError::ModelNotFound(_))
        ));
    }

    #[test]
    fn directory_backed_registry_persists_models() {
        let dir = std::env::temp_dir().join(format!("ae_registry_test_{}", std::process::id()));
        let registry = ModelRegistry::with_directory(&dir).unwrap();
        registry
            .register("persisted", dummy_model("persisted"))
            .unwrap();

        // A fresh registry over the same directory finds the model on disk.
        let fresh = ModelRegistry::with_directory(&dir).unwrap();
        assert!(fresh.names().contains(&"persisted".to_string()));
        let loaded = fresh.load("persisted").unwrap();
        assert_eq!(loaded.name, "persisted");

        registry.remove("persisted").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_clears_memory_and_names() {
        let registry = ModelRegistry::in_memory();
        registry.register("a", dummy_model("a")).unwrap();
        registry.remove("a").unwrap();
        assert!(registry.names().is_empty());
        assert!(registry.load("a").is_err());
    }
}
