//! Plan featurization — Table 2 of the paper.
//!
//! The parameter model only consumes features available at compile /
//! optimization time: per-operator counts, the total operator count, the
//! maximum plan depth, the number of input sources, the estimated total
//! input bytes, and the estimated total rows processed. No runtime
//! statistics are used (Section 3.4), so the same featurization serves both
//! training and in-optimizer scoring.
//!
//! [`FeatureSet`] additionally captures the reduced feature sets of the
//! Section 5.7 ablation: `F0` (all features), `F1` (top six by permutation
//! importance), `F2` (the two input-size features), and `F3 = F1 − F2`
//! (the four plan-shape features).

use ae_engine::plan::{OperatorKind, PlanStats, QueryPlan};
use serde::{Deserialize, Serialize};

/// Feature name for the estimated total input bytes.
pub const TOTAL_INPUT_BYTES: &str = "TotalInputBytes";
/// Feature name for the estimated total rows processed.
pub const TOTAL_ROWS_PROCESSED: &str = "TotalRowsProcessed";
/// Feature name for the maximum plan depth.
pub const MAX_DEPTH: &str = "MaxDepth";
/// Feature name for the total operator count.
pub const NUM_OPS: &str = "NumOps";
/// Feature name for the number of input sources.
pub const NUM_INPUTS: &str = "NumInputs";

/// The full feature-name list, in column order.
///
/// Order: the 14 operator-count features (in [`OperatorKind::ALL`] order),
/// then `NumOps`, `MaxDepth`, `NumInputs`, `TotalInputBytes`,
/// `TotalRowsProcessed`.
pub fn full_feature_names() -> Vec<String> {
    let mut names: Vec<String> = OperatorKind::ALL
        .iter()
        .map(|k| k.name().to_string())
        .collect();
    names.push(NUM_OPS.to_string());
    names.push(MAX_DEPTH.to_string());
    names.push(NUM_INPUTS.to_string());
    names.push(TOTAL_INPUT_BYTES.to_string());
    names.push(TOTAL_ROWS_PROCESSED.to_string());
    names
}

/// Featurizes plan statistics into the full feature vector (same order as
/// [`full_feature_names`]).
pub fn featurize_stats(stats: &PlanStats) -> Vec<f64> {
    let mut values: Vec<f64> = stats.operator_counts.iter().map(|&c| c as f64).collect();
    values.push(stats.total_operators as f64);
    values.push(stats.max_depth as f64);
    values.push(stats.num_input_sources as f64);
    values.push(stats.total_input_bytes);
    values.push(stats.total_rows_processed);
    values
}

/// Featurizes a query plan (convenience over [`featurize_stats`]).
pub fn featurize_plan(plan: &QueryPlan) -> Vec<f64> {
    featurize_stats(&plan.stats())
}

/// The feature sets of the Section 5.7 ablation study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FeatureSet {
    /// All Table-2 features.
    F0,
    /// The top six features by permutation importance: total input bytes,
    /// total rows processed, max depth, operator count, `Project`, `Filter`.
    F1,
    /// The two input-size features only.
    F2,
    /// The four plan-shape features of F1 (i.e. F1 minus F2).
    F3,
}

impl FeatureSet {
    /// All ablation feature sets, in paper order.
    pub const ALL: [FeatureSet; 4] = [
        FeatureSet::F0,
        FeatureSet::F1,
        FeatureSet::F2,
        FeatureSet::F3,
    ];

    /// Short label as used in the paper ("F0" .. "F3").
    pub fn label(&self) -> &'static str {
        match self {
            FeatureSet::F0 => "F0",
            FeatureSet::F1 => "F1",
            FeatureSet::F2 => "F2",
            FeatureSet::F3 => "F3",
        }
    }

    /// The feature names retained by this set, in column order.
    pub fn feature_names(&self) -> Vec<String> {
        match self {
            FeatureSet::F0 => full_feature_names(),
            FeatureSet::F1 => vec![
                TOTAL_INPUT_BYTES.to_string(),
                TOTAL_ROWS_PROCESSED.to_string(),
                MAX_DEPTH.to_string(),
                NUM_OPS.to_string(),
                OperatorKind::Project.name().to_string(),
                OperatorKind::Filter.name().to_string(),
            ],
            FeatureSet::F2 => vec![
                TOTAL_INPUT_BYTES.to_string(),
                TOTAL_ROWS_PROCESSED.to_string(),
            ],
            FeatureSet::F3 => vec![
                MAX_DEPTH.to_string(),
                NUM_OPS.to_string(),
                OperatorKind::Project.name().to_string(),
                OperatorKind::Filter.name().to_string(),
            ],
        }
    }

    /// Column indices of this set's features within the full feature vector
    /// (ordered as [`full_feature_names`]). Batched scoring computes this
    /// once per batch instead of re-resolving names per row.
    pub fn projection_indices(&self) -> Vec<usize> {
        let full_names = full_feature_names();
        self.feature_names()
            .iter()
            .map(|name| {
                full_names
                    .iter()
                    .position(|n| n == name)
                    .expect("feature-set names are a subset of the full names")
            })
            .collect()
    }

    /// Projects a full feature vector (ordered as [`full_feature_names`])
    /// onto this feature set.
    pub fn project(&self, full_values: &[f64]) -> Vec<f64> {
        self.projection_indices()
            .into_iter()
            .map(|idx| full_values[idx])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_engine::plan::PlanNode;

    fn sample_plan() -> QueryPlan {
        let scan = PlanNode::leaf(OperatorKind::TableScan, 1e6, 2e9);
        let filter = PlanNode::internal(OperatorKind::Filter, 4e5, vec![scan]);
        let agg = PlanNode::internal(OperatorKind::Aggregate, 1e3, vec![filter]);
        QueryPlan::new("sample", agg)
    }

    #[test]
    fn full_feature_vector_has_nineteen_columns() {
        let names = full_feature_names();
        assert_eq!(names.len(), 14 + 5);
        let values = featurize_plan(&sample_plan());
        assert_eq!(values.len(), names.len());
    }

    #[test]
    fn featurization_reflects_plan_contents() {
        let names = full_feature_names();
        let values = featurize_plan(&sample_plan());
        let get = |name: &str| values[names.iter().position(|n| n == name).unwrap()];
        assert_eq!(get("TableScan"), 1.0);
        assert_eq!(get("Filter"), 1.0);
        assert_eq!(get("Aggregate"), 1.0);
        assert_eq!(get("Join"), 0.0);
        assert_eq!(get(NUM_OPS), 3.0);
        assert_eq!(get(MAX_DEPTH), 3.0);
        assert_eq!(get(NUM_INPUTS), 1.0);
        assert!((get(TOTAL_INPUT_BYTES) - 2e9).abs() < 1.0);
        assert!((get(TOTAL_ROWS_PROCESSED) - 1.401e6).abs() < 1e3);
    }

    #[test]
    fn feature_sets_are_subsets_of_full() {
        let full = full_feature_names();
        for set in FeatureSet::ALL {
            for name in set.feature_names() {
                assert!(full.contains(&name), "{name} missing from full set");
            }
        }
        assert_eq!(FeatureSet::F0.feature_names().len(), full.len());
        assert_eq!(FeatureSet::F1.feature_names().len(), 6);
        assert_eq!(FeatureSet::F2.feature_names().len(), 2);
        assert_eq!(FeatureSet::F3.feature_names().len(), 4);
    }

    #[test]
    fn f3_is_f1_minus_f2() {
        let f1: Vec<String> = FeatureSet::F1.feature_names();
        let f2 = FeatureSet::F2.feature_names();
        let f3 = FeatureSet::F3.feature_names();
        for name in &f3 {
            assert!(f1.contains(name));
            assert!(!f2.contains(name));
        }
        assert_eq!(f1.len(), f2.len() + f3.len());
    }

    #[test]
    fn projection_selects_the_right_columns() {
        let values = featurize_plan(&sample_plan());
        let projected = FeatureSet::F2.project(&values);
        assert_eq!(projected.len(), 2);
        assert!((projected[0] - 2e9).abs() < 1.0);
        let f0 = FeatureSet::F0.project(&values);
        assert_eq!(f0, values);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(FeatureSet::F0.label(), "F0");
        assert_eq!(FeatureSet::F3.label(), "F3");
    }
}
