//! A miniature rule-based query optimizer with prediction-based extensions
//! (Section 4 and Figure 6).
//!
//! Spark's optimizer applies rule-based and cost-based transformations and
//! exposes an extension point (SPARK-18127) that AutoExecutor hooks into.
//! This module provides the equivalent structure:
//!
//! * an [`OptimizerRule`] trait applied in sequence over an
//!   [`OptimizerContext`],
//! * two conventional rewrite rules ([`CollapseProjectsRule`],
//!   [`CombineFiltersRule`]) so the pipeline is a real optimizer and the
//!   AutoExecutor rule genuinely runs *last*,
//! * [`AutoExecutorRule`], which performs the five steps of Figure 6:
//!   (1) model load and cache, (2) plan featurization, (3) PPM parameter
//!   prediction, (4) elbow (or other objective) selection, and (5) the
//!   resource request.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ae_engine::plan::{OperatorKind, PlanNode, QueryPlan};
use ae_ml::portable::PortableModel;
use ae_ppm::model::Ppm;
use ae_ppm::selection::SelectionObjective;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::config::AutoExecutorConfig;
use crate::features::featurize_plan;
use crate::registry::ModelRegistry;
use crate::scoring;
use crate::training::ParameterModel;
use crate::Result;

/// The executor request produced by the AutoExecutor rule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResourceRequest {
    /// Executor count requested from the cluster manager.
    pub executors: usize,
    /// The predicted PPM behind the request.
    pub predicted_ppm: Ppm,
    /// The predicted run-time curve over the candidate counts.
    pub predicted_curve: Vec<(usize, f64)>,
}

/// Per-step timing of the AutoExecutor rule (the Section 5.6 overheads).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RuleTimings {
    /// Model load + session setup time (zero after the first query thanks to
    /// caching).
    pub model_load: Duration,
    /// Plan featurization time.
    pub featurization: Duration,
    /// Parameter-model inference time.
    pub inference: Duration,
    /// Configuration-selection time.
    pub selection: Duration,
}

impl RuleTimings {
    /// Total time the rule added to query optimization.
    pub fn total(&self) -> Duration {
        self.model_load + self.featurization + self.inference + self.selection
    }
}

/// Mutable state threaded through the optimizer rules.
#[derive(Debug, Clone)]
pub struct OptimizerContext {
    /// The (possibly rewritten) query plan.
    pub plan: QueryPlan,
    /// Resource request, set by the AutoExecutor rule when present.
    pub resource_request: Option<ResourceRequest>,
    /// Timings of the AutoExecutor rule, when it ran.
    pub rule_timings: Option<RuleTimings>,
}

impl OptimizerContext {
    /// Creates a context for a plan.
    pub fn new(plan: QueryPlan) -> Self {
        Self {
            plan,
            resource_request: None,
            rule_timings: None,
        }
    }
}

/// A single optimizer rule.
pub trait OptimizerRule: Send + Sync {
    /// Human-readable rule name.
    fn name(&self) -> &str;
    /// Applies the rule, mutating the context.
    fn apply(&self, ctx: &mut OptimizerContext) -> Result<()>;
}

/// Collapses adjacent `Project` operators (`Project(Project(x)) → Project(x)`).
#[derive(Debug, Default, Clone, Copy)]
pub struct CollapseProjectsRule;

impl OptimizerRule for CollapseProjectsRule {
    fn name(&self) -> &str {
        "CollapseProjects"
    }

    fn apply(&self, ctx: &mut OptimizerContext) -> Result<()> {
        fn rewrite(node: PlanNode) -> PlanNode {
            let mut node = node;
            node.children = node.children.into_iter().map(rewrite).collect();
            if node.kind == OperatorKind::Project
                && node.children.len() == 1
                && node.children[0].kind == OperatorKind::Project
            {
                let mut child = node.children.pop().expect("checked length");
                child.estimated_rows = node.estimated_rows;
                return child;
            }
            node
        }
        let root = std::mem::replace(
            &mut ctx.plan.root,
            PlanNode::leaf(OperatorKind::LocalRelation, 0.0, 0.0),
        );
        ctx.plan.root = rewrite(root);
        Ok(())
    }
}

/// Combines adjacent `Filter` operators (`Filter(Filter(x)) → Filter(x)`).
#[derive(Debug, Default, Clone, Copy)]
pub struct CombineFiltersRule;

impl OptimizerRule for CombineFiltersRule {
    fn name(&self) -> &str {
        "CombineFilters"
    }

    fn apply(&self, ctx: &mut OptimizerContext) -> Result<()> {
        fn rewrite(node: PlanNode) -> PlanNode {
            let mut node = node;
            node.children = node.children.into_iter().map(rewrite).collect();
            if node.kind == OperatorKind::Filter
                && node.children.len() == 1
                && node.children[0].kind == OperatorKind::Filter
            {
                let mut child = node.children.pop().expect("checked length");
                // The combined filter keeps the more selective estimate.
                child.estimated_rows = child.estimated_rows.min(node.estimated_rows);
                return child;
            }
            node
        }
        let root = std::mem::replace(
            &mut ctx.plan.root,
            PlanNode::leaf(OperatorKind::LocalRelation, 0.0, 0.0),
        );
        ctx.plan.root = rewrite(root);
        Ok(())
    }
}

/// The prediction-based rule: loads the parameter model from the registry
/// (decoded once and cached; revalidated by handle identity so a re-registered
/// model is picked up), featurizes the optimized plan, predicts the PPM,
/// selects an executor count for the configured objective, and records the
/// resource request.
pub struct AutoExecutorRule {
    registry: Arc<ModelRegistry>,
    model_name: String,
    objective: SelectionObjective,
    candidate_counts: Vec<usize>,
    /// Optional preemption-risk model applied to predicted curves before
    /// selection (`None` keeps the rule bit-identical to the risk-unaware
    /// path).
    preemption_risk: Option<ae_ppm::risk::PreemptionRisk>,
    /// `(registry handle, decoded model)`: the handle pins which registry
    /// version the decoded model came from, so a re-registration (an
    /// RCU-style `Arc` swap in the registry) is detected by pointer
    /// identity and picked up on the next query — the same protocol the
    /// `ae-serve` runtime uses, keeping the two paths in lock-step.
    cached_model: Mutex<Option<(Arc<PortableModel>, Arc<ParameterModel>)>>,
}

impl std::fmt::Debug for AutoExecutorRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AutoExecutorRule")
            .field("model_name", &self.model_name)
            .field("objective", &self.objective)
            .field("cached", &self.cached_model.lock().is_some())
            .finish()
    }
}

impl AutoExecutorRule {
    /// Creates the rule over a registry and model name.
    pub fn new(
        registry: Arc<ModelRegistry>,
        model_name: impl Into<String>,
        objective: SelectionObjective,
        candidate_counts: Vec<usize>,
    ) -> Self {
        Self {
            registry,
            model_name: model_name.into(),
            objective,
            candidate_counts,
            preemption_risk: None,
            cached_model: Mutex::new(None),
        }
    }

    /// Creates the rule from an [`AutoExecutorConfig`] (including its
    /// optional preemption-risk model).
    pub fn from_config(
        registry: Arc<ModelRegistry>,
        model_name: impl Into<String>,
        config: &AutoExecutorConfig,
    ) -> Self {
        let mut rule = Self::new(
            registry,
            model_name,
            config.objective,
            config.candidate_counts(),
        );
        rule.preemption_risk = config.preemption_risk;
        rule
    }

    /// Sets the preemption-risk model applied before selection.
    pub fn with_preemption_risk(mut self, risk: ae_ppm::risk::PreemptionRisk) -> Self {
        self.preemption_risk = Some(risk);
        self
    }

    /// Whether the parameter model is already cached in-process.
    pub fn is_model_cached(&self) -> bool {
        self.cached_model.lock().is_some()
    }

    /// Loads (and caches) the decoded parameter model. Every call fetches
    /// the current registry handle (a cheap `Arc` clone under a shard read
    /// lock) and revalidates the cache by pointer identity, so model
    /// re-registration is observed on the next query. The mutex guards only
    /// the cache lookup and the final insert — model deserialization runs
    /// with no lock held, so a cold-start (or model-swap) query cannot
    /// stall concurrent queries that already hold the current model. If
    /// several threads race through the decode path, the first insert wins
    /// and the losers adopt it (double-checked insert).
    fn load_model(&self) -> Result<Arc<ParameterModel>> {
        let portable = self.registry.load(&self.model_name)?;
        {
            let cache = self.cached_model.lock();
            if let Some((handle, model)) = cache.as_ref() {
                if Arc::ptr_eq(handle, &portable) {
                    return Ok(Arc::clone(model));
                }
            }
        }
        let model = Arc::new(ParameterModel::from_portable(&portable)?);
        let mut cache = self.cached_model.lock();
        match cache.as_ref() {
            Some((handle, existing)) if Arc::ptr_eq(handle, &portable) => Ok(Arc::clone(existing)),
            _ => {
                *cache = Some((portable, Arc::clone(&model)));
                Ok(model)
            }
        }
    }
}

impl OptimizerRule for AutoExecutorRule {
    fn name(&self) -> &str {
        "AutoExecutor"
    }

    fn apply(&self, ctx: &mut OptimizerContext) -> Result<()> {
        // Step 1: model load and cache.
        let load_start = Instant::now();
        let model = self.load_model()?;
        let model_load = load_start.elapsed();

        // Step 2: plan featurization.
        let feat_start = Instant::now();
        let features = featurize_plan(&ctx.plan);
        let featurization = feat_start.elapsed();

        // Steps 3–5: prediction, selection, resource request — the shared
        // scoring path, also driven (batched) by the `ae-serve` runtime.
        let scored = scoring::score_features_with_risk(
            &model,
            &features,
            self.objective,
            &self.candidate_counts,
            self.preemption_risk.as_ref(),
        )?;
        ctx.resource_request = Some(scored.request);
        ctx.rule_timings = Some(RuleTimings {
            model_load,
            featurization,
            inference: scored.inference,
            selection: scored.selection,
        });
        Ok(())
    }
}

/// The optimizer: an ordered pipeline of rules.
pub struct Optimizer {
    rules: Vec<Box<dyn OptimizerRule>>,
}

impl std::fmt::Debug for Optimizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.rules.iter().map(|r| r.name()).collect();
        f.debug_struct("Optimizer").field("rules", &names).finish()
    }
}

impl Optimizer {
    /// Creates an optimizer with the two conventional rewrite rules.
    pub fn with_default_rules() -> Self {
        Self {
            rules: vec![Box::new(CollapseProjectsRule), Box::new(CombineFiltersRule)],
        }
    }

    /// Creates an empty optimizer (no rules).
    pub fn empty() -> Self {
        Self { rules: Vec::new() }
    }

    /// Appends an extension rule at the end of the pipeline. The
    /// AutoExecutor rule is "the last rule invoked once per query"
    /// (Section 5.6), so registering it last mirrors the paper.
    pub fn with_rule(mut self, rule: Box<dyn OptimizerRule>) -> Self {
        self.rules.push(rule);
        self
    }

    /// Names of the registered rules, in application order.
    pub fn rule_names(&self) -> Vec<&str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Runs all rules over the plan and returns the final context.
    pub fn optimize(&self, plan: QueryPlan) -> Result<OptimizerContext> {
        let mut ctx = OptimizerContext::new(plan);
        for rule in &self.rules {
            rule.apply(&mut ctx)?;
        }
        Ok(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::train_from_workload;
    use crate::AutoExecutorError;
    use ae_workload::{ScaleFactor, WorkloadGenerator};

    fn nested_projects_plan() -> QueryPlan {
        let scan = PlanNode::leaf(OperatorKind::TableScan, 1000.0, 1e6);
        let p1 = PlanNode::internal(OperatorKind::Project, 1000.0, vec![scan]);
        let p2 = PlanNode::internal(OperatorKind::Project, 900.0, vec![p1]);
        let f1 = PlanNode::internal(OperatorKind::Filter, 500.0, vec![p2]);
        let f2 = PlanNode::internal(OperatorKind::Filter, 300.0, vec![f1]);
        QueryPlan::new("nested", f2)
    }

    #[test]
    fn rewrite_rules_collapse_adjacent_operators() {
        let optimizer = Optimizer::with_default_rules();
        let ctx = optimizer.optimize(nested_projects_plan()).unwrap();
        let stats = ctx.plan.stats();
        assert_eq!(stats.count_of(OperatorKind::Project), 1);
        assert_eq!(stats.count_of(OperatorKind::Filter), 1);
        assert_eq!(stats.count_of(OperatorKind::TableScan), 1);
        assert!(ctx.resource_request.is_none());
    }

    #[test]
    fn autoexecutor_rule_requests_resources_and_caches_model() {
        let generator = WorkloadGenerator::new(ScaleFactor::SF10);
        let queries: Vec<_> = ["q3", "q19", "q55", "q68", "q79", "q94"]
            .iter()
            .map(|n| generator.instance(n))
            .collect();
        let mut config = AutoExecutorConfig::default();
        config.forest.n_estimators = 10;
        config.training_run.noise_cv = 0.0;
        let (_, model) = train_from_workload(&queries, &config).unwrap();

        let registry = Arc::new(ModelRegistry::in_memory());
        registry
            .register("ppm", model.to_portable("ppm").unwrap())
            .unwrap();
        let rule = AutoExecutorRule::from_config(Arc::clone(&registry), "ppm", &config);
        assert!(!rule.is_model_cached());

        let optimizer = Optimizer::with_default_rules().with_rule(Box::new(rule));
        assert_eq!(
            optimizer.rule_names(),
            vec!["CollapseProjects", "CombineFilters", "AutoExecutor"]
        );

        let test_plan = generator.instance("q11").plan;
        let ctx = optimizer.optimize(test_plan).unwrap();
        let request = ctx.resource_request.expect("rule sets a request");
        assert!(request.executors >= 1 && request.executors <= 48);
        assert_eq!(request.predicted_curve.len(), 48);
        let timings = ctx.rule_timings.expect("rule records timings");
        assert!(timings.total() > Duration::ZERO);

        // Second query: the model is served from the in-process cache.
        let ctx2 = optimizer.optimize(generator.instance("q27").plan).unwrap();
        let t2 = ctx2.rule_timings.unwrap();
        assert!(t2.model_load <= timings.model_load);
    }

    #[test]
    fn reregistered_model_is_picked_up_by_the_rule() {
        let generator = WorkloadGenerator::new(ScaleFactor::SF10);
        let queries: Vec<_> = ["q3", "q19", "q55", "q68", "q79", "q94"]
            .iter()
            .map(|n| generator.instance(n))
            .collect();
        let mut config = AutoExecutorConfig::default();
        config.forest.n_estimators = 8;
        config.training_run.noise_cv = 0.0;
        let (_, model_a) = train_from_workload(&queries, &config).unwrap();
        let (_, model_b) = train_from_workload(&queries, &config.with_seed(99)).unwrap();

        let registry = Arc::new(ModelRegistry::in_memory());
        registry
            .register("ppm", model_a.to_portable("ppm").unwrap())
            .unwrap();
        let rule = AutoExecutorRule::from_config(Arc::clone(&registry), "ppm", &config);
        let optimizer = Optimizer::empty().with_rule(Box::new(rule));

        let plan = generator.instance("q11").plan;
        let before = optimizer.optimize(plan.clone()).unwrap();

        // An RCU swap in the registry must reach the cached rule too.
        registry
            .register("ppm", model_b.to_portable("ppm").unwrap())
            .unwrap();
        let after = optimizer.optimize(plan).unwrap();
        assert_ne!(
            before.resource_request.unwrap().predicted_ppm.parameters(),
            after.resource_request.unwrap().predicted_ppm.parameters(),
            "a different forest must predict different parameters"
        );
    }

    #[test]
    fn missing_model_surfaces_as_error() {
        let registry = Arc::new(ModelRegistry::in_memory());
        let rule = AutoExecutorRule::new(
            registry,
            "absent",
            SelectionObjective::Elbow,
            (1..=48).collect(),
        );
        let optimizer = Optimizer::empty().with_rule(Box::new(rule));
        let plan = nested_projects_plan();
        assert!(matches!(
            optimizer.optimize(plan),
            Err(AutoExecutorError::ModelNotFound(_))
        ));
    }
}
