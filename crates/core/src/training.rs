//! Training-data collection and the parameter model (Sections 3.4 and 4.1–4.2).
//!
//! The pipeline mirrors Figure 6's offline half:
//!
//! 1. run each training query **once** at `n = 16` and capture its task log
//!    (query-plan telemetry),
//! 2. augment with Sparklens estimates of the run time at the other
//!    training executor counts,
//! 3. fit the PPM parameters to that per-query curve (these become the
//!    labels),
//! 4. featurize the query plan (Table 2) and train a Random Forest mapping
//!    features → PPM parameters — one training row per query.

use std::sync::Arc;

use ae_engine::allocation::AllocationPolicy;
use ae_engine::plan::QueryPlan;
use ae_engine::scheduler::Simulator;
use ae_ml::compiled::CompiledForest;
use ae_ml::dataset::Dataset;
use ae_ml::forest::{RandomForestConfig, RandomForestRegressor};
use ae_ml::matrix::FeatureMatrix;
use ae_ml::portable::PortableModel;
use ae_ppm::fit::{fit_amdahl, fit_power_law};
use ae_ppm::model::{AmdahlPpm, PowerLawPpm, Ppm, PpmKind};
use ae_sparklens::SparklensAnalyzer;
use ae_workload::QueryInstance;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::config::AutoExecutorConfig;
use crate::features::{featurize_plan, full_feature_names, FeatureSet};
use crate::{AutoExecutorError, Result};

/// One training example: a query's features, its Sparklens curve, and the
/// PPM parameters fitted to that curve (for both model families).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainingExample {
    /// Query name.
    pub name: String,
    /// Registry key of the workload family the query came from (e.g.
    /// `"tpcds"`); empty for curves supplied without family provenance.
    pub family: String,
    /// Full Table-2 feature vector (ordered as
    /// [`crate::features::full_feature_names`]).
    pub full_features: Vec<f64>,
    /// Sparklens run-time estimates at the training executor counts.
    pub sparklens_curve: Vec<(usize, f64)>,
    /// Elapsed time of the single observed run (at the training executor count).
    pub observed_elapsed_secs: f64,
    /// Fitted power-law parameters.
    pub power_law: PowerLawPpm,
    /// Fitted Amdahl parameters.
    pub amdahl: AmdahlPpm,
}

/// A collected training set: one example per query.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingData {
    /// The examples, in workload order.
    pub examples: Vec<TrainingExample>,
}

impl TrainingData {
    /// Collects training data for a workload by running each query once at
    /// the configured training executor count and extrapolating with
    /// Sparklens (Section 4.1).
    ///
    /// Queries are simulated in parallel; each query's run seeds its noise
    /// generator from `training_run.seed + query_index` exactly as the
    /// sequential loop did, so the collected data is bit-identical at any
    /// worker-thread count.
    pub fn collect(queries: &[QueryInstance], config: &AutoExecutorConfig) -> Result<Self> {
        let simulator = Simulator::new(
            config.cluster,
            AllocationPolicy::static_allocation(config.training_run_executors),
        )
        .map_err(AutoExecutorError::Engine)?;
        let analyzer = SparklensAnalyzer::paper_default();

        let indexed: Vec<(usize, &QueryInstance)> = queries.iter().enumerate().collect();
        let examples = indexed
            .into_par_iter()
            .map(|(idx, query)| {
                let run_cfg = ae_engine::scheduler::RunConfig {
                    seed: config.training_run.seed.wrapping_add(idx as u64),
                    capture_task_log: true,
                    ..config.training_run
                };
                let result = simulator.run(&query.name, &query.dag, &run_cfg);
                let log = result
                    .task_log
                    .as_ref()
                    .expect("task log capture was requested");
                let curve = analyzer.estimate_from_log(log, &config.training_counts);
                Self::example_from_curve(
                    &query.name,
                    &query.family,
                    &query.plan,
                    &curve,
                    result.elapsed_secs,
                )
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { examples })
    }

    /// Builds a training example from an already-available run-time curve
    /// (Sparklens estimates or actual runs — the paper supports both).
    pub fn example_from_curve(
        name: &str,
        family: &str,
        plan: &QueryPlan,
        curve: &[(usize, f64)],
        observed_elapsed_secs: f64,
    ) -> Result<TrainingExample> {
        let power_law = fit_power_law(curve).map_err(AutoExecutorError::Fit)?;
        let amdahl = fit_amdahl(curve).map_err(AutoExecutorError::Fit)?;
        Ok(TrainingExample {
            name: name.to_string(),
            family: family.to_string(),
            full_features: featurize_plan(plan),
            sparklens_curve: curve.to_vec(),
            observed_elapsed_secs,
            power_law,
            amdahl,
        })
    }

    /// Number of examples (one per query).
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// True when no examples have been collected.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// Restricts the data to the examples at `indices` (cross-validation).
    pub fn subset(&self, indices: &[usize]) -> TrainingData {
        TrainingData {
            examples: indices.iter().map(|&i| self.examples[i].clone()).collect(),
        }
    }

    /// The distinct workload families represented in the data, in first-seen
    /// order (one entry for single-family data, several after merging).
    pub fn families(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for example in &self.examples {
            if !seen.contains(&example.family) {
                seen.push(example.family.clone());
            }
        }
        seen
    }

    /// Restricts the data to the examples of one workload family.
    pub fn family_subset(&self, family: &str) -> TrainingData {
        TrainingData {
            examples: self
                .examples
                .iter()
                .filter(|e| e.family == family)
                .cloned()
                .collect(),
        }
    }

    /// Concatenates another collection's examples onto this one (mixed-family
    /// training sets).
    pub fn merge(&mut self, other: TrainingData) {
        self.examples.extend(other.examples);
    }

    /// The PPM fitted to a given example for the requested family.
    pub fn fitted_ppm(&self, idx: usize, kind: PpmKind) -> Ppm {
        match kind {
            PpmKind::PowerLaw => Ppm::PowerLaw(self.examples[idx].power_law),
            PpmKind::Amdahl => Ppm::Amdahl(self.examples[idx].amdahl),
        }
    }

    /// Converts the examples into an `ae-ml` dataset for the requested PPM
    /// family and feature set: one row per query, features → PPM parameters.
    pub fn to_dataset(&self, kind: PpmKind, feature_set: FeatureSet) -> Result<Dataset> {
        let feature_names = feature_set.feature_names();
        let target_names: Vec<String> = kind
            .parameter_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut dataset = Dataset::new(feature_names, target_names);
        for example in &self.examples {
            let features = feature_set.project(&example.full_features);
            let targets = match kind {
                PpmKind::PowerLaw => vec![
                    example.power_law.a,
                    example.power_law.b,
                    example.power_law.m,
                ],
                PpmKind::Amdahl => vec![example.amdahl.s, example.amdahl.p],
            };
            dataset
                .push_row(example.name.clone(), features, targets)
                .map_err(AutoExecutorError::Ml)?;
        }
        Ok(dataset)
    }
}

/// The trained parameter model: a random forest predicting PPM parameters
/// from compile-time plan features.
///
/// The fitted forest is carried in both representations: the interpreted
/// [`RandomForestRegressor`] (training-time tooling walks it) and the
/// [`CompiledForest`] every scoring path runs on — flat struct-of-arrays
/// tree arenas with a pooled leaf table, compiled once per model, with
/// predictions bit-identical to the interpreter.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParameterModel {
    forest: RandomForestRegressor,
    compiled: Arc<CompiledForest>,
    kind: PpmKind,
    feature_set: FeatureSet,
}

impl ParameterModel {
    /// Trains the parameter model on collected training data using the
    /// pipeline configuration.
    pub fn train(data: &TrainingData, config: &AutoExecutorConfig) -> Result<Self> {
        let dataset = data.to_dataset(config.ppm_kind, config.feature_set)?;
        Self::train_on_dataset(&dataset, config.ppm_kind, config.feature_set, config.forest)
    }

    /// Trains the parameter model on an explicit dataset (used by the
    /// cross-validation harness, which builds per-fold datasets).
    pub fn train_on_dataset(
        dataset: &Dataset,
        kind: PpmKind,
        feature_set: FeatureSet,
        forest_config: RandomForestConfig,
    ) -> Result<Self> {
        let mut forest = RandomForestRegressor::new(forest_config);
        forest.fit(dataset).map_err(AutoExecutorError::Ml)?;
        let compiled = Arc::new(forest.compile().map_err(AutoExecutorError::Ml)?);
        Ok(Self {
            forest,
            compiled,
            kind,
            feature_set,
        })
    }

    /// The PPM family this model predicts.
    pub fn kind(&self) -> PpmKind {
        self.kind
    }

    /// The feature set this model consumes.
    pub fn feature_set(&self) -> FeatureSet {
        self.feature_set
    }

    /// Access to the underlying forest (e.g. for permutation importance).
    pub fn forest(&self) -> &RandomForestRegressor {
        &self.forest
    }

    /// The compiled inference representation the scoring paths run on.
    pub fn compiled(&self) -> &CompiledForest {
        &self.compiled
    }

    /// Predicts the PPM for a query plan (features are derived internally).
    pub fn predict_ppm(&self, plan: &QueryPlan) -> Result<Ppm> {
        self.predict_ppm_from_full_features(&featurize_plan(plan))
    }

    /// Predicts the PPM from an already-computed *full* feature vector.
    /// Inference runs on the compiled forest (bit-identical to the
    /// interpreted walk).
    pub fn predict_ppm_from_full_features(&self, full_features: &[f64]) -> Result<Ppm> {
        let projected = self.feature_set.project(full_features);
        let params = self
            .compiled
            .predict(&projected)
            .map_err(AutoExecutorError::Ml)?;
        Ok(Ppm::from_parameters(self.kind, &params))
    }

    /// Predicts PPMs for a whole batch of *full* feature vectors at once —
    /// the inference stage of the batched serving path. The projection
    /// indices are resolved once for the batch, rows are laid out in one
    /// flat matrix, and the compiled batch-major kernel accumulates into
    /// one flat output buffer (zero per-row allocation) from which the
    /// PPMs are constructed directly (`ae_ppm::ppms_from_flat`); each
    /// returned PPM is bit-identical to what
    /// [`predict_ppm_from_full_features`] yields for the same row.
    ///
    /// [`predict_ppm_from_full_features`]: Self::predict_ppm_from_full_features
    pub fn predict_ppm_batch(&self, full_rows: &FeatureMatrix) -> Result<Vec<Ppm>> {
        let indices = self.feature_set.projection_indices();
        let mut projected = FeatureMatrix::with_capacity(indices.len(), full_rows.len());
        for row in full_rows.rows() {
            projected
                .push_row_from(indices.iter().map(|&i| row[i]))
                .map_err(AutoExecutorError::Ml)?;
        }
        let k = self.compiled.num_outputs();
        let mut flat = vec![0.0; projected.len() * k];
        self.compiled
            .predict_batch_into(&projected, &mut flat)
            .map_err(AutoExecutorError::Ml)?;
        Ok(ae_ppm::ppms_from_flat(self.kind, &flat, k))
    }

    /// Predicts the run-time curve for a plan over candidate executor counts.
    pub fn predict_curve(&self, plan: &QueryPlan, counts: &[usize]) -> Result<Vec<(usize, f64)>> {
        Ok(self.predict_ppm(plan)?.predict_curve(counts))
    }

    /// Exports the model to the portable (ONNX-stand-in) format.
    pub fn to_portable(&self, name: impl Into<String>) -> Result<PortableModel> {
        PortableModel::from_forest(name, self.forest.clone()).map_err(AutoExecutorError::Ml)
    }

    /// Reconstructs a parameter model from a portable model. The PPM family
    /// is inferred from the portable model's target names and the feature
    /// set from its feature names.
    pub fn from_portable(portable: &PortableModel) -> Result<Self> {
        let kind = if portable.target_names == PpmKind::PowerLaw.parameter_names() {
            PpmKind::PowerLaw
        } else if portable.target_names == PpmKind::Amdahl.parameter_names() {
            PpmKind::Amdahl
        } else {
            return Err(AutoExecutorError::InvalidModel(format!(
                "unrecognised target names {:?}",
                portable.target_names
            )));
        };
        let feature_set = FeatureSet::ALL
            .into_iter()
            .find(|set| set.feature_names() == portable.feature_names)
            .ok_or_else(|| {
                AutoExecutorError::InvalidModel(format!(
                    "feature names {:?} match no known feature set",
                    portable.feature_names
                ))
            })?;
        Ok(Self {
            forest: portable.forest().clone(),
            // The portable model already compiled its forest at
            // construction/deserialization; share that arena (Arc clone)
            // instead of recompiling or deep-copying it.
            compiled: portable.compiled_handle(),
            kind,
            feature_set,
        })
    }
}

/// Full convenience pipeline: collect training data and train the model.
pub fn train_from_workload(
    queries: &[QueryInstance],
    config: &AutoExecutorConfig,
) -> Result<(TrainingData, ParameterModel)> {
    let data = TrainingData::collect(queries, config)?;
    if data.is_empty() {
        return Err(AutoExecutorError::EmptyWorkload);
    }
    let model = ParameterModel::train(&data, config)?;
    Ok((data, model))
}

/// Hand-check of the full feature dimensionality: the forest must have been
/// trained with the same column order that scoring uses.
pub fn feature_dimensions() -> usize {
    full_feature_names().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_workload::{ScaleFactor, WorkloadGenerator};

    fn small_workload() -> Vec<QueryInstance> {
        let generator = WorkloadGenerator::new(ScaleFactor::SF10);
        ["q1", "q5", "q12", "q42", "q69", "q94", "q23b", "q77"]
            .iter()
            .map(|name| generator.instance(name))
            .collect()
    }

    fn fast_config() -> AutoExecutorConfig {
        let mut cfg = AutoExecutorConfig::default();
        cfg.forest.n_estimators = 10;
        cfg.training_run.noise_cv = 0.0;
        cfg
    }

    #[test]
    fn collect_produces_one_example_per_query() {
        let queries = small_workload();
        let data = TrainingData::collect(&queries, &fast_config()).unwrap();
        assert_eq!(data.len(), queries.len());
        for example in &data.examples {
            assert_eq!(example.family, "tpcds");
            assert_eq!(example.sparklens_curve.len(), 6);
            assert_eq!(example.full_features.len(), feature_dimensions());
            assert!(example.observed_elapsed_secs > 0.0);
            // Fitted PPMs are monotone and positive at n=1.
            assert!(example.power_law.predict(1.0) > 0.0);
            assert!(example.amdahl.predict(1.0) > 0.0);
        }
    }

    #[test]
    fn dataset_shape_matches_parametric_design() {
        // One row per query regardless of how many configurations were
        // estimated — the paper's key training-set reduction.
        let queries = small_workload();
        let data = TrainingData::collect(&queries, &fast_config()).unwrap();
        let ds_pl = data.to_dataset(PpmKind::PowerLaw, FeatureSet::F0).unwrap();
        assert_eq!(ds_pl.len(), queries.len());
        assert_eq!(ds_pl.num_targets(), 3);
        let ds_al = data.to_dataset(PpmKind::Amdahl, FeatureSet::F2).unwrap();
        assert_eq!(ds_al.num_targets(), 2);
        assert_eq!(ds_al.num_features(), 2);
    }

    #[test]
    fn trained_model_predicts_monotone_curves() {
        let queries = small_workload();
        let cfg = fast_config();
        let (_, model) = train_from_workload(&queries, &cfg).unwrap();
        for query in &queries {
            let curve = model
                .predict_curve(&query.plan, &cfg.candidate_counts())
                .unwrap();
            for pair in curve.windows(2) {
                assert!(pair[1].1 <= pair[0].1 + 1e-9, "{}", query.name);
            }
            assert!(curve[0].1 > 0.0);
        }
    }

    #[test]
    fn portable_roundtrip_preserves_predictions() {
        let queries = small_workload();
        let cfg = fast_config();
        let (_, model) = train_from_workload(&queries, &cfg).unwrap();
        let portable = model.to_portable("roundtrip").unwrap();
        let restored = ParameterModel::from_portable(&portable).unwrap();
        assert_eq!(restored.kind(), model.kind());
        assert_eq!(restored.feature_set(), model.feature_set());
        let plan = &queries[0].plan;
        assert_eq!(
            model.predict_ppm(plan).unwrap().parameters(),
            restored.predict_ppm(plan).unwrap().parameters()
        );
    }

    #[test]
    fn from_portable_rejects_foreign_models() {
        // A forest with unrelated target names cannot become a parameter model.
        let mut ds = Dataset::new(vec!["x".into()], vec!["weird".into()]);
        for i in 0..10 {
            ds.push_row(format!("r{i}"), vec![i as f64], vec![i as f64])
                .unwrap();
        }
        let mut forest = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 3,
            ..Default::default()
        });
        forest.fit(&ds).unwrap();
        let portable = PortableModel::from_forest("weird", forest).unwrap();
        assert!(ParameterModel::from_portable(&portable).is_err());
    }

    #[test]
    fn family_identity_threads_through_collection_and_merging() {
        use ae_workload::BuiltinFamily;
        let cfg = fast_config();
        let tpcds = TrainingData::collect(&small_workload(), &cfg).unwrap();
        let tpch_suite: Vec<QueryInstance> = {
            let generator = WorkloadGenerator::builtin(BuiltinFamily::Tpch, ScaleFactor::SF10);
            ["h1", "h4", "h9", "h17"]
                .iter()
                .map(|n| generator.instance(n))
                .collect()
        };
        let tpch = TrainingData::collect(&tpch_suite, &cfg).unwrap();
        assert_eq!(tpch.families(), vec!["tpch".to_string()]);

        let mut mixed = tpcds.clone();
        mixed.merge(tpch);
        assert_eq!(
            mixed.families(),
            vec!["tpcds".to_string(), "tpch".to_string()]
        );
        assert_eq!(mixed.family_subset("tpch").len(), 4);
        assert_eq!(mixed.family_subset("tpcds").len(), tpcds.len());
        assert!(mixed.family_subset("nope").is_empty());
        // A mixed-family dataset still trains.
        let model = ParameterModel::train(&mixed, &cfg).unwrap();
        assert_eq!(model.kind(), cfg.ppm_kind);
    }

    #[test]
    fn subset_restricts_examples() {
        let queries = small_workload();
        let data = TrainingData::collect(&queries, &fast_config()).unwrap();
        let sub = data.subset(&[0, 3]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.examples[1].name, data.examples[3].name);
    }

    #[test]
    fn amdahl_configuration_trains_too() {
        let queries = small_workload();
        let cfg = fast_config().with_ppm_kind(PpmKind::Amdahl);
        let (_, model) = train_from_workload(&queries, &cfg).unwrap();
        assert_eq!(model.kind(), PpmKind::Amdahl);
        let ppm = model.predict_ppm(&queries[2].plan).unwrap();
        assert!(matches!(ppm, Ppm::Amdahl(_)));
    }
}
