//! Evaluation harness: ground-truth collection, the `E(n)` error metric,
//! repeated cross-validation, configuration-selection impact, and the
//! allocation-policy ratio summaries (Section 5).

use std::collections::BTreeMap;

use ae_engine::allocation::AllocationPolicy;
use ae_engine::cluster::ClusterConfig;
use ae_engine::scheduler::{RunConfig, SimScratch, Simulator};
use ae_ml::matrix::FeatureMatrix;
use ae_ml::metrics::{iqr_filtered_mean, mean_and_std, total_absolute_error_ratio};
use ae_ppm::curve::PerfCurve;
use ae_ppm::model::{Ppm, PpmKind};
use ae_ppm::selection::{elbow_point, slowdown_config};
use ae_workload::QueryInstance;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::config::AutoExecutorConfig;
use crate::execution::AllocationComparison;
use crate::training::{ParameterModel, TrainingData};
use crate::{AutoExecutorError, Result};

/// Ground-truth run times: per query, the IQR-filtered mean elapsed time at
/// each evaluated executor count (the "Actual" series, Section 5.1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ActualRuns {
    curves: BTreeMap<String, Vec<(usize, f64)>>,
}

impl ActualRuns {
    /// Runs every query `repeats` times at each executor count in `counts`
    /// and stores the outlier-filtered mean elapsed times.
    ///
    /// The `(query, count)` grid is simulated in parallel. Every repeat's
    /// noise seed is a pure function of `(seed, repeat, count)` — the same
    /// derivation the sequential loop used — and simulation scratch buffers
    /// are reused across the repeats of one grid cell, so ground truth is
    /// bit-identical at any worker-thread count.
    pub fn collect(
        queries: &[QueryInstance],
        counts: &[usize],
        repeats: usize,
        cluster: &ClusterConfig,
        seed: u64,
    ) -> Result<Self> {
        let units: Vec<(&QueryInstance, usize)> = queries
            .iter()
            .flat_map(|q| counts.iter().map(move |&n| (q, n)))
            .collect();
        let cells = units
            .into_par_iter()
            .map(|(query, n)| {
                let simulator = Simulator::new(*cluster, AllocationPolicy::static_allocation(n))
                    .map_err(AutoExecutorError::Engine)?;
                let mut scratch = SimScratch::new();
                let samples: Vec<f64> = (0..repeats.max(1))
                    .map(|r| {
                        let run_cfg = RunConfig {
                            seed: seed
                                .wrapping_add(r as u64)
                                .wrapping_mul(31)
                                .wrapping_add(n as u64),
                            ..RunConfig::default()
                        };
                        simulator
                            .run_with_scratch(&query.name, &query.dag, &run_cfg, &mut scratch)
                            .elapsed_secs
                    })
                    .collect();
                Ok((query.name.clone(), n, iqr_filtered_mean(&samples)))
            })
            .collect::<Result<Vec<_>>>()?;

        let mut curves: BTreeMap<String, Vec<(usize, f64)>> = BTreeMap::new();
        for (name, n, mean) in cells {
            curves.entry(name).or_default().push((n, mean));
        }
        Ok(Self { curves })
    }

    /// Builds ground truth from precomputed curves (useful in tests).
    pub fn from_curves(curves: BTreeMap<String, Vec<(usize, f64)>>) -> Self {
        Self { curves }
    }

    /// Query names with ground truth available.
    pub fn names(&self) -> Vec<&str> {
        self.curves.keys().map(String::as_str).collect()
    }

    /// The measured curve for a query.
    pub fn curve(&self, name: &str) -> Option<&[(usize, f64)]> {
        self.curves.get(name).map(Vec::as_slice)
    }

    /// The measured curve, piecewise-linearly interpolated over all `n`.
    pub fn interpolated(&self, name: &str) -> Option<PerfCurve> {
        self.curve(name).map(PerfCurve::from_samples)
    }

    /// The optimal (minimum-time, smallest-n) executor count for a query.
    pub fn optimal_executors(&self, name: &str) -> Option<usize> {
        self.curve(name).and_then(slowdown_config_min)
    }
}

fn slowdown_config_min(curve: &[(usize, f64)]) -> Option<usize> {
    slowdown_config(curve, 1.0)
}

/// The paper's `E(n)` metric over a set of queries: for each executor count,
/// `Σ_q |t̂_q(n) − t_q(n)| / Σ_q t_q(n)` (Equation 6).
///
/// `predictions` maps query name → predicted curve; queries missing from
/// either side are skipped.
pub fn error_by_count(
    predictions: &BTreeMap<String, Vec<(usize, f64)>>,
    actuals: &ActualRuns,
    counts: &[usize],
) -> BTreeMap<usize, f64> {
    let mut result = BTreeMap::new();
    for &n in counts {
        let mut predicted = Vec::new();
        let mut actual = Vec::new();
        for (name, curve) in predictions {
            let Some(actual_curve) = actuals.curve(name) else {
                continue;
            };
            let Some(&(_, t_hat)) = curve.iter().find(|&&(c, _)| c == n) else {
                continue;
            };
            let Some(&(_, t)) = actual_curve.iter().find(|&&(c, _)| c == n) else {
                continue;
            };
            predicted.push(t_hat);
            actual.push(t);
        }
        if !actual.is_empty() {
            result.insert(n, total_absolute_error_ratio(&predicted, &actual));
        }
    }
    result
}

/// Cross-validation protocol parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossValidationConfig {
    /// Number of folds (5 in the paper: an 80:20 split).
    pub folds: usize,
    /// Number of repeats (10 in the paper).
    pub repeats: usize,
    /// Base seed for fold shuffling and per-repeat forest seeds.
    pub seed: u64,
}

impl Default for CrossValidationConfig {
    fn default() -> Self {
        Self {
            folds: 5,
            repeats: 10,
            seed: 42,
        }
    }
}

impl CrossValidationConfig {
    /// A cheaper protocol for tests and smoke runs.
    pub fn quick(seed: u64) -> Self {
        Self {
            folds: 3,
            repeats: 2,
            seed,
        }
    }
}

/// Predictions for one query from one fold's model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryPrediction {
    /// Query name.
    pub name: String,
    /// The predicted PPM.
    pub ppm: Ppm,
    /// The predicted curve at the evaluation counts.
    pub curve: Vec<(usize, f64)>,
}

/// Results of one train/test fold.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FoldReport {
    /// Which repeat this fold belongs to.
    pub repeat: usize,
    /// Fold index within the repeat.
    pub fold: usize,
    /// `E(n)` on the training queries (fit error).
    pub train_error_by_count: BTreeMap<usize, f64>,
    /// `E(n)` on the held-out queries (prediction error).
    pub test_error_by_count: BTreeMap<usize, f64>,
    /// Per-test-query predictions.
    pub test_predictions: Vec<QueryPrediction>,
}

/// Aggregated cross-validation results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossValidationReport {
    /// All folds across all repeats.
    pub folds: Vec<FoldReport>,
    /// The executor counts at which errors were evaluated.
    pub eval_counts: Vec<usize>,
}

impl CrossValidationReport {
    fn aggregate(
        &self,
        pick: impl Fn(&FoldReport) -> &BTreeMap<usize, f64>,
    ) -> BTreeMap<usize, (f64, f64)> {
        let mut out = BTreeMap::new();
        for &n in &self.eval_counts {
            let values: Vec<f64> = self
                .folds
                .iter()
                .filter_map(|f| pick(f).get(&n).copied())
                .collect();
            if !values.is_empty() {
                out.insert(n, mean_and_std(&values));
            }
        }
        out
    }

    /// Mean and standard deviation of the test `E(n)` across folds, per `n`
    /// (the bars and whiskers of Figure 9b).
    pub fn test_error_summary(&self) -> BTreeMap<usize, (f64, f64)> {
        self.aggregate(|f| &f.test_error_by_count)
    }

    /// Mean and standard deviation of the training `E(n)` across folds
    /// (Figure 9a).
    pub fn train_error_summary(&self) -> BTreeMap<usize, (f64, f64)> {
        self.aggregate(|f| &f.train_error_by_count)
    }

    /// All test-time predicted curves per query (one per fold in which the
    /// query was held out — i.e. one per repeat).
    pub fn test_curves_by_query(&self) -> BTreeMap<String, Vec<Vec<(usize, f64)>>> {
        let mut out: BTreeMap<String, Vec<Vec<(usize, f64)>>> = BTreeMap::new();
        for fold in &self.folds {
            for prediction in &fold.test_predictions {
                out.entry(prediction.name.clone())
                    .or_default()
                    .push(prediction.curve.clone());
            }
        }
        out
    }

    /// The mean predicted test curve per query (averaged over repeats).
    pub fn mean_test_curves(&self) -> BTreeMap<String, Vec<(usize, f64)>> {
        self.test_curves_by_query()
            .into_iter()
            .map(|(name, curves)| {
                let mut mean = curves[0].clone();
                for curve in curves.iter().skip(1) {
                    for (slot, &(_, t)) in mean.iter_mut().zip(curve.iter()) {
                        slot.1 += t;
                    }
                }
                let count = curves.len() as f64;
                for slot in &mut mean {
                    slot.1 /= count;
                }
                (name, mean)
            })
            .collect()
    }
}

/// Runs repeated k-fold cross-validation of the parameter model over the
/// training data, evaluating `E(n)` against ground truth.
///
/// `eval_counts` are the executor counts at which errors are computed (the
/// paper uses the training counts {1, 3, 8, 16, 32, 48}).
pub fn cross_validate(
    data: &TrainingData,
    actuals: &ActualRuns,
    config: &AutoExecutorConfig,
    cv: &CrossValidationConfig,
    eval_counts: &[usize],
) -> Result<CrossValidationReport> {
    if data.is_empty() {
        return Err(AutoExecutorError::EmptyWorkload);
    }
    let splitter = ae_ml::dataset::RepeatedKFold::new(cv.folds, cv.repeats, cv.seed);
    let all_splits = splitter.splits(data.len()).map_err(AutoExecutorError::Ml)?;

    // Flatten the (repeat, fold) grid so every fold trains and scores in
    // parallel. Each fold's forest seed is a pure function of its grid
    // position — identical to the historical sequential derivation — so the
    // report is bit-identical at any worker-thread count.
    let flat: Vec<(usize, usize, &ae_ml::dataset::FoldSplit)> = all_splits
        .iter()
        .enumerate()
        .flat_map(|(repeat, splits)| {
            splits
                .iter()
                .enumerate()
                .map(move |(fold_idx, split)| (repeat, fold_idx, split))
        })
        .collect();

    let folds = flat
        .into_par_iter()
        .map(|(repeat, fold_idx, split)| {
            let train_data = data.subset(&split.train);
            let fold_config = config.with_seed(
                config
                    .forest
                    .seed
                    .wrapping_add((repeat * cv.folds + fold_idx) as u64),
            );
            let model = ParameterModel::train(&train_data, &fold_config)?;

            // One batched-inference call per query set: the full feature
            // rows go into one flat matrix and the compiled kernel returns
            // every PPM at once (bit-identical to the former per-row loop).
            let predict_set = |indices: &[usize]| -> Result<Vec<QueryPrediction>> {
                let width = crate::features::full_feature_names().len();
                let mut matrix = FeatureMatrix::with_capacity(width, indices.len());
                for &i in indices {
                    matrix
                        .push_row(&data.examples[i].full_features)
                        .map_err(AutoExecutorError::Ml)?;
                }
                let ppms = model.predict_ppm_batch(&matrix)?;
                Ok(indices
                    .iter()
                    .zip(ppms)
                    .map(|(&i, ppm)| QueryPrediction {
                        name: data.examples[i].name.clone(),
                        curve: ppm.predict_curve(eval_counts),
                        ppm,
                    })
                    .collect())
            };
            let train_predictions = predict_set(&split.train)?;
            let test_predictions = predict_set(&split.test)?;

            let to_map = |predictions: &[QueryPrediction]| {
                predictions
                    .iter()
                    .map(|p| (p.name.clone(), p.curve.clone()))
                    .collect::<BTreeMap<_, _>>()
            };
            let train_error = error_by_count(&to_map(&train_predictions), actuals, eval_counts);
            let test_error = error_by_count(&to_map(&test_predictions), actuals, eval_counts);

            Ok(FoldReport {
                repeat,
                fold: fold_idx,
                train_error_by_count: train_error,
                test_error_by_count: test_error,
                test_predictions,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(CrossValidationReport {
        folds,
        eval_counts: eval_counts.to_vec(),
    })
}

/// Per-query curve maps derived from collected training data: the Sparklens
/// estimate series ("S") and the fitted-PPM series, both evaluated at the
/// training counts.
pub fn sparklens_curves(data: &TrainingData) -> BTreeMap<String, Vec<(usize, f64)>> {
    data.examples
        .iter()
        .map(|e| (e.name.clone(), e.sparklens_curve.clone()))
        .collect()
}

/// Curves of the PPM fitted directly to the Sparklens estimates (the "fit"
/// rather than "prediction" view, Figure 4).
pub fn fitted_ppm_curves(
    data: &TrainingData,
    kind: PpmKind,
    counts: &[usize],
) -> BTreeMap<String, Vec<(usize, f64)>> {
    data.examples
        .iter()
        .enumerate()
        .map(|(idx, e)| {
            let ppm = data.fitted_ppm(idx, kind);
            (e.name.clone(), ppm.predict_curve(counts))
        })
        .collect()
}

/// One family's evaluation bundle for the cross-family generalization
/// harness: its suite, the training data collected from it, and its
/// ground-truth curves.
#[derive(Debug, Clone)]
pub struct FamilyEvalSet {
    /// Registry key of the family (e.g. `"tpcds"`).
    pub family: String,
    /// The family's query instances (plans drive test-time predictions).
    pub suite: Vec<QueryInstance>,
    /// Training data collected from the suite.
    pub data: TrainingData,
    /// Ground-truth curves measured on the suite.
    pub actuals: ActualRuns,
}

/// One cell of the cross-family generalization matrix: the `E(n)` profile of
/// a model trained on `train_family` and evaluated on `test_family`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneralizationCell {
    /// Family the model was trained on.
    pub train_family: String,
    /// Family the model was evaluated on.
    pub test_family: String,
    /// `E(n)` at each evaluation count.
    pub error_by_count: BTreeMap<usize, f64>,
    /// Mean of `E(n)` over the evaluation counts (the matrix entry).
    pub mean_error: f64,
}

/// The full train-family × test-family accuracy matrix.
///
/// Diagonal cells measure in-family accuracy (train and test draw from the
/// same suite — a fit-style reference); off-diagonal cells measure transfer
/// to a family the model never saw, which is the paper's central
/// generalization claim stressed across workload families instead of
/// across held-out queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneralizationMatrix {
    /// Family keys, in evaluation order (rows and columns).
    pub families: Vec<String>,
    /// Executor counts the errors were evaluated at.
    pub eval_counts: Vec<usize>,
    /// All train × test cells, row-major in `families` order.
    pub cells: Vec<GeneralizationCell>,
}

impl GeneralizationMatrix {
    /// The cell for a train/test family pair.
    pub fn cell(&self, train: &str, test: &str) -> Option<&GeneralizationCell> {
        self.cells
            .iter()
            .find(|c| c.train_family == train && c.test_family == test)
    }

    /// True when every recorded error is finite (the CI smoke gate).
    pub fn is_finite(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.mean_error.is_finite() && c.error_by_count.values().all(|e| e.is_finite()))
    }

    /// The measured cross-family generalization gap: mean off-diagonal
    /// error minus mean diagonal error (how much accuracy transfer costs).
    /// `NaN` for a single-family matrix, which has no off-diagonal cells
    /// and therefore no transfer to measure.
    pub fn generalization_gap(&self) -> f64 {
        let (mut diag, mut off) = (Vec::new(), Vec::new());
        for cell in &self.cells {
            if cell.train_family == cell.test_family {
                diag.push(cell.mean_error);
            } else {
                off.push(cell.mean_error);
            }
        }
        if off.is_empty() || diag.is_empty() {
            return f64::NAN;
        }
        mean_and_std(&off).0 - mean_and_std(&diag).0
    }
}

/// Evaluates an already-trained model against one family's suite: per-query
/// predicted curves from the plans, `E(n)` against the family's ground
/// truth.
pub fn cross_family_error(
    model: &ParameterModel,
    suite: &[QueryInstance],
    actuals: &ActualRuns,
    eval_counts: &[usize],
) -> Result<BTreeMap<usize, f64>> {
    // Featurize every plan into one flat matrix and score the whole suite
    // in a single compiled-kernel batch (bit-identical to per-plan
    // `predict_curve` calls).
    let width = crate::features::full_feature_names().len();
    let mut matrix = FeatureMatrix::with_capacity(width, suite.len());
    for q in suite {
        matrix
            .push_row(&crate::features::featurize_plan(&q.plan))
            .map_err(AutoExecutorError::Ml)?;
    }
    let ppms = model.predict_ppm_batch(&matrix)?;
    let predictions = suite
        .iter()
        .zip(ppms)
        .map(|(q, ppm)| (q.name.clone(), ppm.predict_curve(eval_counts)))
        .collect::<BTreeMap<_, _>>();
    Ok(error_by_count(&predictions, actuals, eval_counts))
}

/// Builds the full train-family × test-family accuracy matrix: one model
/// per training family (trained on that family's whole suite), evaluated
/// on every family's suite.
pub fn generalization_matrix(
    sets: &[FamilyEvalSet],
    config: &AutoExecutorConfig,
    eval_counts: &[usize],
) -> Result<GeneralizationMatrix> {
    if sets.is_empty() {
        return Err(AutoExecutorError::EmptyWorkload);
    }
    let mut cells = Vec::with_capacity(sets.len() * sets.len());
    for train in sets {
        if train.data.is_empty() {
            return Err(AutoExecutorError::EmptyWorkload);
        }
        let model = ParameterModel::train(&train.data, config)?;
        for test in sets {
            let error_by_count =
                cross_family_error(&model, &test.suite, &test.actuals, eval_counts)?;
            let errors: Vec<f64> = error_by_count.values().copied().collect();
            let (mean_error, _) = mean_and_std(&errors);
            cells.push(GeneralizationCell {
                train_family: train.family.clone(),
                test_family: test.family.clone(),
                error_by_count,
                mean_error,
            });
        }
    }
    Ok(GeneralizationMatrix {
        families: sets.iter().map(|s| s.family.clone()).collect(),
        eval_counts: eval_counts.to_vec(),
        cells,
    })
}

/// Outcome of bounded-slowdown configuration selection for one `H`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SelectionImpact {
    /// Target maximum slowdown `H`.
    pub target_slowdown: f64,
    /// Mean actual slowdown (vs. the interpolated actual minimum) incurred
    /// by the selected configurations.
    pub mean_actual_slowdown: f64,
    /// Mean selected executor count.
    pub mean_selected_executors: f64,
}

/// Evaluates bounded-slowdown selection (Figure 10): for each query the
/// configuration is chosen from its *predicted* curve (interpolated over the
/// candidate range) and the slowdown is measured on the *actual*
/// (interpolated) curve.
pub fn selection_impacts(
    predictions: &BTreeMap<String, Vec<(usize, f64)>>,
    actuals: &ActualRuns,
    h_values: &[f64],
    candidate_range: (usize, usize),
) -> Vec<SelectionImpact> {
    let (lo, hi) = candidate_range;
    h_values
        .iter()
        .map(|&h| {
            let mut slowdowns = Vec::new();
            let mut selected = Vec::new();
            for (name, curve) in predictions {
                let Some(actual) = actuals.interpolated(name) else {
                    continue;
                };
                if curve.is_empty() {
                    continue;
                }
                let predicted = PerfCurve::from_samples(curve);
                let dense = predicted.evaluate_integer_range(lo, hi);
                let Some(n) = slowdown_config(&dense, h) else {
                    continue;
                };
                selected.push(n as f64);
                slowdowns.push(actual.slowdown_at(n as f64));
            }
            let (mean_slowdown, _) = mean_and_std(&slowdowns);
            let (mean_n, _) = mean_and_std(&selected);
            SelectionImpact {
                target_slowdown: h,
                mean_actual_slowdown: mean_slowdown,
                mean_selected_executors: mean_n,
            }
        })
        .collect()
}

/// Elbow points per query computed from a set of per-query curves
/// (Figure 11). Curves are interpolated over the candidate range first.
pub fn elbow_distribution(
    curves: &BTreeMap<String, Vec<(usize, f64)>>,
    candidate_range: (usize, usize),
) -> BTreeMap<String, usize> {
    let (lo, hi) = candidate_range;
    curves
        .iter()
        .filter(|(_, curve)| !curve.is_empty())
        .filter_map(|(name, curve)| {
            let dense = PerfCurve::from_samples(curve).evaluate_integer_range(lo, hi);
            elbow_point(&dense).map(|e| (name.clone(), e))
        })
        .collect()
}

/// Averages of the Figure 13 ratios over a set of per-query comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RatioAverages {
    /// Mean SA(max)/Rule maximum-executor ratio.
    pub n_ratio_static: f64,
    /// Mean DA/Rule maximum-executor ratio.
    pub n_ratio_dynamic: f64,
    /// Mean SA(max)/Rule executor-occupancy ratio.
    pub auc_ratio_static: f64,
    /// Mean DA/Rule executor-occupancy ratio.
    pub auc_ratio_dynamic: f64,
    /// Mean speedup of Rule vs SA(max) (< 1 means Rule is slower).
    pub speedup_vs_static: f64,
    /// Mean speedup of Rule vs DA.
    pub speedup_vs_dynamic: f64,
    /// Fraction of queries that ran long enough to receive their full
    /// predicted allocation.
    pub fully_allocated_fraction: f64,
    /// Occupancy saving of Rule vs dynamic allocation, as a fraction
    /// (the paper's headline 48%).
    pub auc_saving_vs_dynamic: f64,
    /// Occupancy saving of Rule vs static allocation at the maximum
    /// (the paper's 73%).
    pub auc_saving_vs_static: f64,
}

/// Summarises allocation comparisons into the Figure 13 averages.
pub fn ratio_averages(comparisons: &[AllocationComparison]) -> RatioAverages {
    if comparisons.is_empty() {
        return RatioAverages::default();
    }
    let mean = |f: &dyn Fn(&AllocationComparison) -> f64| {
        comparisons.iter().map(f).sum::<f64>() / comparisons.len() as f64
    };
    let total_rule_auc: f64 = comparisons.iter().map(|c| c.rule.auc_executor_secs).sum();
    let total_da_auc: f64 = comparisons
        .iter()
        .map(|c| c.dynamic.auc_executor_secs)
        .sum();
    let total_sa_auc: f64 = comparisons
        .iter()
        .map(|c| c.static_max.auc_executor_secs)
        .sum();
    RatioAverages {
        n_ratio_static: mean(&|c| c.n_ratio_static()),
        n_ratio_dynamic: mean(&|c| c.n_ratio_dynamic()),
        auc_ratio_static: mean(&|c| c.auc_ratio_static()),
        auc_ratio_dynamic: mean(&|c| c.auc_ratio_dynamic()),
        speedup_vs_static: mean(&|c| c.speedup_vs_static()),
        speedup_vs_dynamic: mean(&|c| c.speedup_vs_dynamic()),
        fully_allocated_fraction: comparisons.iter().filter(|c| c.fully_allocated).count() as f64
            / comparisons.len() as f64,
        auc_saving_vs_dynamic: 1.0 - total_rule_auc / total_da_auc.max(f64::EPSILON),
        auc_saving_vs_static: 1.0 - total_rule_auc / total_sa_auc.max(f64::EPSILON),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ae_workload::{ScaleFactor, WorkloadGenerator};

    fn small_queries() -> Vec<QueryInstance> {
        let generator = WorkloadGenerator::new(ScaleFactor::SF10);
        ["q2", "q17", "q33", "q49", "q61", "q94"]
            .iter()
            .map(|n| generator.instance(n))
            .collect()
    }

    fn fast_config() -> AutoExecutorConfig {
        let mut cfg = AutoExecutorConfig::default();
        cfg.forest.n_estimators = 8;
        cfg.training_run.noise_cv = 0.0;
        cfg
    }

    fn quick_actuals(queries: &[QueryInstance]) -> ActualRuns {
        ActualRuns::collect(
            queries,
            &[1, 8, 16, 48],
            1,
            &ClusterConfig::paper_default(),
            3,
        )
        .unwrap()
    }

    #[test]
    fn actual_runs_produce_monotoneish_curves() {
        let queries = small_queries();
        let actuals = quick_actuals(&queries);
        for query in &queries {
            let curve = actuals.curve(&query.name).unwrap();
            assert_eq!(curve.len(), 4);
            // With noise the curve may wiggle slightly, but t(1) >= t(48).
            assert!(curve[0].1 >= curve[3].1 * 0.9);
            let optimal = actuals.optimal_executors(&query.name).unwrap();
            assert!((1..=48).contains(&optimal));
        }
    }

    #[test]
    fn error_metric_is_zero_for_perfect_predictions() {
        let queries = small_queries();
        let actuals = quick_actuals(&queries);
        let predictions: BTreeMap<String, Vec<(usize, f64)>> = queries
            .iter()
            .map(|q| (q.name.clone(), actuals.curve(&q.name).unwrap().to_vec()))
            .collect();
        let errors = error_by_count(&predictions, &actuals, &[1, 8, 16, 48]);
        for (&n, &e) in &errors {
            assert!(e.abs() < 1e-12, "E({n}) = {e}");
        }
    }

    #[test]
    fn cross_validation_produces_all_folds_and_reasonable_errors() {
        let queries = small_queries();
        let config = fast_config();
        let data = TrainingData::collect(&queries, &config).unwrap();
        let actuals = quick_actuals(&queries);
        let cv = CrossValidationConfig::quick(1);
        let counts = [1usize, 8, 16, 48];
        let report = cross_validate(&data, &actuals, &config, &cv, &counts).unwrap();
        assert_eq!(report.folds.len(), cv.folds * cv.repeats);
        let summary = report.test_error_summary();
        for (&n, &(mean, _std)) in &summary {
            assert!(mean.is_finite() && mean >= 0.0, "E({n}) = {mean}");
            // Even a rough model should stay well under 300% error on this
            // synthetic workload.
            assert!(mean < 3.0, "E({n}) = {mean}");
        }
        // Every query appears as a test query at least once per repeat.
        let curves = report.test_curves_by_query();
        assert_eq!(curves.len(), queries.len());
    }

    #[test]
    fn selection_impacts_follow_the_slowdown_knob() {
        let queries = small_queries();
        let actuals = quick_actuals(&queries);
        // Use the actual curves as "predictions" — the selection then tracks
        // the target slowdown from below.
        let predictions: BTreeMap<String, Vec<(usize, f64)>> = queries
            .iter()
            .map(|q| (q.name.clone(), actuals.curve(&q.name).unwrap().to_vec()))
            .collect();
        let impacts = selection_impacts(&predictions, &actuals, &[1.0, 1.2, 2.0], (1, 48));
        assert_eq!(impacts.len(), 3);
        // Larger H → fewer executors selected.
        assert!(impacts[2].mean_selected_executors <= impacts[0].mean_selected_executors);
        // Actual slowdown grows (or stays equal) as H grows.
        assert!(impacts[2].mean_actual_slowdown >= impacts[0].mean_actual_slowdown - 1e-9);
    }

    #[test]
    fn elbow_distribution_covers_queries() {
        let queries = small_queries();
        let actuals = quick_actuals(&queries);
        let curves: BTreeMap<String, Vec<(usize, f64)>> = queries
            .iter()
            .map(|q| (q.name.clone(), actuals.curve(&q.name).unwrap().to_vec()))
            .collect();
        let elbows = elbow_distribution(&curves, (1, 48));
        assert_eq!(elbows.len(), queries.len());
        assert!(elbows.values().all(|&e| (1..=48).contains(&e)));
    }

    #[test]
    fn ratio_averages_empty_is_default() {
        assert_eq!(ratio_averages(&[]), RatioAverages::default());
    }

    fn eval_set(family: ae_workload::BuiltinFamily, names: &[&str]) -> FamilyEvalSet {
        let generator = WorkloadGenerator::builtin(family, ScaleFactor::SF10);
        let suite: Vec<QueryInstance> = names.iter().map(|n| generator.instance(n)).collect();
        let data = TrainingData::collect(&suite, &fast_config()).unwrap();
        let actuals = quick_actuals(&suite);
        FamilyEvalSet {
            family: family.key().to_string(),
            suite,
            data,
            actuals,
        }
    }

    #[test]
    fn generalization_matrix_covers_all_family_pairs() {
        use ae_workload::BuiltinFamily;
        let sets = [
            eval_set(
                BuiltinFamily::Tpcds,
                &["q2", "q17", "q33", "q49", "q61", "q94"],
            ),
            eval_set(
                BuiltinFamily::Tpch,
                &["h1", "h5", "h9", "h13", "h18", "h21"],
            ),
        ];
        let counts = [1usize, 8, 16, 48];
        let matrix = generalization_matrix(&sets, &fast_config(), &counts).unwrap();

        assert_eq!(
            matrix.families,
            vec!["tpcds".to_string(), "tpch".to_string()]
        );
        assert_eq!(matrix.cells.len(), 4);
        assert!(matrix.is_finite());
        for train in ["tpcds", "tpch"] {
            for test in ["tpcds", "tpch"] {
                let cell = matrix.cell(train, test).expect("cell present");
                assert_eq!(cell.error_by_count.len(), counts.len());
                assert!(cell.mean_error >= 0.0);
            }
        }
        assert!(matrix.cell("tpcds", "skew").is_none());
        assert!(matrix.generalization_gap().is_finite());
    }

    #[test]
    fn single_family_matrix_has_no_gap() {
        use ae_workload::BuiltinFamily;
        let sets = [eval_set(BuiltinFamily::Tpcds, &["q2", "q17", "q33", "q49"])];
        let matrix = generalization_matrix(&sets, &fast_config(), &[1, 8, 48]).unwrap();
        assert_eq!(matrix.cells.len(), 1);
        assert!(matrix.is_finite());
        assert!(matrix.generalization_gap().is_nan());
    }

    #[test]
    fn generalization_matrix_rejects_empty_input() {
        assert!(matches!(
            generalization_matrix(&[], &fast_config(), &[1, 8]),
            Err(AutoExecutorError::EmptyWorkload)
        ));
    }

    #[test]
    fn cross_family_error_matches_in_family_reference() {
        // A model evaluated through cross_family_error on its own training
        // family must reproduce the plain predict-and-score path.
        let queries = small_queries();
        let config = fast_config();
        let data = TrainingData::collect(&queries, &config).unwrap();
        let actuals = quick_actuals(&queries);
        let model = ParameterModel::train(&data, &config).unwrap();
        let counts = [1usize, 8, 48];
        let via_harness = cross_family_error(&model, &queries, &actuals, &counts).unwrap();
        let predictions: BTreeMap<String, Vec<(usize, f64)>> = queries
            .iter()
            .map(|q| {
                (
                    q.name.clone(),
                    model.predict_curve(&q.plan, &counts).unwrap(),
                )
            })
            .collect();
        let direct = error_by_count(&predictions, &actuals, &counts);
        assert_eq!(via_harness, direct);
    }
}
