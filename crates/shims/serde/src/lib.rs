//! Offline facade for `serde`.
//!
//! Re-exports the no-op `Serialize` / `Deserialize` derive markers so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` annotations
//! compile unchanged without the real crate. Concrete serialization in this
//! workspace goes through `ae_ml::json` instead.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};
