//! Offline stand-in for `rayon`.
//!
//! Implements the subset of the rayon API the workspace uses — `par_iter`
//! / `into_par_iter`, `map`, `for_each`, `collect` — on top of
//! `std::thread::scope`. Work distribution is dynamic (an atomic cursor
//! over the item list, so slow items do not stall a whole chunk) and
//! results are written back by item index, which makes every terminal
//! operation **order-preserving**: output `i` always corresponds to input
//! `i`, regardless of thread count or interleaving. Combined with
//! per-index seed derivation in the callers, this yields bit-identical
//! results at any pool size.
//!
//! The `map` adaptor is eager rather than lazy: each `map` call runs one
//! parallel pass. Chained adaptors therefore cost one pass each, which is
//! irrelevant for the coarse-grained work (simulations, tree fits) this
//! workspace parallelizes.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::cell::Cell;
use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    let override_n = POOL_THREADS.with(Cell::get);
    if override_n > 0 {
        return override_n;
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

/// Error type for [`ThreadPoolBuilder::build`] (the shim cannot fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with the default thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = use the default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle configuring how many threads parallel operations use.
///
/// The shim spawns scoped threads per operation instead of keeping a
/// resident pool; `install` only scopes the configured thread count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in effect on the calling
    /// thread (parallel operations started inside `op` use it).
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let previous = POOL_THREADS.with(|c| c.replace(self.num_threads));
        let result = op();
        POOL_THREADS.with(|c| c.set(previous));
        result
    }
}

/// Dynamic, order-preserving parallel map over owned items.
fn par_map_vec<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let len = items.len();
    let workers = current_num_threads().min(len);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<U>>> = (0..len).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // Nested parallel operations inside a worker run inline:
                // the outer fan-out already owns the machine's parallelism,
                // and P×P thread spawns would only oversubscribe (this is
                // the shim's analogue of rayon running nested jobs on the
                // same pool).
                POOL_THREADS.with(|c| c.set(1));
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let item = slots[i]
                        .lock()
                        .unwrap_or_else(|p| p.into_inner())
                        .take()
                        .expect("item taken twice");
                    let out = f(item);
                    *results[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(out);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("missing parallel result")
        })
        .collect()
}

/// An in-flight parallel iterator holding its items by value.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Applies `f` to every item in parallel, preserving order.
    pub fn map<U: Send, F: Fn(T) -> U + Sync>(self, f: F) -> ParIter<U> {
        ParIter {
            items: par_map_vec(self.items, f),
        }
    }

    /// Runs `f` on every item in parallel.
    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        par_map_vec(self.items, f);
    }

    /// Collects the items into `C` (order-preserving).
    pub fn collect<C: FromParIter<T>>(self) -> C {
        C::from_par_iter(self.items)
    }
}

/// Collection types constructible from a parallel iterator.
pub trait FromParIter<T>: Sized {
    /// Builds the collection from the (already ordered) items.
    fn from_par_iter(items: Vec<T>) -> Self;
}

impl<T> FromParIter<T> for Vec<T> {
    fn from_par_iter(items: Vec<T>) -> Self {
        items
    }
}

impl<T, E> FromParIter<Result<T, E>> for Result<Vec<T>, E> {
    fn from_par_iter(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// Conversion into a by-value parallel iterator.
pub trait IntoParallelIterator {
    /// Item type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;

    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl<T: Send> IntoParallelIterator for ParIter<T> {
    type Item = T;

    fn into_par_iter(self) -> ParIter<T> {
        self
    }
}

/// Conversion of `&collection` into a parallel iterator over references.
pub trait IntoParallelRefIterator<'a> {
    /// Reference item type.
    type Item: Send;

    /// Parallel iterator over `&self`'s elements.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;

    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// The rayon prelude: the traits needed for `par_iter()` etc.
pub mod prelude {
    pub use crate::{
        FromParIter, IntoParallelIterator, IntoParallelRefIterator, ParIter, ParallelIterator,
    };
}

/// Alias trait so `use rayon::prelude::*` exposes a `ParallelIterator`
/// name, as callers migrating from real rayon expect.
pub trait ParallelIterator {}

impl<T> ParallelIterator for ParIter<T> {}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..1000usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn results_collect_into_result() {
        let ok: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(Ok::<usize, String>)
            .collect();
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
        let err: Result<Vec<usize>, String> = (0..10usize)
            .into_par_iter()
            .map(|x| {
                if x == 5 {
                    Err("boom".to_string())
                } else {
                    Ok(x)
                }
            })
            .collect();
        assert_eq!(err.unwrap_err(), "boom");
    }

    #[test]
    fn pool_sizes_give_identical_output() {
        let serial = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let wide = ThreadPoolBuilder::new().num_threads(8).build().unwrap();
        let a: Vec<u64> = serial.install(|| {
            (0..500u64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x.wrapping_mul(x))
                .collect()
        });
        let b: Vec<u64> = wide.install(|| {
            (0..500u64)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|x| x.wrapping_mul(x))
                .collect()
        });
        assert_eq!(a, b);
    }

    #[test]
    fn nested_parallelism_runs_inline_and_stays_correct() {
        let out: Vec<Vec<usize>> = (0..8usize)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| {
                (0..5usize)
                    .into_par_iter()
                    .map(move |j| i * 10 + j)
                    .collect()
            })
            .collect();
        for (i, inner) in out.iter().enumerate() {
            assert_eq!(inner, &(0..5).map(|j| i * 10 + j).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_iter_over_slice_refs() {
        let data = vec![1, 2, 3, 4];
        let sum: Vec<i32> = data.par_iter().map(|&x| x + 1).collect();
        assert_eq!(sum, vec![2, 3, 4, 5]);
    }
}
