//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`/`iter_batched`,
//! `criterion_group!`, `criterion_main!`) backed by a simple wall-clock
//! harness: a warm-up phase sizes the batch, then `sample_size` batches are
//! timed and the per-iteration mean / min / max are reported.
//!
//! Supported command-line flags (others are ignored for drop-in
//! compatibility with `cargo bench` invocations):
//!
//! * `--quick` — shrink sample count and measurement time (CI smoke runs),
//! * `<filter>` — positional substring filter on benchmark names.
//!
//! When `AE_BENCH_JSON` is set, one JSON line per benchmark
//! (`{"name": ..., "mean_ns": ..., "min_ns": ..., "max_ns": ...}`) is
//! appended to that file, which is how `BENCH_baseline.json` is produced.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::io::Write as _;
use std::time::{Duration, Instant};

/// How `iter_batched` amortises setup cost; the shim treats all variants
/// identically (one setup per measured iteration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Timing statistics of one benchmark.
#[derive(Debug, Clone, Copy)]
struct Sample {
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    iterations: u64,
}

/// The measurement driver passed to benchmark closures.
pub struct Bencher<'a> {
    config: &'a MeasureConfig,
    sample: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct MeasureConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher<'_> {
    /// Measures `routine` called repeatedly.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm-up: determine how many iterations fit the warm-up budget.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.config.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let budget = self.config.measurement_time.as_secs_f64();
        let samples = self.config.sample_size.max(2) as u64;
        let iters_per_sample =
            ((budget / samples as f64 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);

        let mut total_ns = 0.0f64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let mut iterations = 0u64;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            total_ns += ns * iters_per_sample as f64;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            iterations += iters_per_sample;
        }
        self.sample = Some(Sample {
            mean_ns: total_ns / iterations as f64,
            min_ns,
            max_ns,
            iterations,
        });
    }

    /// Measures `routine` with a fresh `setup()` input per call; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        // Warm-up (one run also seeds the timing estimate).
        let input = setup();
        let warm_start = Instant::now();
        black_box(routine(input));
        let per_iter = warm_start.elapsed().as_secs_f64();

        let budget = self.config.measurement_time.as_secs_f64();
        let samples = self.config.sample_size.max(2) as u64;
        let per_sample_budget = budget / samples as f64;
        let iters_per_sample =
            ((per_sample_budget / per_iter.max(1e-9)).ceil() as u64).clamp(1, 100_000);

        let mut total_ns = 0.0f64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        let mut iterations = 0u64;
        for _ in 0..samples {
            let mut sample_ns = 0.0f64;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                sample_ns += start.elapsed().as_nanos() as f64;
            }
            let ns = sample_ns / iters_per_sample as f64;
            total_ns += sample_ns;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
            iterations += iters_per_sample;
        }
        self.sample = Some(Sample {
            mean_ns: total_ns / iterations as f64,
            min_ns,
            max_ns,
            iterations,
        });
    }
}

/// The benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        // A positional arg is a name filter — but not when it is the value
        // of a preceding (ignored) `--flag value` pair, so invocations like
        // `--save-baseline main` don't silently filter out every bench.
        let mut filter = None;
        let mut prev_was_value_flag = false;
        for arg in &args {
            if arg.starts_with('-') {
                prev_was_value_flag = arg.starts_with("--") && arg != "--quick";
                continue;
            }
            if !prev_was_value_flag && arg != "bench" {
                filter = Some(arg.clone());
                break;
            }
            prev_was_value_flag = false;
        }
        let (sample_size, measurement, warmup) = if quick {
            (10, Duration::from_millis(200), Duration::from_millis(50))
        } else {
            (30, Duration::from_millis(1500), Duration::from_millis(300))
        };
        Self {
            filter,
            sample_size,
            measurement_time: measurement,
            warm_up_time: warmup,
        }
    }
}

impl Criterion {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher<'_>)) -> &mut Self {
        let config = MeasureConfig {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        run_one(name, &self.filter, config, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and optional overrides.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark within the group (name is `group/label`).
    pub fn bench_function(&mut self, label: &str, f: impl FnMut(&mut Bencher<'_>)) -> &mut Self {
        let config = MeasureConfig {
            sample_size: self.sample_size.unwrap_or(self.parent.sample_size),
            measurement_time: self.parent.measurement_time,
            warm_up_time: self.parent.warm_up_time,
        };
        let full = format!("{}/{}", self.name, label);
        run_one(&full, &self.parent.filter, config, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one(
    name: &str,
    filter: &Option<String>,
    config: MeasureConfig,
    mut f: impl FnMut(&mut Bencher<'_>),
) {
    if let Some(filter) = filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        config: &config,
        sample: None,
    };
    f(&mut bencher);
    if let Some(sample) = bencher.sample {
        println!(
            "bench: {name:<55} mean {:>12}  (min {}, max {}, {} iters)",
            format_ns(sample.mean_ns),
            format_ns(sample.min_ns),
            format_ns(sample.max_ns),
            sample.iterations
        );
        if let Ok(path) = std::env::var("AE_BENCH_JSON") {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    file,
                    "{{\"name\": \"{name}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1}}}",
                    sample.mean_ns, sample.min_ns, sample.max_ns
                );
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
