//! No-op `Serialize` / `Deserialize` derive macros.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` as a structural
//! marker; actual serialization happens through the hand-rolled JSON codec
//! in `ae-ml` (see `ae_ml::json`). These derives therefore expand to
//! nothing, which keeps the annotations compiling without the real `serde`
//! (unavailable offline).

use proc_macro::TokenStream;

/// Expands to nothing; marks a type as conceptually serializable.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; marks a type as conceptually deserializable.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
