//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! the (small) subset of the rand 0.8 API the workspace uses, backed by the
//! xoshiro256** generator seeded through SplitMix64. Everything is
//! deterministic given a seed, which is all the reproduction relies on —
//! no claim of statistical equivalence with upstream `StdRng` is made.

#![warn(missing_docs)]
#![deny(unsafe_code)]

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step; used for seed expansion and stream derivation.
#[inline]
pub fn split_mix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives an independent stream seed from `(base, index)`.
///
/// Parallel pipelines seed one generator per work unit with
/// `derive_stream_seed(base, unit_index)`, which makes results independent
/// of the order units execute in — the foundation of the workspace's
/// "parallel ≡ sequential, bit for bit" guarantee.
#[inline]
pub fn derive_stream_seed(base: u64, index: u64) -> u64 {
    let mut state = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    // Two mixing rounds decorrelate adjacent indices.
    let first = split_mix64(&mut state);
    let mut state = first ^ base.rotate_left(32);
    split_mix64(&mut state)
}

/// Types that can be sampled uniformly over their whole domain (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let draw = ((rng.next_u64() as u128) % width) as $t;
                self.start.wrapping_add(draw)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // Wrapping width handles signed ranges with a negative
                // start (sign-extension makes `start as u128` huge).
                let width = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                let draw = ((rng.next_u64() as u128) % width) as $t;
                start.wrapping_add(draw)
            }
        }
    )*};
}

impl_int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let unit = f64::sample_standard(rng);
        start + unit * (end - start)
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (`rng.gen::<f64>()`, etc.).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Concrete generators.
pub mod rngs {
    use super::{split_mix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = split_mix64(&mut sm);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zero outputs in a row, so no check is needed.
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64_public(), b.next_u64_public());
        }
    }

    impl StdRng {
        fn next_u64_public(&mut self) -> u64 {
            use super::RngCore;
            self.next_u64()
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&w));
            let s = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&s));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
