//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! `proptest!` macro with `#![proptest_config(...)]`, numeric-range and
//! tuple strategies, `prop::collection::vec`, `prop::bool::ANY`,
//! `prop_map`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Cases are drawn from a generator seeded by the test's name (override
//! with the `PROPTEST_SEED` environment variable), so failures are
//! reproducible. There is no shrinking: a failing case reports its values
//! through the assertion message instead.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Minimal deterministic generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty bound");
        self.next_u64() % bound
    }
}

/// Builds the deterministic generator for a named test.
pub fn test_rng(test_name: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            return TestRng::new(seed);
        }
    }
    // FNV-1a over the test name: stable across runs and platforms.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in test_name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::new(hash)
}

/// Per-test configuration.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adaptor created by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(width) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let width = (end as u128 - start as u128 + 1) as u64;
                start + rng.below(width) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.unit_f64() * (self.end() - self.start())
    }
}

/// A strategy always producing the same value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+ );)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Built-in strategy namespaces, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with random length and elements.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `Vec` strategy: `size` random elements drawn from `element`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.clone().sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean strategy (`prop::bool::ANY`).
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform boolean strategy instance.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assume, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// process) so the driver can report the offending inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
}

/// Skips cases not satisfying a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The property-test macro: declares `#[test]` functions whose arguments
/// are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(stringify!($name));
                let mut accepted: u32 = 0;
                let mut attempts: u32 = 0;
                let max_attempts = config.cases.saturating_mul(20).max(20);
                while accepted < config.cases && attempts < max_attempts {
                    attempts += 1;
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    let case = || -> $crate::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    };
                    match case() {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed on case {}: {}",
                                stringify!($name),
                                accepted,
                                msg
                            );
                        }
                    }
                }
                // Mirror real proptest: exhausting the attempt budget before
                // reaching the configured case count is an error, not a
                // silently weaker test.
                assert!(
                    accepted >= config.cases,
                    "proptest '{}' rejected too many cases via prop_assume! \
                     ({} accepted / {} attempts, {} required)",
                    stringify!($name),
                    accepted,
                    attempts,
                    config.cases
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_are_respected(x in 3usize..10, y in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn assume_filters_cases(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_and_tuple_strategies_compose(v in prop::collection::vec((0usize..5, prop::bool::ANY), 1..4)) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            for (x, _flag) in v {
                prop_assert!(x < 5);
            }
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strategy = (0usize..10).prop_map(|x| x * 2);
        let mut rng = crate::test_rng("prop_map_transforms");
        for _ in 0..50 {
            let v = strategy.sample(&mut rng);
            assert_eq!(v % 2, 0);
            assert!(v < 20);
        }
    }
}
