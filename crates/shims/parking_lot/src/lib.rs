//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` returns a
//! guard directly (no `Result`). Poisoned std mutexes are recovered rather
//! than propagated, which matches parking_lot's poison-free behaviour.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
