//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` returns a
//! guard directly (no `Result`). Poisoned std mutexes are recovered rather
//! than propagated, which matches parking_lot's poison-free behaviour.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;
use std::sync::{
    Mutex as StdMutex, MutexGuard as StdMutexGuard, RwLock as StdRwLock,
    RwLockReadGuard as StdRwLockReadGuard, RwLockWriteGuard as StdRwLockWriteGuard,
};

/// A mutual-exclusion lock whose `lock()` never returns a `Result`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock whose `read()` / `write()` never return a `Result`.
///
/// Used for the read-mostly structures on the serving path (the sharded
/// model registry and the decoded-model cache): many concurrent readers,
/// rare writers performing an RCU-style `Arc` swap.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: StdRwLockReadGuard<'a, T>,
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: StdRwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(10);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 20);
        }
        *l.write() += 5;
        assert_eq!(*l.read(), 15);
        assert_eq!(l.into_inner(), 15);
    }

    #[test]
    fn rwlock_shared_across_threads() {
        use std::sync::Arc;
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }
}
