//! Observed simulation runs: events agree with the run's own
//! [`ae_engine::FaultSummary`], observation never changes results, and
//! fault counters accumulate across runs.

use ae_engine::{
    AllocationPolicy, ClusterConfig, EngineObs, FaultPlan, RunConfig, RunOutcome, Simulator, Stage,
    StageDag, Task,
};
use ae_obs::{EventKind, MetricsRegistry};

fn reference_dag() -> StageDag {
    StageDag::new(vec![
        Stage {
            id: 0,
            tasks: vec![Task::new(5.0); 32],
            parents: vec![],
        },
        Stage {
            id: 1,
            tasks: vec![Task::new(8.0); 4],
            parents: vec![0],
        },
        Stage {
            id: 2,
            tasks: vec![Task::new(2.5); 16],
            parents: vec![0],
        },
        Stage {
            id: 3,
            tasks: vec![Task::new(12.0); 2],
            parents: vec![1, 2],
        },
    ])
    .unwrap()
}

fn faulty_cfg(fault_seed: u64) -> RunConfig {
    let plan = FaultPlan::preemptions(0.8, 2.0)
        .with_node_loss(0.05)
        .with_stragglers(0.1, 3.0)
        .with_seed(fault_seed);
    RunConfig::default().with_seed(3).with_faults(plan)
}

#[test]
fn observed_run_is_bit_identical_and_events_match_summary() {
    let dag = reference_dag();
    let sim = Simulator::new(
        ClusterConfig::paper_default(),
        AllocationPolicy::static_allocation(16),
    )
    .unwrap();

    // Pick a seed whose run completes with both revocations and losses.
    let (cfg, plain) = (0..64u64)
        .map(|s| {
            let cfg = faulty_cfg(s);
            let r = sim.run("q", &dag, &cfg);
            (cfg, r)
        })
        .find(|(_, r)| {
            r.outcome.is_completed() && r.faults.executors_revoked() > 0 && r.faults.tasks_lost > 0
        })
        .expect("some seed must revoke and lose tasks");

    let obs = EngineObs::new(4096);
    let observed = sim.run_observed("q", &dag, &cfg, &obs);

    // Observation must never perturb the simulation.
    assert_eq!(
        plain.elapsed_secs.to_bits(),
        observed.elapsed_secs.to_bits()
    );
    assert_eq!(
        plain.auc_executor_secs.to_bits(),
        observed.auc_executor_secs.to_bits()
    );
    assert_eq!(plain.faults, observed.faults);
    assert_eq!(plain.outcome, observed.outcome);

    // Event stream agrees with the run's own fault accounting.
    let events = obs.events().snapshot();
    let count = |pred: fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
    assert_eq!(
        count(|k| matches!(k, EventKind::FaultRevocation { .. })) as u32,
        observed.faults.executors_revoked()
    );
    assert_eq!(
        count(|k| matches!(k, EventKind::FaultReplacement { .. })) as u32,
        observed.faults.replacements_requested
    );
    assert_eq!(
        count(|k| matches!(k, EventKind::Straggler { .. })) as u32,
        observed.faults.stragglers
    );
    // Every lost task of a completed run is retried exactly once per loss.
    assert_eq!(
        count(|k| matches!(k, EventKind::FaultRetry { .. })) as u32,
        observed.faults.tasks_lost
    );
    // Reaped losses sum to the same total.
    let reaped: u32 = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::FaultReap { tasks_lost, .. } => Some(tasks_lost),
            _ => None,
        })
        .sum();
    assert_eq!(reaped, observed.faults.tasks_lost);
    assert_eq!(count(|k| matches!(k, EventKind::RunOutcome { .. })), 1);

    // Timestamps carry simulated time: the outcome event lands at the
    // run's elapsed time in nanoseconds, and the stream is time-ordered.
    let outcome_ns = events
        .iter()
        .find(|e| matches!(e.kind, EventKind::RunOutcome { .. }))
        .unwrap()
        .ts_ns;
    assert_eq!(outcome_ns, (observed.elapsed_secs * 1e9) as u64);
    assert!(events.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
}

#[test]
fn fault_counters_survive_across_runs() {
    let dag = reference_dag();
    let sim = Simulator::new(
        ClusterConfig::paper_default(),
        AllocationPolicy::static_allocation(16),
    )
    .unwrap();
    let registry = MetricsRegistry::new();
    let obs = EngineObs::with_registry(&registry, "engine", 65_536);

    let mut revoked = 0u64;
    let mut failed = 0u64;
    for seed in 0..8u64 {
        let result = sim.run_observed("q", &dag, &faulty_cfg(seed), &obs);
        revoked += u64::from(result.faults.executors_revoked());
        if result.outcome != RunOutcome::Completed {
            failed += 1;
        }
    }

    // Per-run summaries are gone; the registry still has the aggregate.
    let snap = registry.snapshot();
    assert_eq!(snap.counter("engine.runs"), Some(8));
    assert_eq!(snap.counter("engine.runs_failed"), Some(failed));
    assert_eq!(
        snap.counter("engine.preempted_executors").unwrap()
            + snap.counter("engine.node_loss_executors").unwrap(),
        revoked
    );
}
