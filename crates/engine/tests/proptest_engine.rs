//! Property-based tests for the execution simulator.

use ae_engine::{AllocationPolicy, ClusterConfig, RunConfig, Simulator, Stage, StageDag, Task};
use proptest::prelude::*;

/// Strategy producing small random stage DAGs (each stage depends on the
/// previous one with some probability, otherwise it is a root).
fn dag_strategy() -> impl Strategy<Value = StageDag> {
    prop::collection::vec((1usize..40, 0.5f64..30.0, prop::bool::ANY), 1..6).prop_map(|specs| {
        let stages: Vec<Stage> = specs
            .iter()
            .enumerate()
            .map(|(idx, &(tasks, secs, chain))| Stage {
                id: idx,
                tasks: vec![Task::new(secs); tasks],
                parents: if idx > 0 && chain {
                    vec![idx - 1]
                } else {
                    vec![]
                },
            })
            .collect();
        StageDag::new(stages).expect("generated DAG is valid")
    })
}

fn static_sim(n: usize) -> Simulator {
    Simulator::new(
        ClusterConfig::paper_default(),
        AllocationPolicy::static_allocation(n),
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Noise-free run times never increase when executors are added
    /// (the monotonicity assumption behind the PPM, Section 3.1).
    #[test]
    fn run_time_monotone_in_executors(dag in dag_strategy()) {
        let cfg = RunConfig::deterministic();
        let mut last = f64::INFINITY;
        for n in [1usize, 2, 4, 8, 16, 32, 48] {
            let t = static_sim(n).run("prop", &dag, &cfg).elapsed_secs;
            prop_assert!(t <= last + 1e-6, "t({}) = {} exceeds previous {}", n, t, last);
            last = t;
        }
    }

    /// Elapsed time is bounded below by driver overhead + critical path and
    /// above by driver overhead + serial work (plus scheduling slack).
    #[test]
    fn elapsed_within_theoretical_bounds(dag in dag_strategy(), n in 1usize..48) {
        let cfg = RunConfig::deterministic();
        let r = static_sim(n).run("prop", &dag, &cfg).elapsed_secs;
        let lower = cfg.driver_overhead_secs + dag.critical_path_secs();
        // ec penalty is at most 8% (ec between 1 and 8), allocation waits are
        // bounded by the ramp for 48 executors (~30 s).
        let upper = cfg.driver_overhead_secs + dag.total_work_secs() * 1.1 + 40.0;
        prop_assert!(r >= lower - 1e-6, "elapsed {} below lower bound {}", r, lower);
        prop_assert!(r <= upper + 1e-6, "elapsed {} above upper bound {}", r, upper);
    }

    /// The executor occupancy is at least (max executors seen × 0) and at
    /// most max executors × elapsed; the skyline maximum never exceeds the
    /// static request.
    #[test]
    fn skyline_consistency(dag in dag_strategy(), n in 1usize..48) {
        let cfg = RunConfig::deterministic();
        let r = static_sim(n).run("prop", &dag, &cfg);
        prop_assert!(r.max_executors <= n);
        let bound = r.max_executors as f64 * r.elapsed_secs;
        prop_assert!(r.auc_executor_secs <= bound + 1e-6);
        prop_assert!(r.auc_executor_secs >= 0.0);
    }

    /// Dynamic allocation never exceeds its configured maximum.
    #[test]
    fn dynamic_allocation_respects_max(dag in dag_strategy(), max in 1usize..48) {
        let sim = Simulator::new(
            ClusterConfig::paper_default(),
            AllocationPolicy::dynamic(1, max),
        )
        .unwrap();
        let r = sim.run("prop", &dag, &RunConfig::deterministic());
        prop_assert!(r.max_executors <= max, "allocated {} > max {}", r.max_executors, max);
    }

    /// Task logs account for every task in the DAG.
    #[test]
    fn task_log_complete(dag in dag_strategy()) {
        let r = static_sim(8).run("prop", &dag, &RunConfig::deterministic().with_task_log());
        let log = r.task_log.unwrap();
        prop_assert_eq!(log.records.len(), dag.num_tasks());
        let logged: usize = log.stages.iter().map(|s| s.task_durations_secs.len()).sum();
        prop_assert_eq!(logged, dag.num_tasks());
    }
}
