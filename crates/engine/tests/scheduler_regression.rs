//! Regression pins for the event-driven scheduler rewrite.
//!
//! The elapsed-time / AUC constants below were produced by the original
//! scan-based simulator loop on a fixed DAG, across every allocation
//! policy, both allocation-lag models, and noisy and noise-free runs. The
//! event-queue implementation must reproduce them **bit for bit** — the
//! rewrite is a pure performance optimization, not a behaviour change.

// The pinned constants keep the full printed precision of the recorded runs.
#![allow(clippy::excessive_precision)]

use ae_engine::cluster::AllocationLag;
use ae_engine::scheduler::SimScratch;
use ae_engine::{AllocationPolicy, ClusterConfig, RunConfig, Simulator, Stage, StageDag, Task};

/// The reference DAG: a wide scan feeding two mid stages that join into a
/// narrow tail (fan-out/fan-in exercises the ready-queue bookkeeping).
fn reference_dag() -> StageDag {
    StageDag::new(vec![
        Stage {
            id: 0,
            tasks: vec![Task::new(5.0); 32],
            parents: vec![],
        },
        Stage {
            id: 1,
            tasks: vec![Task::new(8.0); 4],
            parents: vec![0],
        },
        Stage {
            id: 2,
            tasks: vec![Task::new(2.5); 16],
            parents: vec![0],
        },
        Stage {
            id: 3,
            tasks: vec![Task::new(12.0); 2],
            parents: vec![1, 2],
        },
    ])
    .unwrap()
}

fn run(policy: AllocationPolicy, instant: bool, seed: u64, noise_cv: f64) -> (f64, f64, usize) {
    let cluster = if instant {
        ClusterConfig {
            lag: AllocationLag::instant(),
            ..ClusterConfig::paper_default()
        }
    } else {
        ClusterConfig::paper_default()
    };
    let simulator = Simulator::new(cluster, policy).unwrap();
    let cfg = RunConfig {
        seed,
        noise_cv,
        ..RunConfig::default()
    };
    let result = simulator.run("ref", &reference_dag(), &cfg);
    (
        result.elapsed_secs,
        result.auc_executor_secs,
        result.max_executors,
    )
}

#[test]
fn static_allocation_pins() {
    // Values recorded from the pre-rewrite scan-based scheduler.
    assert_eq!(
        run(AllocationPolicy::static_allocation(8), false, 0, 0.0),
        (33.0, 232.0, 8)
    );
    assert_eq!(
        run(AllocationPolicy::static_allocation(8), false, 7, 0.05),
        (35.5519048100705817, 252.415238480564653, 8)
    );
    assert_eq!(
        run(AllocationPolicy::static_allocation(48), true, 0, 0.05),
        (34.4308491862658599, 1652.68076094076127, 48)
    );
}

#[test]
fn dynamic_allocation_pins() {
    assert_eq!(
        run(AllocationPolicy::dynamic(1, 48), false, 0, 0.0),
        (37.0, 426.0, 18)
    );
    assert_eq!(
        run(AllocationPolicy::dynamic(1, 48), true, 7, 0.05),
        (35.5519048100705817, 244.415238480564653, 8)
    );
}

#[test]
fn predictive_allocation_pins() {
    assert_eq!(
        run(AllocationPolicy::predictive(25), false, 0, 0.0),
        (33.0, 648.0, 25)
    );
    assert_eq!(
        run(AllocationPolicy::predictive(25), true, 7, 0.05),
        (35.5519048100705817, 868.797620251764556, 25)
    );
}

#[test]
fn scratch_reuse_is_bit_identical_to_fresh_runs() {
    let dag = reference_dag();
    let mut scratch = SimScratch::new();
    for policy in [
        AllocationPolicy::static_allocation(12),
        AllocationPolicy::dynamic(1, 48),
        AllocationPolicy::predictive(20),
    ] {
        let simulator = Simulator::new(ClusterConfig::paper_default(), policy).unwrap();
        for seed in [0u64, 3, 9] {
            let cfg = RunConfig::default().with_seed(seed).with_task_log();
            let fresh = simulator.run("q", &dag, &cfg);
            let reused = simulator.run_with_scratch("q", &dag, &cfg, &mut scratch);
            assert_eq!(fresh.elapsed_secs, reused.elapsed_secs);
            assert_eq!(fresh.auc_executor_secs, reused.auc_executor_secs);
            assert_eq!(fresh.max_executors, reused.max_executors);
            assert_eq!(fresh.total_task_secs, reused.total_task_secs);
            assert_eq!(fresh.skyline.points(), reused.skyline.points());
            let (fresh_log, reused_log) = (fresh.task_log.unwrap(), reused.task_log.unwrap());
            assert_eq!(fresh_log.records, reused_log.records);
            assert_eq!(fresh_log.stages.len(), reused_log.stages.len());
        }
    }
}

#[test]
fn task_log_capture_off_still_reports_totals() {
    // Task-log bookkeeping is skipped entirely when capture is off; the
    // aggregate outputs must not change because of it.
    let dag = reference_dag();
    let simulator = Simulator::new(
        ClusterConfig::paper_default(),
        AllocationPolicy::static_allocation(8),
    )
    .unwrap();
    let with_log = simulator.run(
        "q",
        &dag,
        &RunConfig::default().with_seed(4).with_task_log(),
    );
    let without_log = simulator.run("q", &dag, &RunConfig::default().with_seed(4));
    assert!(without_log.task_log.is_none());
    assert_eq!(with_log.elapsed_secs, without_log.elapsed_secs);
    assert_eq!(with_log.auc_executor_secs, without_log.auc_executor_secs);
    assert_eq!(with_log.total_task_secs, without_log.total_task_secs);
}
