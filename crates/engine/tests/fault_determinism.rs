//! Determinism pins for fault injection.
//!
//! Two guarantees are pinned here, alongside `scheduler_regression.rs`:
//!
//! 1. **Zero-fault bit-identity** — a run with an explicit
//!    [`FaultPlan::none`] reproduces the pre-fault scheduler's recorded
//!    constants bit for bit (the fault machinery must be entirely inert).
//! 2. **Seeded-fault reproducibility** — the same `FaultPlan` seed yields
//!    bit-identical [`ae_engine::QueryRunResult`]s across repeated runs,
//!    scratch reuse, and thread placement (every fault draw comes from an
//!    index-keyed seed stream, never from shared mutable state).

#![allow(clippy::excessive_precision)]

use ae_engine::cluster::AllocationLag;
use ae_engine::scheduler::SimScratch;
use ae_engine::{
    AllocationPolicy, ClusterConfig, FaultPlan, RunConfig, RunOutcome, Simulator, Stage, StageDag,
    Task,
};

/// The same reference DAG as `scheduler_regression.rs`.
fn reference_dag() -> StageDag {
    StageDag::new(vec![
        Stage {
            id: 0,
            tasks: vec![Task::new(5.0); 32],
            parents: vec![],
        },
        Stage {
            id: 1,
            tasks: vec![Task::new(8.0); 4],
            parents: vec![0],
        },
        Stage {
            id: 2,
            tasks: vec![Task::new(2.5); 16],
            parents: vec![0],
        },
        Stage {
            id: 3,
            tasks: vec![Task::new(12.0); 2],
            parents: vec![1, 2],
        },
    ])
    .unwrap()
}

fn simulator(policy: AllocationPolicy) -> Simulator {
    Simulator::new(ClusterConfig::paper_default(), policy).unwrap()
}

fn assert_bit_identical(a: &ae_engine::QueryRunResult, b: &ae_engine::QueryRunResult) {
    assert_eq!(a.elapsed_secs.to_bits(), b.elapsed_secs.to_bits());
    assert_eq!(a.auc_executor_secs.to_bits(), b.auc_executor_secs.to_bits());
    assert_eq!(a.max_executors, b.max_executors);
    assert_eq!(a.total_task_secs.to_bits(), b.total_task_secs.to_bits());
    assert_eq!(a.skyline.points(), b.skyline.points());
    assert_eq!(a.outcome, b.outcome);
    assert_eq!(a.faults, b.faults);
}

#[test]
fn zero_fault_plan_reproduces_pre_fault_pins() {
    // The recorded constants of scheduler_regression.rs, re-asserted with
    // an *explicit* zero-fault plan: FaultPlan::none() must be inert.
    let cfg = RunConfig {
        seed: 7,
        noise_cv: 0.05,
        faults: FaultPlan::none(),
        ..RunConfig::default()
    };
    let result =
        simulator(AllocationPolicy::static_allocation(8)).run("ref", &reference_dag(), &cfg);
    assert_eq!(result.elapsed_secs, 35.5519048100705817);
    assert_eq!(result.auc_executor_secs, 252.415238480564653);
    assert_eq!(result.max_executors, 8);
    assert_eq!(result.outcome, RunOutcome::Completed);
    assert!(result.faults.is_clean());

    let noise_free = RunConfig {
        noise_cv: 0.0,
        faults: FaultPlan::none(),
        ..RunConfig::default()
    };
    let result =
        simulator(AllocationPolicy::dynamic(1, 48)).run("ref", &reference_dag(), &noise_free);
    assert_eq!(result.elapsed_secs, 37.0);
    assert_eq!(result.auc_executor_secs, 426.0);
    assert_eq!(result.max_executors, 18);
}

#[test]
fn same_fault_seed_is_bit_identical_across_runs_and_scratch_reuse() {
    let dag = reference_dag();
    let mut scratch = SimScratch::new();
    for policy in [
        AllocationPolicy::static_allocation(12),
        AllocationPolicy::dynamic(1, 48),
        AllocationPolicy::predictive(20),
    ] {
        let sim = simulator(policy);
        for fault_seed in [1u64, 5, 11] {
            let plan = FaultPlan::preemptions(0.5, 2.0)
                .with_node_loss(0.05)
                .with_stragglers(0.05, 3.0)
                .with_seed(fault_seed);
            let cfg = RunConfig::default().with_seed(3).with_faults(plan);
            let fresh = sim.run("q", &dag, &cfg);
            let repeated = sim.run("q", &dag, &cfg);
            let reused = sim.run_with_scratch("q", &dag, &cfg, &mut scratch);
            assert_bit_identical(&fresh, &repeated);
            assert_bit_identical(&fresh, &reused);
        }
    }
}

#[test]
fn fault_runs_are_thread_placement_independent() {
    // Simulate the same faulty run from many rayon worker threads at once;
    // every result must be bit-identical to the sequential one (no fault
    // draw may depend on shared mutable state or execution order).
    let dag = reference_dag();
    let plan = FaultPlan::preemptions(0.4, 2.0)
        .with_stragglers(0.1, 2.0)
        .with_seed(17);
    let cfg = RunConfig::default().with_seed(5).with_faults(plan);
    let sim = simulator(AllocationPolicy::static_allocation(16));
    let sequential = sim.run("q", &dag, &cfg);
    use rayon::prelude::*;
    let parallel: Vec<_> = (0..8)
        .collect::<Vec<u32>>()
        .into_par_iter()
        .map(|_| sim.run("q", &dag, &cfg))
        .collect();
    for result in &parallel {
        assert_bit_identical(&sequential, result);
    }
}

#[test]
fn moderate_preemption_completes_via_retry() {
    // At the acceptance-criteria rate (0.1 revocations per executor-minute)
    // queries must complete through the retry path across many seeds.
    let dag = reference_dag();
    let sim = simulator(AllocationPolicy::static_allocation(16));
    let mut revoked_total = 0u32;
    for fault_seed in 0..50u64 {
        let plan = FaultPlan::preemptions(0.1, 2.0).with_seed(fault_seed);
        let cfg = RunConfig::default().with_seed(2).with_faults(plan);
        let result = sim.run("q", &dag, &cfg);
        assert_eq!(
            result.outcome,
            RunOutcome::Completed,
            "seed {fault_seed} failed: {:?}",
            result.faults
        );
        revoked_total += result.faults.executors_revoked();
    }
    assert!(
        revoked_total > 0,
        "the sweep should observe at least one revocation"
    );
}

#[test]
fn preemption_increases_elapsed_and_accounts_losses() {
    let dag = reference_dag();
    let sim = simulator(AllocationPolicy::static_allocation(16));
    let clean_cfg = RunConfig::default().with_seed(2);
    let clean = sim.run("q", &dag, &clean_cfg);

    // An aggressive plan whose seed provably loses tasks.
    let mut lossy = None;
    for fault_seed in 0..32u64 {
        let plan = FaultPlan::preemptions(2.0, 1.0).with_seed(fault_seed);
        let cfg = clean_cfg.with_faults(plan);
        let result = sim.run("q", &dag, &cfg);
        if result.faults.tasks_lost > 0 && result.outcome.is_completed() {
            lossy = Some(result);
            break;
        }
    }
    let lossy = lossy.expect("an aggressive preemption plan should lose tasks");
    assert!(lossy.elapsed_secs > clean.elapsed_secs);
    assert!(lossy.faults.work_lost_secs > 0.0);
    assert!(lossy.faults.recovery_secs > 0.0);
    assert!(lossy.faults.replacements_requested > 0);
}

#[test]
fn checkpointing_reduces_work_lost() {
    // With full checkpointing, a retry resumes where the task was lost, so
    // no work is lost and recovery completes no later than from scratch.
    let dag = reference_dag();
    let sim = simulator(AllocationPolicy::static_allocation(16));
    for fault_seed in 0..32u64 {
        let scratch_plan = FaultPlan::preemptions(2.0, 1.0).with_seed(fault_seed);
        let ckpt_plan = scratch_plan.with_checkpoint_fraction(1.0);
        let base = RunConfig::default().with_seed(2);
        let from_scratch = sim.run("q", &dag, &base.with_faults(scratch_plan));
        let checkpointed = sim.run("q", &dag, &base.with_faults(ckpt_plan));
        if from_scratch.faults.tasks_lost == 0 {
            continue;
        }
        assert_eq!(checkpointed.faults.work_lost_secs, 0.0);
        assert!(checkpointed.elapsed_secs <= from_scratch.elapsed_secs + 1e-9);
        return;
    }
    panic!("no seed lost a task at rate 2.0/executor-min");
}

#[test]
fn retry_exhaustion_fails_the_run() {
    // Permanent revocation of everything with retries capped at zero: the
    // first loss must surface as a first-class failure outcome.
    let dag = reference_dag();
    let sim = simulator(AllocationPolicy::static_allocation(8));
    for fault_seed in 0..32u64 {
        let plan = FaultPlan::preemptions(20.0, 0.0)
            .with_seed(fault_seed)
            .with_max_task_retries(0);
        let cfg = RunConfig::default().with_faults(plan);
        let result = sim.run("q", &dag, &cfg);
        if let RunOutcome::Failed(reason) = &result.outcome {
            assert!(
                matches!(
                    reason,
                    ae_engine::FailureReason::RetriesExhausted { .. }
                        | ae_engine::FailureReason::ResourcesExhausted
                ),
                "unexpected failure reason: {reason}"
            );
            return;
        }
    }
    panic!("no seed failed at rate 20/executor-min with zero retries");
}

#[test]
fn no_reacquire_exhausts_resources() {
    // Everything dies quickly and nothing is re-acquired: the run must
    // fail (resources exhausted or retries exhausted), never hang.
    let dag = reference_dag();
    let sim = simulator(AllocationPolicy::static_allocation(8));
    let mut saw_failure = false;
    for fault_seed in 0..16u64 {
        let plan = FaultPlan::preemptions(30.0, 0.5)
            .with_seed(fault_seed)
            .with_reacquire(false);
        let cfg = RunConfig::default().with_faults(plan);
        let result = sim.run("q", &dag, &cfg);
        saw_failure |= !result.outcome.is_completed();
    }
    assert!(saw_failure, "permanent total revocation should fail runs");
}

#[test]
fn stragglers_slow_the_run_without_touching_base_noise() {
    let dag = reference_dag();
    let sim = simulator(AllocationPolicy::static_allocation(16));
    let base = RunConfig::default().with_seed(4);
    let clean = sim.run("q", &dag, &base);
    let straggly = sim.run(
        "q",
        &dag,
        &base.with_faults(FaultPlan::none().with_stragglers(1.0, 2.0).with_seed(1)),
    );
    // Every task a 2× straggler: elapsed grows, and the straggler count
    // covers the whole DAG.
    assert!(straggly.elapsed_secs > clean.elapsed_secs);
    assert_eq!(straggly.faults.stragglers, 54);
    assert!(straggly.total_task_secs > clean.total_task_secs * 1.9);
}

#[test]
fn node_loss_takes_colocated_executors_together() {
    // Node loss only (no spot preemption): revocations must come in groups
    // sharing a node (paper cluster hosts 2 executors per node).
    let dag = reference_dag();
    let sim = simulator(AllocationPolicy::static_allocation(16));
    let mut observed = false;
    for fault_seed in 0..64u64 {
        let plan = FaultPlan::none().with_node_loss(0.5).with_seed(fault_seed);
        let cfg = RunConfig::default().with_seed(2).with_faults(plan);
        let result = sim.run("q", &dag, &cfg);
        assert_eq!(result.faults.preempted_executors, 0);
        if result.faults.node_loss_executors >= 2 {
            observed = true;
        }
    }
    assert!(observed, "node loss should revoke co-located executors");
}

#[test]
fn allocation_lag_instant_vs_synapse_changes_recovery() {
    // Re-acquisition goes back through AllocationLag: with instant grants a
    // replacement is usable immediately, with Synapse-like lag it is not.
    let dag = reference_dag();
    let instant = Simulator::new(
        ClusterConfig {
            lag: AllocationLag::instant(),
            ..ClusterConfig::paper_default()
        },
        AllocationPolicy::static_allocation(16),
    )
    .unwrap();
    let laggy = simulator(AllocationPolicy::static_allocation(16));
    for fault_seed in 0..32u64 {
        let plan = FaultPlan::preemptions(2.0, 1.0).with_seed(fault_seed);
        let cfg = RunConfig::default().with_seed(2).with_faults(plan);
        let fast = instant.run("q", &dag, &cfg);
        let slow = laggy.run("q", &dag, &cfg);
        if fast.faults.tasks_lost > 0 && slow.faults.tasks_lost > 0 {
            assert!(slow.elapsed_secs >= fast.elapsed_secs - 1e-9);
            return;
        }
    }
    panic!("no seed lost tasks under both lag models");
}
