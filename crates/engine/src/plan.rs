//! Query plans: operator trees plus the compile-time statistics used as
//! model features (Table 2 of the paper).
//!
//! A [`QueryPlan`] is what the (simulated) query optimizer hands to the
//! AutoExecutor rule: a tree of relational operators annotated with
//! cardinality and size estimates, together with the number of input data
//! sources. All of the parameter-model features can be derived from it at
//! compile/optimization time; no runtime statistics are involved.

use serde::{Deserialize, Serialize};

/// Relational operator kinds.
///
/// The paper's TPC-DS plans contain 14 distinct operator types; this list
/// mirrors the common Spark SQL physical operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Leaf scan over an input source.
    TableScan,
    /// Row filter (predicate).
    Filter,
    /// Column projection / expression evaluation.
    Project,
    /// Join of two children.
    Join,
    /// Hash or sort aggregation.
    Aggregate,
    /// Sort.
    Sort,
    /// Union of children.
    Union,
    /// Shuffle/exchange boundary.
    Exchange,
    /// Row-limit operator.
    Limit,
    /// Window function evaluation.
    Window,
    /// Expand (used by grouping sets / rollup).
    Expand,
    /// Generate (explode / lateral view).
    Generate,
    /// Scalar or correlated subquery.
    Subquery,
    /// Small in-memory relation (constant data).
    LocalRelation,
}

impl OperatorKind {
    /// All operator kinds, in a stable order used for featurization.
    pub const ALL: [OperatorKind; 14] = [
        OperatorKind::TableScan,
        OperatorKind::Filter,
        OperatorKind::Project,
        OperatorKind::Join,
        OperatorKind::Aggregate,
        OperatorKind::Sort,
        OperatorKind::Union,
        OperatorKind::Exchange,
        OperatorKind::Limit,
        OperatorKind::Window,
        OperatorKind::Expand,
        OperatorKind::Generate,
        OperatorKind::Subquery,
        OperatorKind::LocalRelation,
    ];

    /// Stable display name used in feature vectors and reports.
    pub fn name(&self) -> &'static str {
        match self {
            OperatorKind::TableScan => "TableScan",
            OperatorKind::Filter => "Filter",
            OperatorKind::Project => "Project",
            OperatorKind::Join => "Join",
            OperatorKind::Aggregate => "Aggregate",
            OperatorKind::Sort => "Sort",
            OperatorKind::Union => "Union",
            OperatorKind::Exchange => "Exchange",
            OperatorKind::Limit => "Limit",
            OperatorKind::Window => "Window",
            OperatorKind::Expand => "Expand",
            OperatorKind::Generate => "Generate",
            OperatorKind::Subquery => "Subquery",
            OperatorKind::LocalRelation => "LocalRelation",
        }
    }
}

/// One node of the operator tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlanNode {
    /// Operator kind.
    pub kind: OperatorKind,
    /// Estimated number of rows flowing out of this operator.
    pub estimated_rows: f64,
    /// Estimated number of bytes read by this operator (non-zero only for
    /// scans in practice, but any operator may carry a value).
    pub estimated_input_bytes: f64,
    /// Child operators.
    pub children: Vec<PlanNode>,
}

impl PlanNode {
    /// Creates a leaf node with no children.
    pub fn leaf(kind: OperatorKind, estimated_rows: f64, estimated_input_bytes: f64) -> Self {
        Self {
            kind,
            estimated_rows,
            estimated_input_bytes,
            children: Vec::new(),
        }
    }

    /// Creates an internal node over `children`.
    pub fn internal(kind: OperatorKind, estimated_rows: f64, children: Vec<PlanNode>) -> Self {
        Self {
            kind,
            estimated_rows,
            estimated_input_bytes: 0.0,
            children,
        }
    }

    fn visit<'a>(&'a self, f: &mut impl FnMut(&'a PlanNode, usize), depth: usize) {
        f(self, depth);
        for child in &self.children {
            child.visit(f, depth + 1);
        }
    }
}

/// Compile-time plan statistics — exactly the quantities in Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanStats {
    /// Count of each operator kind, indexed in [`OperatorKind::ALL`] order.
    pub operator_counts: Vec<usize>,
    /// Total number of operators in the plan.
    pub total_operators: usize,
    /// Maximum depth of the plan tree (root has depth 1).
    pub max_depth: usize,
    /// Number of distinct input data sources (table scans).
    pub num_input_sources: usize,
    /// Estimated total input bytes read by the query.
    pub total_input_bytes: f64,
    /// Estimated total rows processed over all operators.
    pub total_rows_processed: f64,
}

impl PlanStats {
    /// Count for a specific operator kind.
    pub fn count_of(&self, kind: OperatorKind) -> usize {
        let idx = OperatorKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("kind in ALL");
        self.operator_counts[idx]
    }
}

/// A named query plan: the unit AutoExecutor makes decisions for.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryPlan {
    /// Query name, e.g. `"q94"` or `"q14b"`.
    pub name: String,
    /// Root of the operator tree.
    pub root: PlanNode,
}

impl QueryPlan {
    /// Creates a named plan.
    pub fn new(name: impl Into<String>, root: PlanNode) -> Self {
        Self {
            name: name.into(),
            root,
        }
    }

    /// Derives the compile-time statistics of Table 2 from the operator tree.
    pub fn stats(&self) -> PlanStats {
        let mut counts = vec![0usize; OperatorKind::ALL.len()];
        let mut total = 0usize;
        let mut max_depth = 0usize;
        let mut inputs = 0usize;
        let mut bytes = 0.0f64;
        let mut rows = 0.0f64;
        self.root.visit(
            &mut |node, depth| {
                let idx = OperatorKind::ALL
                    .iter()
                    .position(|k| *k == node.kind)
                    .expect("kind in ALL");
                counts[idx] += 1;
                total += 1;
                max_depth = max_depth.max(depth + 1);
                if node.kind == OperatorKind::TableScan {
                    inputs += 1;
                }
                bytes += node.estimated_input_bytes;
                rows += node.estimated_rows;
            },
            0,
        );
        PlanStats {
            operator_counts: counts,
            total_operators: total,
            max_depth,
            num_input_sources: inputs,
            total_input_bytes: bytes,
            total_rows_processed: rows,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// scan -> filter -> join(scan) -> aggregate
    fn sample_plan() -> QueryPlan {
        let scan_a = PlanNode::leaf(OperatorKind::TableScan, 1_000_000.0, 5e8);
        let scan_b = PlanNode::leaf(OperatorKind::TableScan, 10_000.0, 2e6);
        let filter = PlanNode::internal(OperatorKind::Filter, 200_000.0, vec![scan_a]);
        let join = PlanNode::internal(OperatorKind::Join, 150_000.0, vec![filter, scan_b]);
        let agg = PlanNode::internal(OperatorKind::Aggregate, 100.0, vec![join]);
        QueryPlan::new("sample", agg)
    }

    #[test]
    fn stats_count_operators_and_inputs() {
        let stats = sample_plan().stats();
        assert_eq!(stats.total_operators, 5);
        assert_eq!(stats.num_input_sources, 2);
        assert_eq!(stats.count_of(OperatorKind::TableScan), 2);
        assert_eq!(stats.count_of(OperatorKind::Join), 1);
        assert_eq!(stats.count_of(OperatorKind::Sort), 0);
    }

    #[test]
    fn stats_compute_depth_bytes_rows() {
        let stats = sample_plan().stats();
        // agg -> join -> filter -> scan_a is the longest path: depth 4.
        assert_eq!(stats.max_depth, 4);
        assert!((stats.total_input_bytes - 5.02e8).abs() < 1e3);
        let expected_rows = 1_000_000.0 + 10_000.0 + 200_000.0 + 150_000.0 + 100.0;
        assert!((stats.total_rows_processed - expected_rows).abs() < 1e-6);
    }

    #[test]
    fn single_leaf_plan_has_depth_one() {
        let plan = QueryPlan::new("leaf", PlanNode::leaf(OperatorKind::TableScan, 10.0, 100.0));
        let stats = plan.stats();
        assert_eq!(stats.max_depth, 1);
        assert_eq!(stats.total_operators, 1);
    }

    #[test]
    fn operator_kind_all_has_unique_names() {
        let mut names: Vec<&str> = OperatorKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 14);
    }

    #[test]
    fn operator_counts_align_with_all_order() {
        let stats = sample_plan().stats();
        assert_eq!(stats.operator_counts.len(), OperatorKind::ALL.len());
        let sum: usize = stats.operator_counts.iter().sum();
        assert_eq!(sum, stats.total_operators);
    }
}
