//! # ae-engine — a Spark-like serverless query-execution simulator
//!
//! The paper's evaluation runs Spark SQL queries on Azure Synapse pools and
//! observes how run time and executor occupancy respond to the number of
//! executors. This crate provides the equivalent substrate as a
//! discrete-event simulator:
//!
//! * [`plan`] — query plans (operator trees) with the compile-time statistics
//!   the parameter model consumes (Table 2 of the paper).
//! * [`stage`] — the physical side: stages, shuffle dependencies, and tasks
//!   with per-task work, plus the task log a post-hoc analyzer needs.
//! * [`cluster`] — cluster and executor sizing, and the allocation-lag model
//!   (the "runtime takes ~20–30 s to gradually allocate" behaviour of §5.4).
//! * [`allocation`] — executor-allocation policies: static, Spark-style
//!   dynamic allocation, and AutoExecutor's predictive-request /
//!   reactive-deallocation hybrid.
//! * [`scheduler`] — the discrete-event simulation itself, producing elapsed
//!   time, the executor-allocation skyline, and its area under the curve.
//! * [`faults`] — deterministic fault injection (spot preemptions, node
//!   loss, stragglers) with retry/re-schedule semantics and per-run fault
//!   accounting.
//! * [`skyline`] — skyline representation and the `AUC` (executor-seconds)
//!   metric.
//! * [`session`] — multi-query interactive applications (Figure 7).
//! * [`obs`] — opt-in observability: cross-run fault counters and typed
//!   fault events on the simulated clock
//!   ([`Simulator::run_observed`](scheduler::Simulator::run_observed)).
//!
//! The simulator's timing comes from task-level scheduling (critical paths,
//! slot contention, ramp-up lag, noise), *not* from the closed-form PPM
//! functions, so the prediction problem studied by the paper stays
//! non-trivial in this reproduction.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod allocation;
pub mod cluster;
pub mod faults;
pub mod obs;
pub mod plan;
pub mod scheduler;
pub mod session;
pub mod skyline;
pub mod stage;

pub use allocation::{AllocationPolicy, DynamicAllocationConfig};
pub use cluster::{AllocationLag, ClusterConfig, ExecutorSpec, NodeSpec};
pub use faults::{FailureReason, FaultKind, FaultPlan, FaultSummary, RunOutcome};
pub use obs::{EngineObs, FaultCounters};
pub use plan::{OperatorKind, PlanNode, PlanStats, QueryPlan};
pub use scheduler::{QueryRunResult, RunConfig, Simulator};
pub use session::{ApplicationSession, QuerySubmission, SessionResult};
pub use skyline::Skyline;
pub use stage::{Stage, StageDag, StageLog, Task, TaskLog, TaskRecord};

/// Errors produced by the execution simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// A configuration value is out of range or inconsistent.
    InvalidConfig(String),
    /// The stage DAG is malformed (cycle, dangling parent, no stages, ...).
    InvalidDag(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            EngineError::InvalidDag(s) => write!(f, "invalid stage DAG: {s}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, EngineError>;
