//! Observability for the execution simulator: fault counters that
//! survive across runs, and typed fault events on the simulated clock.
//!
//! A [`crate::FaultSummary`] is per-run and is dropped with its
//! [`crate::QueryRunResult`]; collection loops that simulate thousands
//! of runs lose the aggregate fault picture. [`EngineObs`] fixes both
//! halves:
//!
//! * [`FaultCounters`] accumulate every summary field (and run
//!   outcomes) monotonically across runs, either detached or registered
//!   in an [`ae_obs::MetricsRegistry`] under a name prefix
//!   (`engine.runs`, `engine.tasks_lost`, `engine.work_lost_us`, …).
//!   Fractional seconds are exported as integer microseconds.
//! * The [`EventSink`] records revocations, reaps, retries, straggler
//!   draws, and run outcomes as typed events stamped with **simulated
//!   time** (seconds scaled to nanoseconds), so the fault timeline of a
//!   run can be exported and correlated with serving-side events.
//!
//! Pass an `EngineObs` to [`crate::Simulator::run_observed`]; the plain
//! [`crate::Simulator::run`] / [`crate::Simulator::run_with_scratch`]
//! paths stay uninstrumented and bit-identical to previous releases.

use std::sync::Arc;

use ae_obs::{Counter, EventSink, MetricsRegistry};

use crate::faults::{FaultSummary, RunOutcome};

/// Converts simulated seconds to the integer microseconds used by the
/// exported counters (saturating, clamped at zero).
fn secs_to_us(secs: f64) -> u64 {
    if secs <= 0.0 {
        return 0;
    }
    let us = secs * 1e6;
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us as u64
    }
}

/// Monotonic fault accounting across simulated runs — the cross-run
/// aggregate of [`FaultSummary`], plus run outcomes.
#[derive(Debug, Clone)]
pub struct FaultCounters {
    /// Simulated runs recorded.
    pub runs: Arc<Counter>,
    /// Runs that ended in [`RunOutcome::Failed`].
    pub runs_failed: Arc<Counter>,
    /// Executors revoked by spot preemption.
    pub preempted_executors: Arc<Counter>,
    /// Executors revoked by node loss.
    pub node_loss_executors: Arc<Counter>,
    /// Task attempts lost to revocations.
    pub tasks_lost: Arc<Counter>,
    /// Replacement executors re-requested.
    pub replacements_requested: Arc<Counter>,
    /// Tasks slowed by the straggler injector.
    pub stragglers: Arc<Counter>,
    /// Task work discarded by losses, in core-microseconds.
    pub work_lost_us: Arc<Counter>,
    /// Loss-to-retry-completion time, in microseconds.
    pub recovery_us: Arc<Counter>,
}

impl FaultCounters {
    /// Counters not tied to any registry (read them through the fields).
    pub fn detached() -> Self {
        Self {
            runs: Arc::new(Counter::new()),
            runs_failed: Arc::new(Counter::new()),
            preempted_executors: Arc::new(Counter::new()),
            node_loss_executors: Arc::new(Counter::new()),
            tasks_lost: Arc::new(Counter::new()),
            replacements_requested: Arc::new(Counter::new()),
            stragglers: Arc::new(Counter::new()),
            work_lost_us: Arc::new(Counter::new()),
            recovery_us: Arc::new(Counter::new()),
        }
    }

    /// Counters registered in `registry` under `prefix` (e.g.
    /// `"{prefix}.tasks_lost"`), so they appear in registry snapshots.
    pub fn register(registry: &MetricsRegistry, prefix: &str) -> Self {
        let c = |name: &str| registry.counter(&format!("{prefix}.{name}"));
        Self {
            runs: c("runs"),
            runs_failed: c("runs_failed"),
            preempted_executors: c("preempted_executors"),
            node_loss_executors: c("node_loss_executors"),
            tasks_lost: c("tasks_lost"),
            replacements_requested: c("replacements_requested"),
            stragglers: c("stragglers"),
            work_lost_us: c("work_lost_us"),
            recovery_us: c("recovery_us"),
        }
    }

    /// Folds one run's summary (and outcome) into the aggregates.
    pub fn record(&self, summary: &FaultSummary, outcome: &RunOutcome) {
        self.runs.inc();
        if !outcome.is_completed() {
            self.runs_failed.inc();
        }
        self.preempted_executors
            .add(summary.preempted_executors as u64);
        self.node_loss_executors
            .add(summary.node_loss_executors as u64);
        self.tasks_lost.add(summary.tasks_lost as u64);
        self.replacements_requested
            .add(summary.replacements_requested as u64);
        self.stragglers.add(summary.stragglers as u64);
        self.work_lost_us.add(secs_to_us(summary.work_lost_secs));
        self.recovery_us.add(secs_to_us(summary.recovery_secs));
    }
}

/// Observability handles for [`crate::Simulator::run_observed`]: a typed
/// event sink on the simulated clock plus cross-run fault counters.
#[derive(Debug)]
pub struct EngineObs {
    events: EventSink,
    counters: FaultCounters,
}

impl EngineObs {
    /// Detached observability retaining at most `event_capacity` events.
    pub fn new(event_capacity: usize) -> Self {
        Self {
            events: EventSink::new(event_capacity),
            counters: FaultCounters::detached(),
        }
    }

    /// Observability whose counters live in `registry` under `prefix`.
    pub fn with_registry(registry: &MetricsRegistry, prefix: &str, event_capacity: usize) -> Self {
        Self {
            events: EventSink::new(event_capacity),
            counters: FaultCounters::register(registry, prefix),
        }
    }

    /// The event sink (events are stamped with simulated nanoseconds).
    pub fn events(&self) -> &EventSink {
        &self.events
    }

    /// The cross-run fault counters.
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// Simulated seconds → the nanosecond timestamps events carry.
    pub(crate) fn sim_ns(t_secs: f64) -> u64 {
        if t_secs <= 0.0 {
            return 0;
        }
        let ns = t_secs * 1e9;
        if ns >= u64::MAX as f64 {
            u64::MAX
        } else {
            ns as u64
        }
    }

    /// Records `kind` at simulated time `t_secs`.
    pub(crate) fn record_at_secs(&self, t_secs: f64, kind: ae_obs::EventKind) {
        self.events.record_at(Self::sim_ns(t_secs), kind);
    }

    /// Folds a finished run into the counters.
    pub(crate) fn record_run(&self, summary: &FaultSummary, outcome: &RunOutcome) {
        self.counters.record(summary, outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FailureReason;

    #[test]
    fn counters_accumulate_across_runs() {
        let obs = EngineObs::new(128);
        let summary = FaultSummary {
            preempted_executors: 2,
            node_loss_executors: 1,
            tasks_lost: 5,
            replacements_requested: 3,
            stragglers: 4,
            work_lost_secs: 1.5,
            recovery_secs: 2.25,
        };
        obs.record_run(&summary, &RunOutcome::Completed);
        obs.record_run(
            &summary,
            &RunOutcome::Failed(FailureReason::ResourcesExhausted),
        );
        let c = obs.counters();
        assert_eq!(c.runs.get(), 2);
        assert_eq!(c.runs_failed.get(), 1);
        assert_eq!(c.preempted_executors.get(), 4);
        assert_eq!(c.tasks_lost.get(), 10);
        assert_eq!(c.work_lost_us.get(), 3_000_000);
        assert_eq!(c.recovery_us.get(), 4_500_000);
    }

    #[test]
    fn registered_counters_appear_in_snapshots() {
        let registry = MetricsRegistry::new();
        let obs = EngineObs::with_registry(&registry, "engine", 16);
        obs.record_run(&FaultSummary::default(), &RunOutcome::Completed);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("engine.runs"), Some(1));
        assert_eq!(snap.counter("engine.tasks_lost"), Some(0));
    }

    #[test]
    fn sim_time_scaling_is_saturating() {
        assert_eq!(EngineObs::sim_ns(-1.0), 0);
        assert_eq!(EngineObs::sim_ns(1.5), 1_500_000_000);
        assert_eq!(EngineObs::sim_ns(f64::INFINITY), u64::MAX);
        assert_eq!(secs_to_us(f64::NAN), 0);
    }
}
