//! Executor-allocation skylines and the AUC (executor occupancy) metric.
//!
//! The paper's cost metric is the *area under the executor-allocation
//! skyline*: `AUC = ∫ n_s ds`, where `n_s` is the number of executors
//! allocated to the query at time `s` (Section 2). A [`Skyline`] is that
//! step function.

use serde::{Deserialize, Serialize};

/// A step function `time → allocated executors`, recorded as change points.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Skyline {
    /// `(time_secs, executor_count)` change points, non-decreasing in time.
    /// The value applies from its time until the next change point.
    points: Vec<(f64, usize)>,
    /// End of the observation window.
    end_secs: f64,
}

impl Skyline {
    /// Creates an empty skyline starting at time zero with zero executors.
    pub fn new() -> Self {
        Self {
            points: vec![(0.0, 0)],
            end_secs: 0.0,
        }
    }

    /// Records that the allocated executor count changed to `count` at `time`.
    ///
    /// Times must be non-decreasing; equal-time updates overwrite the last
    /// change point.
    pub fn record(&mut self, time_secs: f64, count: usize) {
        debug_assert!(time_secs >= 0.0, "negative skyline time");
        if let Some(last) = self.points.last_mut() {
            if (time_secs - last.0).abs() < 1e-12 {
                last.1 = count;
                self.end_secs = self.end_secs.max(time_secs);
                return;
            }
            debug_assert!(
                time_secs >= last.0,
                "skyline times must be non-decreasing ({} < {})",
                time_secs,
                last.0
            );
        }
        if self.points.last().map(|p| p.1) != Some(count) {
            self.points.push((time_secs, count));
        }
        self.end_secs = self.end_secs.max(time_secs);
    }

    /// Marks the end of the observation window (query completion time).
    pub fn finish(&mut self, end_secs: f64) {
        self.end_secs = self.end_secs.max(end_secs);
    }

    /// The executor count in effect at `time`.
    pub fn value_at(&self, time_secs: f64) -> usize {
        let mut value = 0;
        for &(t, c) in &self.points {
            if t <= time_secs {
                value = c;
            } else {
                break;
            }
        }
        value
    }

    /// The change points of the skyline.
    pub fn points(&self) -> &[(f64, usize)] {
        &self.points
    }

    /// End of the observation window.
    pub fn end_secs(&self) -> f64 {
        self.end_secs
    }

    /// Maximum executor count ever allocated (`n = max(n_s)` in the paper).
    pub fn max_executors(&self) -> usize {
        self.points.iter().map(|&(_, c)| c).max().unwrap_or(0)
    }

    /// Area under the skyline in executor-seconds (`AUC` in the paper).
    pub fn auc_executor_secs(&self) -> f64 {
        let mut auc = 0.0;
        for window in self.points.windows(2) {
            let (t0, c0) = window[0];
            let (t1, _) = window[1];
            auc += c0 as f64 * (t1 - t0);
        }
        if let Some(&(t_last, c_last)) = self.points.last() {
            if self.end_secs > t_last {
                auc += c_last as f64 * (self.end_secs - t_last);
            }
        }
        auc
    }

    /// Samples the skyline at a fixed interval, returning `(time, count)`
    /// pairs. Convenient for plotting Figure 12-style charts.
    pub fn sample(&self, interval_secs: f64) -> Vec<(f64, usize)> {
        assert!(interval_secs > 0.0, "sample interval must be positive");
        let mut out = Vec::new();
        let mut t = 0.0;
        while t <= self.end_secs + 1e-9 {
            out.push((t, self.value_at(t)));
            t += interval_secs;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_of_rectangular_skyline() {
        let mut s = Skyline::new();
        s.record(0.0, 10);
        s.finish(100.0);
        assert!((s.auc_executor_secs() - 1000.0).abs() < 1e-9);
        assert_eq!(s.max_executors(), 10);
    }

    #[test]
    fn auc_of_step_skyline() {
        let mut s = Skyline::new();
        s.record(0.0, 2);
        s.record(10.0, 6);
        s.record(30.0, 1);
        s.finish(40.0);
        // 2*10 + 6*20 + 1*10 = 150
        assert!((s.auc_executor_secs() - 150.0).abs() < 1e-9);
        assert_eq!(s.max_executors(), 6);
    }

    #[test]
    fn value_at_returns_latest_change() {
        let mut s = Skyline::new();
        s.record(0.0, 1);
        s.record(5.0, 4);
        assert_eq!(s.value_at(0.0), 1);
        assert_eq!(s.value_at(4.9), 1);
        assert_eq!(s.value_at(5.0), 4);
        assert_eq!(s.value_at(100.0), 4);
    }

    #[test]
    fn equal_time_update_overwrites() {
        let mut s = Skyline::new();
        s.record(0.0, 1);
        s.record(3.0, 5);
        s.record(3.0, 7);
        assert_eq!(s.value_at(3.0), 7);
        assert_eq!(s.max_executors(), 7);
    }

    #[test]
    fn duplicate_counts_do_not_add_points() {
        let mut s = Skyline::new();
        s.record(0.0, 3);
        s.record(5.0, 3);
        s.record(9.0, 3);
        // initial (0,0) overwritten to (0,3); no further points added
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    fn empty_skyline_has_zero_auc() {
        let s = Skyline::new();
        assert_eq!(s.auc_executor_secs(), 0.0);
        assert_eq!(s.max_executors(), 0);
    }

    #[test]
    fn sampling_covers_window() {
        let mut s = Skyline::new();
        s.record(0.0, 2);
        s.record(10.0, 5);
        s.finish(20.0);
        let samples = s.sample(5.0);
        assert_eq!(
            samples,
            vec![(0.0, 2), (5.0, 2), (10.0, 5), (15.0, 5), (20.0, 5)]
        );
    }
}
