//! Multi-query application sessions (Figure 7 of the paper).
//!
//! An interactive Spark application (for example a notebook) submits several
//! queries with think-time gaps in between. Executors allocated for one
//! query can be reused by the next query if it arrives before the idle
//! timeout releases them; otherwise the reactive deallocation path shrinks
//! the pool during the gap. [`ApplicationSession`] composes per-query
//! simulator runs into a single application-level skyline so that the
//! predictive-allocation + reactive-deallocation interplay can be observed.

use serde::{Deserialize, Serialize};

use crate::allocation::AllocationPolicy;
use crate::cluster::ClusterConfig;
use crate::scheduler::{QueryRunResult, RunConfig, Simulator};
use crate::skyline::Skyline;
use crate::stage::StageDag;
use crate::Result;

/// One query submitted to the session.
#[derive(Debug, Clone)]
pub struct QuerySubmission {
    /// Query name.
    pub name: String,
    /// Stage DAG of the query.
    pub dag: StageDag,
    /// Executor count requested for this query (e.g. an AutoExecutor
    /// prediction). `None` lets the session fall back to dynamic allocation.
    pub predicted_executors: Option<usize>,
    /// Think-time gap between the previous query finishing and this query
    /// being submitted.
    pub gap_before_secs: f64,
}

/// Per-query outcome within a session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionQueryOutcome {
    /// Query name.
    pub name: String,
    /// Submission time relative to session start.
    pub submitted_at_secs: f64,
    /// Elapsed time of the query.
    pub elapsed_secs: f64,
    /// Maximum executors allocated while the query ran.
    pub max_executors: usize,
    /// Executor occupancy attributable to the query window.
    pub auc_executor_secs: f64,
}

/// Result of simulating a whole application session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionResult {
    /// Combined executor skyline over the application lifetime.
    pub skyline: Skyline,
    /// Per-query outcomes in submission order.
    pub queries: Vec<SessionQueryOutcome>,
    /// Total elapsed application time.
    pub total_elapsed_secs: f64,
    /// Total executor occupancy of the application.
    pub total_auc_executor_secs: f64,
}

/// An interactive application session on a shared executor pool.
#[derive(Debug, Clone)]
pub struct ApplicationSession {
    cluster: ClusterConfig,
    idle_timeout_secs: f64,
    run_config: RunConfig,
}

impl ApplicationSession {
    /// Creates a session over the given cluster. `idle_timeout_secs` is the
    /// reactive-deallocation timeout applied between queries.
    pub fn new(
        cluster: ClusterConfig,
        idle_timeout_secs: f64,
        run_config: RunConfig,
    ) -> Result<Self> {
        cluster.validate()?;
        Ok(Self {
            cluster,
            idle_timeout_secs,
            run_config,
        })
    }

    /// Simulates the submissions in order and returns the combined result.
    pub fn run(&self, submissions: &[QuerySubmission]) -> Result<SessionResult> {
        let mut skyline = Skyline::new();
        let mut outcomes = Vec::with_capacity(submissions.len());
        let mut clock = 0.0f64;
        let mut carried_executors = 0usize;
        let mut total_auc = 0.0f64;

        for (idx, submission) in submissions.iter().enumerate() {
            // Idle gap before this query: executors persist until the idle
            // timeout, then the reactive path releases them.
            let gap = submission.gap_before_secs.max(0.0);
            if gap > 0.0 {
                if carried_executors > 0 {
                    let hold = gap.min(self.idle_timeout_secs);
                    skyline.record(clock, carried_executors);
                    total_auc += carried_executors as f64 * hold;
                    if gap > self.idle_timeout_secs {
                        skyline.record(clock + self.idle_timeout_secs, 0);
                        carried_executors = 0;
                    }
                }
                clock += gap;
            }

            let policy = match submission.predicted_executors {
                Some(predicted) => AllocationPolicy::Predictive {
                    initial: carried_executors.max(1),
                    predicted,
                    rule_delay_secs: 1.0,
                    idle_timeout_secs: self.idle_timeout_secs,
                },
                None => AllocationPolicy::dynamic(carried_executors.max(1), 48),
            };
            let simulator = Simulator::new(self.cluster, policy)?;
            let run_cfg = RunConfig {
                seed: self.run_config.seed.wrapping_add(idx as u64),
                ..self.run_config
            };
            let result: QueryRunResult = simulator.run(&submission.name, &submission.dag, &run_cfg);

            // Splice the per-query skyline into the application skyline.
            for &(t, count) in result.skyline.points() {
                skyline.record(clock + t, count);
            }
            skyline.finish(clock + result.elapsed_secs);

            outcomes.push(SessionQueryOutcome {
                name: submission.name.clone(),
                submitted_at_secs: clock,
                elapsed_secs: result.elapsed_secs,
                max_executors: result.max_executors,
                auc_executor_secs: result.auc_executor_secs,
            });
            total_auc += result.auc_executor_secs;
            carried_executors = result.skyline.value_at(result.elapsed_secs);
            clock += result.elapsed_secs;
        }

        // Executors remaining at the end are released by the idle timeout.
        if carried_executors > 0 {
            skyline.record(clock + self.idle_timeout_secs, 0);
            total_auc += carried_executors as f64 * self.idle_timeout_secs;
            clock += self.idle_timeout_secs;
        }
        skyline.finish(clock);

        Ok(SessionResult {
            skyline,
            queries: outcomes,
            total_elapsed_secs: clock,
            total_auc_executor_secs: total_auc,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{Stage, Task};

    fn small_dag(tasks: usize, secs: f64) -> StageDag {
        StageDag::new(vec![Stage {
            id: 0,
            tasks: vec![Task::new(secs); tasks],
            parents: vec![],
        }])
        .unwrap()
    }

    fn session() -> ApplicationSession {
        ApplicationSession::new(
            ClusterConfig::paper_default(),
            60.0,
            RunConfig::deterministic(),
        )
        .unwrap()
    }

    #[test]
    fn two_query_session_produces_two_outcomes() {
        let subs = vec![
            QuerySubmission {
                name: "q1".into(),
                dag: small_dag(32, 5.0),
                predicted_executors: Some(22),
                gap_before_secs: 0.0,
            },
            QuerySubmission {
                name: "q2".into(),
                dag: small_dag(48, 5.0),
                predicted_executors: Some(27),
                gap_before_secs: 20.0,
            },
        ];
        let result = session().run(&subs).unwrap();
        assert_eq!(result.queries.len(), 2);
        // Short queries can finish before the final grant wave lands, so the
        // observed maximum may fall slightly short of the request — but it
        // must never exceed it (the request is an upper bound).
        assert!(result.queries[0].max_executors <= 22);
        assert!(result.queries[0].max_executors >= 10);
        assert!(result.queries[1].max_executors <= 27);
        assert!(result.queries[1].max_executors >= 10);
        assert!(result.total_elapsed_secs > result.queries[0].elapsed_secs);
        assert!(result.total_auc_executor_secs > 0.0);
    }

    #[test]
    fn long_gap_releases_executors() {
        let subs = vec![
            QuerySubmission {
                name: "q1".into(),
                dag: small_dag(16, 5.0),
                predicted_executors: Some(10),
                gap_before_secs: 0.0,
            },
            QuerySubmission {
                name: "q2".into(),
                dag: small_dag(16, 5.0),
                predicted_executors: Some(10),
                gap_before_secs: 500.0, // far beyond the 60 s idle timeout
            },
        ];
        let result = session().run(&subs).unwrap();
        // Between queries the skyline must drop to zero at some point.
        let q2_start = result.queries[1].submitted_at_secs;
        let mid_gap = q2_start - 100.0;
        assert_eq!(result.skyline.value_at(mid_gap), 0);
    }

    #[test]
    fn submissions_in_order_have_increasing_submit_times() {
        let subs: Vec<QuerySubmission> = (0..3)
            .map(|i| QuerySubmission {
                name: format!("q{i}"),
                dag: small_dag(8, 2.0),
                predicted_executors: Some(4),
                gap_before_secs: 5.0,
            })
            .collect();
        let result = session().run(&subs).unwrap();
        for pair in result.queries.windows(2) {
            assert!(pair[1].submitted_at_secs > pair[0].submitted_at_secs);
        }
    }

    #[test]
    fn dynamic_fallback_works_without_prediction() {
        let subs = vec![QuerySubmission {
            name: "q".into(),
            dag: small_dag(32, 4.0),
            predicted_executors: None,
            gap_before_secs: 0.0,
        }];
        let result = session().run(&subs).unwrap();
        assert_eq!(result.queries.len(), 1);
        assert!(result.queries[0].max_executors >= 1);
    }
}
