//! Executor-allocation policies.
//!
//! Three families of policies appear in the paper's evaluation:
//!
//! * **Static allocation (SA)** — all executors requested up front at job
//!   submission (`SA(48)`, `SA(25)` in Figure 12).
//! * **Dynamic allocation (DA)** — Spark's reactive policy: when tasks pile
//!   up it requests exponentially more executors (1, 2, 4, ...), bounded by a
//!   `[min, max]` range; executors idle longer than a timeout are released.
//! * **Predictive (Rule)** — AutoExecutor's hybrid (Section 4.6): the
//!   optimizer rule requests the predicted executor count shortly after
//!   submission, scale-*up* by dynamic allocation is disabled, and the
//!   reactive path only *removes* idle executors.

use serde::{Deserialize, Serialize};

/// Parameters of the Spark-style reactive dynamic allocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicAllocationConfig {
    /// Minimum executors to keep allocated.
    pub min_executors: usize,
    /// Maximum executors the policy may request.
    pub max_executors: usize,
    /// Executors released after being idle this long.
    pub idle_timeout_secs: f64,
    /// Interval at which the policy re-evaluates pending work.
    pub schedule_interval_secs: f64,
    /// Backlog must persist this long before the *next* (exponentially
    /// larger) executor request is issued — Spark's sustained-scheduler-
    /// backlog timeout. This is what makes dynamic allocation react "too
    /// late" relative to a predictive up-front request.
    pub sustained_backlog_secs: f64,
}

impl DynamicAllocationConfig {
    /// The range the paper evaluates against: DA(1, 48) with Spark-like
    /// 60-second idle timeout and 1-second scheduler backlog interval.
    pub fn paper_default() -> Self {
        Self {
            min_executors: 1,
            max_executors: 48,
            idle_timeout_secs: 60.0,
            schedule_interval_secs: 1.0,
            sustained_backlog_secs: 4.0,
        }
    }

    /// Spark's out-of-the-box defaults observed in the production workloads:
    /// minimum 0 and an effectively unbounded maximum (2^31 − 1).
    pub fn spark_default() -> Self {
        Self {
            min_executors: 0,
            max_executors: i32::MAX as usize,
            idle_timeout_secs: 60.0,
            schedule_interval_secs: 1.0,
            sustained_backlog_secs: 4.0,
        }
    }
}

/// How executors are allocated to a query over its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AllocationPolicy {
    /// All `executors` requested at submission time.
    Static {
        /// Number of executors requested up front.
        executors: usize,
    },
    /// Spark reactive dynamic allocation.
    Dynamic(DynamicAllocationConfig),
    /// AutoExecutor: start with `initial` executors, request `predicted`
    /// executors when the optimizer rule fires at `rule_delay_secs` after
    /// submission, and release executors idle longer than
    /// `idle_timeout_secs` (reactive deallocation only — no reactive
    /// scale-up).
    Predictive {
        /// Executors present at submission (e.g. a small pool default).
        initial: usize,
        /// Executor count requested by the AutoExecutor rule.
        predicted: usize,
        /// Time after submission at which the rule issues its request
        /// (query compilation + optimization latency).
        rule_delay_secs: f64,
        /// Idle timeout for reactive deallocation.
        idle_timeout_secs: f64,
    },
}

impl AllocationPolicy {
    /// Static allocation of `n` executors.
    pub fn static_allocation(n: usize) -> Self {
        AllocationPolicy::Static { executors: n }
    }

    /// Dynamic allocation over `[min, max]` with paper-default timings.
    pub fn dynamic(min: usize, max: usize) -> Self {
        AllocationPolicy::Dynamic(DynamicAllocationConfig {
            min_executors: min,
            max_executors: max,
            ..DynamicAllocationConfig::paper_default()
        })
    }

    /// The AutoExecutor rule policy used in Figures 12 and 13: start with a
    /// small pool (5 executors in the paper's example), request the
    /// predicted count ~1 s into the run, release after 60 s idle.
    pub fn predictive(predicted: usize) -> Self {
        AllocationPolicy::Predictive {
            initial: 5,
            predicted,
            rule_delay_secs: 1.0,
            idle_timeout_secs: 60.0,
        }
    }

    /// The largest executor count this policy can ever hold.
    pub fn max_target(&self) -> usize {
        match *self {
            AllocationPolicy::Static { executors } => executors,
            AllocationPolicy::Dynamic(cfg) => cfg.max_executors,
            AllocationPolicy::Predictive {
                initial, predicted, ..
            } => initial.max(predicted),
        }
    }

    /// Executors present at submission time, before any reactive or
    /// predictive request is made.
    pub fn initial_executors(&self) -> usize {
        match *self {
            AllocationPolicy::Static { executors } => executors,
            AllocationPolicy::Dynamic(cfg) => cfg.min_executors.max(1),
            AllocationPolicy::Predictive { initial, .. } => initial.max(1),
        }
    }

    /// Whether the policy removes idle executors, and with what timeout.
    pub fn idle_timeout(&self) -> Option<f64> {
        match *self {
            AllocationPolicy::Static { .. } => None,
            AllocationPolicy::Dynamic(cfg) => Some(cfg.idle_timeout_secs),
            AllocationPolicy::Predictive {
                idle_timeout_secs, ..
            } => Some(idle_timeout_secs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_policy_targets_fixed_count() {
        let p = AllocationPolicy::static_allocation(25);
        assert_eq!(p.max_target(), 25);
        assert_eq!(p.initial_executors(), 25);
        assert_eq!(p.idle_timeout(), None);
    }

    #[test]
    fn dynamic_policy_reports_range_and_timeout() {
        let p = AllocationPolicy::dynamic(1, 48);
        assert_eq!(p.max_target(), 48);
        assert_eq!(p.initial_executors(), 1);
        assert_eq!(p.idle_timeout(), Some(60.0));
    }

    #[test]
    fn dynamic_min_zero_still_starts_with_one_executor() {
        // Spark needs at least one executor to make progress; the simulator
        // models the driver kicking off a first request immediately.
        let p = AllocationPolicy::Dynamic(DynamicAllocationConfig::spark_default());
        assert_eq!(p.initial_executors(), 1);
        assert_eq!(p.max_target(), i32::MAX as usize);
    }

    #[test]
    fn predictive_policy_takes_max_of_initial_and_predicted() {
        let p = AllocationPolicy::predictive(27);
        assert_eq!(p.max_target(), 27);
        assert_eq!(p.initial_executors(), 5);
        assert_eq!(p.idle_timeout(), Some(60.0));
        let small = AllocationPolicy::Predictive {
            initial: 10,
            predicted: 3,
            rule_delay_secs: 1.0,
            idle_timeout_secs: 60.0,
        };
        assert_eq!(small.max_target(), 10);
    }
}
