//! Deterministic fault injection for the execution simulator.
//!
//! The paper's testbed assumes a perfect cluster; the serverless
//! infrastructure the ROADMAP targets does not (Skyrise-style elastic
//! workers are *expected* to fail mid-query, and spot pools revoke
//! executors with a short grace window). This module models three fault
//! classes, all driven by seed streams independent of the run-noise
//! generator so a [`FaultPlan`] can be laid over any existing run without
//! perturbing its task durations:
//!
//! * **Spot preemption** — each executor draws a lifetime from an
//!   exponential distribution at [`FaultPlan::preemption_rate_per_executor_min`]
//!   on its own seed stream (keyed by executor index, so results do not
//!   depend on scheduling order). When the lifetime expires the executor's
//!   allocation is revoked; tasks finishing within
//!   [`FaultPlan::grace_period_secs`] complete, the rest are lost.
//! * **Node loss** — each node draws one failure time at
//!   [`FaultPlan::node_loss_rate_per_node_min`]; every executor hosted on
//!   the node (executor index / executors-per-node) that is online before
//!   that time dies together at it.
//! * **Stragglers** — each task independently runs
//!   [`FaultPlan::straggler_slowdown`]× slower with probability
//!   [`FaultPlan::straggler_prob`], drawn from a dedicated stream in task
//!   order.
//!
//! Lost tasks re-enter the scheduler's ready set with a restart cost
//! controlled by [`FaultPlan::checkpoint_fraction`] (0 = restart from
//! scratch, 1 = resume from the point of loss) plus a fixed
//! [`FaultPlan::restart_overhead_secs`]; replacement executors are
//! re-requested through the cluster's [`crate::cluster::AllocationLag`].
//! A task lost more than [`FaultPlan::max_task_retries`] times fails the
//! whole query run ([`RunOutcome::Failed`]).
//!
//! [`FaultPlan::none`] injects nothing, and the scheduler's fault branches
//! are gated on [`FaultPlan::is_active`], so a zero-fault plan is
//! **bit-identical** to the pre-fault scheduler (pinned by
//! `tests/fault_determinism.rs` alongside `scheduler_regression.rs`).

use rand::rngs::StdRng;
use rand::{derive_stream_seed, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{EngineError, Result};

/// Seed-stream index for the per-task straggler draws.
const STRAGGLER_STREAM: u64 = 0x5354_5241; // "STRA"
/// Base seed-stream index for per-executor lifetime draws.
const EXECUTOR_STREAM_BASE: u64 = 1 << 33;
/// Base seed-stream index for per-node loss draws.
const NODE_STREAM_BASE: u64 = 3 << 33;

/// A deterministic fault-injection plan for one simulated query run.
///
/// Like [`crate::RunConfig`]'s noise, every draw comes from a seeded
/// generator — the same plan over the same DAG produces bit-identical
/// [`crate::QueryRunResult`]s at any thread count — but the fault streams
/// are derived from [`FaultPlan::seed`], never from the noise seed, so
/// adding faults to a run does not reshuffle its task durations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault streams (independent of the run-noise seed).
    pub seed: u64,
    /// Spot-preemption rate, in revocations per executor-minute. Each
    /// executor's lifetime is exponential with this rate.
    pub preemption_rate_per_executor_min: f64,
    /// Node-loss rate, in failures per node-minute. All executors on a
    /// lost node are revoked together.
    pub node_loss_rate_per_node_min: f64,
    /// Grace window after a revocation: tasks finishing within it complete
    /// normally, tasks still running at its end are lost.
    pub grace_period_secs: f64,
    /// Probability that a task is a straggler.
    pub straggler_prob: f64,
    /// Slowdown multiplier applied to straggler tasks (≥ 1).
    pub straggler_slowdown: f64,
    /// Fraction of a lost task's elapsed work preserved by checkpointing:
    /// 0 restarts from scratch, 1 resumes exactly where the task was lost.
    pub checkpoint_fraction: f64,
    /// Fixed overhead added to every task restart (state re-fetch,
    /// re-scheduling).
    pub restart_overhead_secs: f64,
    /// Maximum times a single task may be lost and retried before the
    /// whole query run fails.
    pub max_task_retries: u32,
    /// Whether revoked executors are re-requested through the allocation
    /// lag (spot replacement). When false, capacity lost to faults is
    /// gone for the remainder of the run.
    pub reacquire: bool,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::none()
    }
}

impl FaultPlan {
    /// The empty plan: no faults of any kind. Scheduler output under this
    /// plan is bit-identical to the pre-fault scheduler.
    pub fn none() -> Self {
        Self {
            seed: 0,
            preemption_rate_per_executor_min: 0.0,
            node_loss_rate_per_node_min: 0.0,
            grace_period_secs: 2.0,
            straggler_prob: 0.0,
            straggler_slowdown: 4.0,
            checkpoint_fraction: 0.0,
            restart_overhead_secs: 1.0,
            max_task_retries: 8,
            reacquire: true,
        }
    }

    /// A spot-preemption plan at `rate` revocations per executor-minute
    /// with the given grace window.
    pub fn preemptions(rate_per_executor_min: f64, grace_period_secs: f64) -> Self {
        Self {
            preemption_rate_per_executor_min: rate_per_executor_min,
            grace_period_secs,
            ..Self::none()
        }
    }

    /// Sets the fault-stream seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds node loss at `rate` failures per node-minute.
    pub fn with_node_loss(mut self, rate_per_node_min: f64) -> Self {
        self.node_loss_rate_per_node_min = rate_per_node_min;
        self
    }

    /// Adds stragglers: each task runs `slowdown`× slower with
    /// probability `prob`.
    pub fn with_stragglers(mut self, prob: f64, slowdown: f64) -> Self {
        self.straggler_prob = prob;
        self.straggler_slowdown = slowdown;
        self
    }

    /// Sets the checkpoint fraction (0 = restart from scratch, 1 = resume).
    pub fn with_checkpoint_fraction(mut self, fraction: f64) -> Self {
        self.checkpoint_fraction = fraction.clamp(0.0, 1.0);
        self
    }

    /// Sets the per-restart fixed overhead.
    pub fn with_restart_overhead(mut self, secs: f64) -> Self {
        self.restart_overhead_secs = secs;
        self
    }

    /// Sets the retry cap after which a run fails.
    pub fn with_max_task_retries(mut self, retries: u32) -> Self {
        self.max_task_retries = retries;
        self
    }

    /// Enables or disables spot replacement of revoked executors.
    pub fn with_reacquire(mut self, reacquire: bool) -> Self {
        self.reacquire = reacquire;
        self
    }

    /// True when the plan injects anything at all. The scheduler's fault
    /// machinery is engaged only when this returns true, which is what
    /// guarantees the zero-fault bit-identity pin.
    pub fn is_active(&self) -> bool {
        self.preemption_rate_per_executor_min > 0.0
            || self.node_loss_rate_per_node_min > 0.0
            || self.straggler_prob > 0.0
    }

    /// Validates the plan's numeric ranges.
    pub fn validate(&self) -> Result<()> {
        let finite_nonneg = [
            ("preemption rate", self.preemption_rate_per_executor_min),
            ("node-loss rate", self.node_loss_rate_per_node_min),
            ("grace period", self.grace_period_secs),
            ("restart overhead", self.restart_overhead_secs),
        ];
        for (name, value) in finite_nonneg {
            if !value.is_finite() || value < 0.0 {
                return Err(EngineError::InvalidConfig(format!(
                    "fault-plan {name} must be finite and non-negative, got {value}"
                )));
            }
        }
        if !(0.0..=1.0).contains(&self.straggler_prob) {
            return Err(EngineError::InvalidConfig(format!(
                "straggler probability must be in [0, 1], got {}",
                self.straggler_prob
            )));
        }
        if !self.straggler_slowdown.is_finite() || self.straggler_slowdown < 1.0 {
            return Err(EngineError::InvalidConfig(format!(
                "straggler slowdown must be ≥ 1, got {}",
                self.straggler_slowdown
            )));
        }
        if !(0.0..=1.0).contains(&self.checkpoint_fraction) {
            return Err(EngineError::InvalidConfig(format!(
                "checkpoint fraction must be in [0, 1], got {}",
                self.checkpoint_fraction
            )));
        }
        Ok(())
    }

    /// The lifetime of executor `index` (seconds from coming online until
    /// its spot revocation), drawn from the executor's own seed stream.
    /// Infinite when preemptions are disabled.
    pub(crate) fn executor_lifetime(&self, index: usize) -> f64 {
        exp_sample(
            self.seed,
            EXECUTOR_STREAM_BASE + index as u64,
            self.preemption_rate_per_executor_min,
        )
    }

    /// The wall-clock time at which node `node` fails (from run start),
    /// drawn from the node's own seed stream. Infinite when node loss is
    /// disabled. All executors mapped onto the node share this draw.
    pub(crate) fn node_loss_time(&self, node: usize) -> f64 {
        exp_sample(
            self.seed,
            NODE_STREAM_BASE + node as u64,
            self.node_loss_rate_per_node_min,
        )
    }

    /// The RNG of the per-task straggler stream (`None` when stragglers
    /// are disabled). Draws are consumed in stage-major task order.
    pub(crate) fn straggler_rng(&self) -> Option<StdRng> {
        (self.straggler_prob > 0.0)
            .then(|| StdRng::seed_from_u64(derive_stream_seed(self.seed, STRAGGLER_STREAM)))
    }

    /// Applies one straggler draw: the multiplier for the next task.
    pub(crate) fn straggler_factor(&self, rng: &mut StdRng) -> f64 {
        let u: f64 = rng.gen();
        if u < self.straggler_prob {
            self.straggler_slowdown
        } else {
            1.0
        }
    }
}

/// One exponential sample at `rate` events/minute from the derived stream
/// `(seed, stream)`; infinite when the rate is zero.
fn exp_sample(seed: u64, stream: u64, rate_per_min: f64) -> f64 {
    if rate_per_min <= 0.0 {
        return f64::INFINITY;
    }
    let mut rng = StdRng::seed_from_u64(derive_stream_seed(seed, stream));
    let u: f64 = rng.gen();
    -(1.0 - u).ln() / (rate_per_min / 60.0)
}

/// Which fault revoked an executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A spot preemption of a single executor.
    Preemption,
    /// A node failure taking every executor on the node.
    NodeLoss,
}

/// Per-run fault accounting, reported on every
/// [`crate::QueryRunResult`]. All-zero when the plan injected nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Executors revoked by spot preemption.
    pub preempted_executors: u32,
    /// Executors revoked by node loss.
    pub node_loss_executors: u32,
    /// Task attempts lost to revocations (equals the retries scheduled).
    pub tasks_lost: u32,
    /// Replacement executors re-requested through the allocation lag.
    pub replacements_requested: u32,
    /// Tasks slowed down by the straggler injector.
    pub stragglers: u32,
    /// Task work discarded by losses, in core-seconds (elapsed work not
    /// preserved by checkpointing).
    pub work_lost_secs: f64,
    /// Total loss-to-retry-completion time across lost tasks, in seconds
    /// (how long recovery trailed each loss).
    pub recovery_secs: f64,
}

impl FaultSummary {
    /// Total executors revoked, regardless of cause.
    pub fn executors_revoked(&self) -> u32 {
        self.preempted_executors + self.node_loss_executors
    }

    /// True when no fault of any kind fired during the run.
    pub fn is_clean(&self) -> bool {
        self.executors_revoked() == 0 && self.tasks_lost == 0 && self.stragglers == 0
    }
}

/// Why a simulated query run failed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FailureReason {
    /// A task exceeded [`FaultPlan::max_task_retries`] losses.
    RetriesExhausted {
        /// Stage of the exhausted task.
        stage: usize,
        /// Task index within the stage.
        task: usize,
    },
    /// Every executor was revoked and replacement was disabled, leaving
    /// unfinished work with no capacity to run it.
    ResourcesExhausted,
}

impl std::fmt::Display for FailureReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureReason::RetriesExhausted { stage, task } => {
                write!(f, "task {task} of stage {stage} exhausted its retries")
            }
            FailureReason::ResourcesExhausted => {
                write!(f, "all executors revoked with re-acquisition disabled")
            }
        }
    }
}

/// Terminal status of a simulated query run. Fault-free runs always
/// complete; a faulty run fails only through retry exhaustion or total
/// capacity loss.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// All tasks finished (possibly after retries).
    Completed,
    /// The run was aborted; `elapsed_secs` reports the abort time.
    Failed(FailureReason),
}

impl RunOutcome {
    /// True for [`RunOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, RunOutcome::Completed)
    }
}

impl std::fmt::Display for RunOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunOutcome::Completed => write!(f, "completed"),
            RunOutcome::Failed(reason) => write!(f, "failed: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inactive_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.validate().is_ok());
        assert_eq!(plan, FaultPlan::default());
    }

    #[test]
    fn builders_activate_the_plan() {
        assert!(FaultPlan::preemptions(0.1, 2.0).is_active());
        assert!(FaultPlan::none().with_node_loss(0.01).is_active());
        assert!(FaultPlan::none().with_stragglers(0.05, 3.0).is_active());
    }

    #[test]
    fn validation_rejects_bad_ranges() {
        assert!(FaultPlan::preemptions(-1.0, 2.0).validate().is_err());
        assert!(FaultPlan::preemptions(f64::NAN, 2.0).validate().is_err());
        assert!(FaultPlan::none()
            .with_stragglers(1.5, 2.0)
            .validate()
            .is_err());
        assert!(FaultPlan::none()
            .with_stragglers(0.5, 0.5)
            .validate()
            .is_err());
        let mut plan = FaultPlan::none();
        plan.grace_period_secs = -1.0;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn lifetimes_are_deterministic_per_executor() {
        let plan = FaultPlan::preemptions(0.5, 2.0).with_seed(9);
        let a = plan.executor_lifetime(3);
        let b = plan.executor_lifetime(3);
        assert_eq!(a.to_bits(), b.to_bits());
        assert!(a.is_finite() && a > 0.0);
        // Distinct executors draw from distinct streams.
        assert_ne!(plan.executor_lifetime(3), plan.executor_lifetime(4));
        // Zero rate means immortal executors.
        assert_eq!(FaultPlan::none().executor_lifetime(3), f64::INFINITY);
    }

    #[test]
    fn node_loss_times_are_shared_per_node() {
        let plan = FaultPlan::none().with_node_loss(0.2).with_seed(4);
        assert_eq!(
            plan.node_loss_time(1).to_bits(),
            plan.node_loss_time(1).to_bits()
        );
        assert_ne!(plan.node_loss_time(0), plan.node_loss_time(1));
        assert_eq!(FaultPlan::none().node_loss_time(0), f64::INFINITY);
    }

    #[test]
    fn straggler_stream_respects_probability() {
        let plan = FaultPlan::none().with_stragglers(1.0, 2.5).with_seed(1);
        let mut rng = plan.straggler_rng().expect("active straggler stream");
        for _ in 0..16 {
            assert_eq!(plan.straggler_factor(&mut rng), 2.5);
        }
        assert!(FaultPlan::none().straggler_rng().is_none());
    }

    #[test]
    fn summary_accounting_helpers() {
        let mut summary = FaultSummary::default();
        assert!(summary.is_clean());
        summary.preempted_executors = 2;
        summary.node_loss_executors = 1;
        assert_eq!(summary.executors_revoked(), 3);
        assert!(!summary.is_clean());
    }

    #[test]
    fn outcome_display_and_predicates() {
        assert!(RunOutcome::Completed.is_completed());
        let failed = RunOutcome::Failed(FailureReason::RetriesExhausted { stage: 1, task: 7 });
        assert!(!failed.is_completed());
        assert!(failed.to_string().contains("task 7 of stage 1"));
        assert!(RunOutcome::Failed(FailureReason::ResourcesExhausted)
            .to_string()
            .contains("re-acquisition"));
    }
}
