//! Physical execution structure: stages, tasks, and task logs.
//!
//! A query's physical plan is a DAG of *stages* separated by shuffle
//! boundaries. Each stage is a set of independent *tasks*; a stage becomes
//! runnable once all of its parent stages have completed. This matches the
//! Spark execution model that both the run-time behaviour (Figure 1) and the
//! Sparklens analysis are built on.

use serde::{Deserialize, Serialize};

use crate::{EngineError, Result};

/// One task: an indivisible unit of work occupying one executor core-slot
/// for `work_secs` seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task duration in seconds on one core slot.
    pub work_secs: f64,
}

impl Task {
    /// Creates a task with the given duration.
    pub fn new(work_secs: f64) -> Self {
        Self { work_secs }
    }
}

/// One stage: a set of tasks plus the indices of parent stages that must
/// complete before this stage can start.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stage {
    /// Stage identifier (its index within the DAG).
    pub id: usize,
    /// Tasks of the stage.
    pub tasks: Vec<Task>,
    /// Indices of parent stages (shuffle dependencies).
    pub parents: Vec<usize>,
}

impl Stage {
    /// Total task work (sum of durations) in the stage, in core-seconds.
    pub fn total_work_secs(&self) -> f64 {
        self.tasks.iter().map(|t| t.work_secs).sum()
    }

    /// Duration of the longest task in the stage.
    pub fn max_task_secs(&self) -> f64 {
        self.tasks.iter().map(|t| t.work_secs).fold(0.0, f64::max)
    }
}

/// The stage DAG for one query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageDag {
    stages: Vec<Stage>,
}

impl StageDag {
    /// Builds a DAG from stages, validating structure:
    /// * at least one stage,
    /// * every parent index refers to an *earlier* stage (so the vector order
    ///   is already a topological order),
    /// * every stage has at least one task with positive duration.
    pub fn new(stages: Vec<Stage>) -> Result<Self> {
        if stages.is_empty() {
            return Err(EngineError::InvalidDag("DAG has no stages".into()));
        }
        for (idx, stage) in stages.iter().enumerate() {
            if stage.id != idx {
                return Err(EngineError::InvalidDag(format!(
                    "stage at position {idx} has id {}",
                    stage.id
                )));
            }
            if stage.tasks.is_empty() {
                return Err(EngineError::InvalidDag(format!("stage {idx} has no tasks")));
            }
            if stage
                .tasks
                .iter()
                .any(|t| !t.work_secs.is_finite() || t.work_secs <= 0.0)
            {
                return Err(EngineError::InvalidDag(format!(
                    "stage {idx} has a task with non-positive duration"
                )));
            }
            for &p in &stage.parents {
                if p >= idx {
                    return Err(EngineError::InvalidDag(format!(
                        "stage {idx} depends on stage {p} which is not earlier in the DAG"
                    )));
                }
            }
        }
        Ok(Self { stages })
    }

    /// The stages in topological order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of stages.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total number of tasks across all stages.
    pub fn num_tasks(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).sum()
    }

    /// Total task work over the whole query, in core-seconds.
    pub fn total_work_secs(&self) -> f64 {
        self.stages.iter().map(|s| s.total_work_secs()).sum()
    }

    /// Length of the critical path through the DAG assuming unbounded
    /// parallelism: for each stage, its completion time is the max over
    /// parents plus its longest task. This is the theoretical lower bound on
    /// elapsed time (ignoring scheduling and allocation overheads).
    pub fn critical_path_secs(&self) -> f64 {
        let mut completion = vec![0.0f64; self.stages.len()];
        for (idx, stage) in self.stages.iter().enumerate() {
            let ready_at = stage
                .parents
                .iter()
                .map(|&p| completion[p])
                .fold(0.0, f64::max);
            completion[idx] = ready_at + stage.max_task_secs();
        }
        completion.iter().copied().fold(0.0, f64::max)
    }

    /// Largest per-stage task count — the smallest number of core slots at
    /// which adding more slots can no longer shorten any single stage.
    pub fn max_stage_width(&self) -> usize {
        self.stages.iter().map(|s| s.tasks.len()).max().unwrap_or(0)
    }
}

/// Timing record of one executed task, captured by the simulator for
/// post-hoc analysis (the equivalent of Spark's event-log task entries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaskRecord {
    /// Stage the task belonged to.
    pub stage_id: usize,
    /// Simulation time at which the task started.
    pub start_secs: f64,
    /// Task duration.
    pub duration_secs: f64,
}

/// Per-stage slice of the task log.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageLog {
    /// Stage identifier.
    pub stage_id: usize,
    /// Parent stage ids (copied from the DAG so the log is self-contained).
    pub parents: Vec<usize>,
    /// Observed durations of the stage's tasks.
    pub task_durations_secs: Vec<f64>,
}

/// The complete task log of one query execution: everything a Sparklens-like
/// post-hoc analyzer needs, with no reference back to the live simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TaskLog {
    /// Query name.
    pub query_name: String,
    /// Executor count configured for the run (the paper uses n = 16 for
    /// collecting training logs).
    pub executors: usize,
    /// Cores per executor for the run.
    pub cores_per_executor: usize,
    /// Per-stage logs, in DAG order.
    pub stages: Vec<StageLog>,
    /// Flat per-task records with start times.
    pub records: Vec<TaskRecord>,
    /// Time not attributable to task execution (driver, startup, ramp-up).
    pub driver_overhead_secs: f64,
    /// Total elapsed time of the run.
    pub elapsed_secs: f64,
}

impl TaskLog {
    /// Total task work observed in the log, in core-seconds.
    pub fn total_task_secs(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.task_durations_secs.iter().sum::<f64>())
            .sum()
    }

    /// Critical-path estimate from the logged durations (unbounded
    /// parallelism, per-stage longest task, respecting dependencies).
    pub fn critical_path_secs(&self) -> f64 {
        let mut completion = vec![0.0f64; self.stages.len()];
        for (idx, stage) in self.stages.iter().enumerate() {
            let ready_at = stage
                .parents
                .iter()
                .map(|&p| completion[p])
                .fold(0.0, f64::max);
            let longest = stage
                .task_durations_secs
                .iter()
                .copied()
                .fold(0.0, f64::max);
            completion[idx] = ready_at + longest;
        }
        completion.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_dag() -> StageDag {
        // Stage 0: 4 tasks of 10s; stage 1 depends on 0: 2 tasks of 5s.
        StageDag::new(vec![
            Stage {
                id: 0,
                tasks: vec![Task::new(10.0); 4],
                parents: vec![],
            },
            Stage {
                id: 1,
                tasks: vec![Task::new(5.0); 2],
                parents: vec![0],
            },
        ])
        .unwrap()
    }

    #[test]
    fn dag_totals_and_width() {
        let dag = chain_dag();
        assert_eq!(dag.num_stages(), 2);
        assert_eq!(dag.num_tasks(), 6);
        assert!((dag.total_work_secs() - 50.0).abs() < 1e-12);
        assert_eq!(dag.max_stage_width(), 4);
    }

    #[test]
    fn critical_path_respects_dependencies() {
        let dag = chain_dag();
        // 10 (longest task of stage 0) + 5 (stage 1) = 15.
        assert!((dag.critical_path_secs() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn parallel_stages_do_not_add_to_critical_path() {
        let dag = StageDag::new(vec![
            Stage {
                id: 0,
                tasks: vec![Task::new(8.0)],
                parents: vec![],
            },
            Stage {
                id: 1,
                tasks: vec![Task::new(6.0)],
                parents: vec![],
            },
            Stage {
                id: 2,
                tasks: vec![Task::new(4.0)],
                parents: vec![0, 1],
            },
        ])
        .unwrap();
        assert!((dag.critical_path_secs() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_dag_is_rejected() {
        assert!(StageDag::new(vec![]).is_err());
    }

    #[test]
    fn forward_dependency_is_rejected() {
        let result = StageDag::new(vec![
            Stage {
                id: 0,
                tasks: vec![Task::new(1.0)],
                parents: vec![1],
            },
            Stage {
                id: 1,
                tasks: vec![Task::new(1.0)],
                parents: vec![],
            },
        ]);
        assert!(result.is_err());
    }

    #[test]
    fn wrong_stage_id_is_rejected() {
        let result = StageDag::new(vec![Stage {
            id: 3,
            tasks: vec![Task::new(1.0)],
            parents: vec![],
        }]);
        assert!(result.is_err());
    }

    #[test]
    fn nonpositive_task_duration_is_rejected() {
        let result = StageDag::new(vec![Stage {
            id: 0,
            tasks: vec![Task::new(0.0)],
            parents: vec![],
        }]);
        assert!(result.is_err());
    }

    #[test]
    fn task_log_total_and_critical_path() {
        let log = TaskLog {
            query_name: "q".into(),
            executors: 16,
            cores_per_executor: 4,
            stages: vec![
                StageLog {
                    stage_id: 0,
                    parents: vec![],
                    task_durations_secs: vec![3.0, 4.0],
                },
                StageLog {
                    stage_id: 1,
                    parents: vec![0],
                    task_durations_secs: vec![2.0],
                },
            ],
            records: vec![],
            driver_overhead_secs: 1.0,
            elapsed_secs: 10.0,
        };
        assert!((log.total_task_secs() - 9.0).abs() < 1e-12);
        assert!((log.critical_path_secs() - 6.0).abs() < 1e-12);
    }
}
