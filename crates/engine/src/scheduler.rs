//! Discrete-event simulation of query execution on a pool of executors.
//!
//! The simulator plays the role of the Azure Synapse Spark runtime in the
//! paper: given a stage DAG, a cluster configuration, and an allocation
//! policy, it schedules tasks onto executor core-slots over simulated time
//! and reports the elapsed time, the executor-allocation skyline, and the
//! area under that skyline (executor occupancy, `AUC`).
//!
//! Timing behaviour deliberately reproduces the mechanics the paper's
//! figures depend on:
//!
//! * run time saturates once the slot count exceeds the widest stage,
//! * executor requests are satisfied gradually (allocation lag, §5.4),
//! * dynamic allocation ramps up exponentially on backlog and releases idle
//!   executors after a timeout,
//! * run-to-run noise of a few percent (§5.1) is applied per task from a
//!   seeded generator.
//!
//! ## Hot-loop design
//!
//! This is the innermost loop of every offline phase (ground-truth
//! collection runs the simulator hundreds of thousands of times), so the
//! implementation is event-driven rather than scan-based:
//!
//! * task completions live in a min-heap keyed by `(end_time, seq)`; the
//!   sequence number reproduces FIFO order for simultaneous completions,
//! * executor grants live in a min-heap keyed by `(allocated_at, seq)`,
//! * free core-slots are found through a lazy max-heap over
//!   `(free_slots, executor)` — the same "most free slots, highest index on
//!   ties" rule as a linear scan, without rescanning the pool per task,
//! * stages enter a sorted ready-queue when their last parent finishes, so
//!   scheduling never rescans finished stages.
//!
//! All per-run buffers (noisy durations, per-stage progress, the four
//! heaps) live in a [`SimScratch`] that callers can reuse across runs via
//! [`Simulator::run_with_scratch`], eliminating per-run allocation churn in
//! collection loops. `Simulator::run` allocates a fresh scratch and is
//! bit-identical to the scratch-reusing path.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use ae_obs::{EventKind, FaultClass};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationPolicy;
use crate::cluster::ClusterConfig;
use crate::faults::{FailureReason, FaultKind, FaultPlan, FaultSummary, RunOutcome};
use crate::obs::EngineObs;
use crate::skyline::Skyline;
use crate::stage::{StageDag, StageLog, TaskLog, TaskRecord};
use crate::Result;

/// Per-run configuration: noise, driver overhead, fault plan, and log
/// capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Seed for the run-to-run noise generator.
    pub seed: u64,
    /// Coefficient of variation of per-task noise (0 disables noise). The
    /// paper observes 4–7% run-to-run variation; the default is 0.05.
    pub noise_cv: f64,
    /// Fixed driver/compilation overhead before the first task can run.
    pub driver_overhead_secs: f64,
    /// Whether to capture a full task log for post-hoc (Sparklens) analysis.
    pub capture_task_log: bool,
    /// Deterministic fault injection (preemptions, node loss, stragglers).
    /// The default, [`FaultPlan::none`], injects nothing and leaves
    /// scheduler output bit-identical to a fault-unaware run.
    pub faults: FaultPlan,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            noise_cv: 0.05,
            driver_overhead_secs: 8.0,
            capture_task_log: false,
            faults: FaultPlan::none(),
        }
    }
}

impl RunConfig {
    /// A deterministic configuration (no noise), useful for tests and for
    /// generating reference curves.
    pub fn deterministic() -> Self {
        Self {
            noise_cv: 0.0,
            ..Self::default()
        }
    }

    /// Enables task-log capture.
    pub fn with_task_log(mut self) -> Self {
        self.capture_task_log = true;
        self
    }

    /// Sets the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the fault-injection plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }
}

/// Result of simulating one query execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRunResult {
    /// Query name.
    pub query_name: String,
    /// Elapsed (wall-clock) time of the query in seconds — `t(n)`.
    pub elapsed_secs: f64,
    /// Executor-allocation skyline over the run.
    pub skyline: Skyline,
    /// Maximum executors allocated at any instant.
    pub max_executors: usize,
    /// Area under the skyline in executor-seconds — `AUC`.
    pub auc_executor_secs: f64,
    /// Total task work executed, in core-seconds.
    pub total_task_secs: f64,
    /// Full task log, present when requested in [`RunConfig`].
    pub task_log: Option<TaskLog>,
    /// Terminal status: [`RunOutcome::Completed`] unless fault injection
    /// exhausted a task's retries or revoked all capacity.
    pub outcome: RunOutcome,
    /// Fault accounting for the run (all-zero without injected faults).
    pub faults: FaultSummary,
}

impl QueryRunResult {
    /// True when every task of the run finished.
    pub fn is_completed(&self) -> bool {
        self.outcome.is_completed()
    }
}

/// The simulator: a cluster configuration plus an allocation policy.
#[derive(Debug, Clone)]
pub struct Simulator {
    cluster: ClusterConfig,
    policy: AllocationPolicy,
}

/// Internal per-executor state.
#[derive(Debug, Clone, Copy)]
struct ExecutorState {
    /// Time from which the executor can run tasks.
    usable_at: f64,
    /// Busy core-slots.
    busy_slots: usize,
    /// Time at which it last became fully idle.
    idle_since: f64,
    /// Whether the executor has been released.
    removed: bool,
}

/// A task-completion event in the event queue.
#[derive(Debug, Clone, Copy)]
struct CompletionEvent {
    end_time: f64,
    /// Monotone sequence number: simultaneous completions pop in the order
    /// the tasks were scheduled, matching a FIFO scan.
    seq: u64,
    executor: usize,
    stage: usize,
    /// Task index within the stage (identifies the task on loss/retry).
    task: usize,
    start_time: f64,
    duration: f64,
    /// Time of the (earliest) revocation that lost this task, or
    /// `NEG_INFINITY` for a first attempt. Finite values mark retries and
    /// feed the recovery-time accounting on completion.
    lost_at: f64,
}

impl PartialEq for CompletionEvent {
    fn eq(&self, other: &Self) -> bool {
        self.end_time == other.end_time && self.seq == other.seq
    }
}

impl Eq for CompletionEvent {}

impl PartialOrd for CompletionEvent {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for CompletionEvent {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .end_time
            .total_cmp(&self.end_time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A pending executor grant (min-heap on `(allocated_at, seq)`).
#[derive(Debug, Clone, Copy)]
struct GrantEvent {
    allocated_at: f64,
    seq: u64,
    usable_at: f64,
}

impl PartialEq for GrantEvent {
    fn eq(&self, other: &Self) -> bool {
        self.allocated_at == other.allocated_at && self.seq == other.seq
    }
}

impl Eq for GrantEvent {}

impl PartialOrd for GrantEvent {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for GrantEvent {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .allocated_at
            .total_cmp(&self.allocated_at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// An executor becoming usable (min-heap on `(usable_at, executor)`).
#[derive(Debug, Clone, Copy)]
struct UsableEvent {
    usable_at: f64,
    executor: usize,
}

impl PartialEq for UsableEvent {
    fn eq(&self, other: &Self) -> bool {
        self.usable_at == other.usable_at && self.executor == other.executor
    }
}

impl Eq for UsableEvent {}

impl PartialOrd for UsableEvent {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for UsableEvent {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .usable_at
            .total_cmp(&self.usable_at)
            .then_with(|| other.executor.cmp(&self.executor))
    }
}

/// Phase of an executor revocation: the announcement marks the executor
/// revoked (no new tasks; a replacement may be requested), the reap at the
/// end of the grace window loses whatever is still running on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum RevokePhase {
    Announce,
    Reap,
}

/// An executor-revocation event (min-heap on `(time, phase, executor)`).
#[derive(Debug, Clone, Copy)]
struct RevokeEvent {
    time: f64,
    executor: usize,
    phase: RevokePhase,
    kind: FaultKind,
}

impl PartialEq for RevokeEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.executor == other.executor && self.phase == other.phase
    }
}

impl Eq for RevokeEvent {}

impl PartialOrd for RevokeEvent {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}

impl Ord for RevokeEvent {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.phase.cmp(&self.phase))
            .then_with(|| other.executor.cmp(&self.executor))
    }
}

/// A task lost to a revocation, waiting to be re-scheduled.
#[derive(Debug, Clone, Copy)]
struct RetryTask {
    stage: usize,
    task: usize,
    /// Remaining duration of the retry attempt (original duration minus any
    /// checkpointed progress, plus the restart overhead).
    remaining: f64,
    /// Time of the earliest loss of this task (for recovery accounting).
    lost_at: f64,
}

/// Reusable per-run simulation state. Collection loops that simulate many
/// runs should allocate one scratch (per worker thread) and pass it to
/// [`Simulator::run_with_scratch`]; all buffers are cleared, not freed,
/// between runs.
#[derive(Debug, Default)]
pub struct SimScratch {
    /// Flattened noisy task durations, stage-major.
    noisy: Vec<f64>,
    /// Start offset of each stage within `noisy` (plus a final sentinel).
    stage_offsets: Vec<usize>,
    /// Next unscheduled task index per stage.
    next_task: Vec<usize>,
    /// Completed task count per stage.
    completed_tasks: Vec<usize>,
    /// Whether each stage has fully completed.
    stage_done: Vec<bool>,
    /// Number of unfinished parent stages per stage.
    unfinished_parents: Vec<usize>,
    /// Child adjacency, flattened (`children_offsets` indexes into it).
    children: Vec<usize>,
    /// Start offset of each stage's children (plus a final sentinel).
    children_offsets: Vec<usize>,
    /// Ready stages with unscheduled tasks, kept sorted ascending.
    ready: Vec<usize>,
    /// Executor pool (grows only; `removed` marks released executors).
    executors: Vec<ExecutorState>,
    /// Pending grants.
    pending: BinaryHeap<GrantEvent>,
    /// Executors that become usable in the future.
    usable_queue: BinaryHeap<UsableEvent>,
    /// Lazy max-heap of `(free_slots, executor)` candidates.
    slot_heap: BinaryHeap<(usize, usize)>,
    /// In-flight task completions.
    completions: BinaryHeap<CompletionEvent>,
    /// Captured task records (only filled when the log is requested).
    records: Vec<TaskRecord>,
    /// Pending executor revocations (empty without fault injection).
    revocations: BinaryHeap<RevokeEvent>,
    /// Lost tasks awaiting re-scheduling, FIFO by loss order.
    retry: Vec<RetryTask>,
    /// Loss count per task, flattened stage-major (sized only when the
    /// fault plan is active).
    task_retries: Vec<u32>,
}

impl SimScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    fn reset(&mut self, dag: &StageDag) {
        let num_stages = dag.num_stages();
        self.noisy.clear();
        self.stage_offsets.clear();
        self.stage_offsets.reserve(num_stages + 1);
        self.next_task.clear();
        self.next_task.resize(num_stages, 0);
        self.completed_tasks.clear();
        self.completed_tasks.resize(num_stages, 0);
        self.stage_done.clear();
        self.stage_done.resize(num_stages, false);
        self.unfinished_parents.clear();
        self.unfinished_parents.resize(num_stages, 0);
        self.children.clear();
        self.children_offsets.clear();
        self.ready.clear();
        self.executors.clear();
        self.pending.clear();
        self.usable_queue.clear();
        self.slot_heap.clear();
        self.completions.clear();
        self.records.clear();
        self.revocations.clear();
        self.retry.clear();
        self.task_retries.clear();

        // Dependency bookkeeping: parent counts and child adjacency.
        for stage in dag.stages() {
            self.unfinished_parents[stage.id] = stage.parents.len();
        }
        // Children, grouped by parent in one flat vector. Stage ids are
        // 0..n in topological order, so a counting pass suffices.
        let mut counts = vec![0usize; num_stages];
        for stage in dag.stages() {
            for &p in &stage.parents {
                counts[p] += 1;
            }
        }
        self.children_offsets.reserve(num_stages + 1);
        let mut offset = 0usize;
        for &c in &counts {
            self.children_offsets.push(offset);
            offset += c;
        }
        self.children_offsets.push(offset);
        self.children.resize(offset, 0);
        let mut cursor: Vec<usize> = self.children_offsets[..num_stages].to_vec();
        for stage in dag.stages() {
            for &p in &stage.parents {
                self.children[cursor[p]] = stage.id;
                cursor[p] += 1;
            }
        }
    }

    /// Task count of stage `s`.
    fn stage_size(&self, s: usize) -> usize {
        self.stage_offsets[s + 1] - self.stage_offsets[s]
    }

    /// Noisy duration of task `t` of stage `s`.
    fn duration(&self, s: usize, t: usize) -> f64 {
        self.noisy[self.stage_offsets[s] + t]
    }

    /// Inserts `stage` into the sorted ready queue.
    fn push_ready(&mut self, stage: usize) {
        match self.ready.binary_search(&stage) {
            Ok(_) => {}
            Err(pos) => self.ready.insert(pos, stage),
        }
    }
}

impl Simulator {
    /// Creates a simulator after validating the cluster configuration.
    pub fn new(cluster: ClusterConfig, policy: AllocationPolicy) -> Result<Self> {
        cluster.validate()?;
        Ok(Self { cluster, policy })
    }

    /// The cluster configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The allocation policy.
    pub fn policy(&self) -> &AllocationPolicy {
        &self.policy
    }

    /// Simulates the execution of `dag` and returns timing and occupancy.
    pub fn run(&self, query_name: &str, dag: &StageDag, cfg: &RunConfig) -> QueryRunResult {
        self.run_with_scratch(query_name, dag, cfg, &mut SimScratch::new())
    }

    /// Like [`Simulator::run`], but reuses the caller's scratch buffers.
    ///
    /// Results are bit-identical to `run`; collection loops that simulate
    /// thousands of runs avoid re-allocating the event queues and duration
    /// matrix on every run.
    pub fn run_with_scratch(
        &self,
        query_name: &str,
        dag: &StageDag,
        cfg: &RunConfig,
        scratch: &mut SimScratch,
    ) -> QueryRunResult {
        self.run_internal(query_name, dag, cfg, scratch, None)
    }

    /// Like [`Simulator::run`], but records fault events (stamped with
    /// simulated time) and cross-run counters into `obs`.
    ///
    /// The run result is bit-identical to `run` with the same inputs —
    /// observation never perturbs the event sequence. See [`crate::obs`].
    pub fn run_observed(
        &self,
        query_name: &str,
        dag: &StageDag,
        cfg: &RunConfig,
        obs: &EngineObs,
    ) -> QueryRunResult {
        self.run_internal(query_name, dag, cfg, &mut SimScratch::new(), Some(obs))
    }

    fn run_internal(
        &self,
        query_name: &str,
        dag: &StageDag,
        cfg: &RunConfig,
        scratch: &mut SimScratch,
        obs: Option<&EngineObs>,
    ) -> QueryRunResult {
        let ec = self.cluster.executor.cores.max(1);
        let pool_cap = self.cluster.max_executors().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        scratch.reset(dag);

        // Fault-plan state. Every fault branch below is gated on
        // `fault_active`, so an inactive plan leaves the event sequence —
        // and therefore the output — bit-identical to a fault-unaware run.
        let faults = cfg.faults;
        let fault_active = faults.is_active();
        let executors_per_node = self
            .cluster
            .node
            .executors_per_node(&self.cluster.executor)
            .max(1);
        let mut fault_summary = FaultSummary::default();
        let mut failure: Option<FailureReason> = None;

        // Materialise noisy task durations (stage-major, same generation
        // order as the original per-stage matrix). The cores-per-executor
        // penalty keeps ec≠4 configurations slightly off the ec=4 trend
        // (Figure 5). Straggler multipliers come from their own seed stream,
        // consumed in the same stage-major order, so enabling them does not
        // perturb the base noise draws.
        let ec_penalty = 1.0 + 0.02 * (ec as f64 - 4.0).abs();
        let mut straggler_rng = if fault_active {
            faults.straggler_rng()
        } else {
            None
        };
        for stage in dag.stages() {
            scratch.stage_offsets.push(scratch.noisy.len());
            for (task_idx, task) in stage.tasks.iter().enumerate() {
                let mut duration =
                    task.work_secs * ec_penalty * noise_factor(&mut rng, cfg.noise_cv);
                if let Some(srng) = straggler_rng.as_mut() {
                    let factor = faults.straggler_factor(srng);
                    if factor > 1.0 {
                        fault_summary.stragglers += 1;
                        // Straggler draws happen before the clock starts.
                        obs_at(
                            obs,
                            0.0,
                            EventKind::Straggler {
                                stage: stage.id as u32,
                                task: task_idx as u32,
                            },
                        );
                    }
                    duration *= factor;
                }
                scratch.noisy.push(duration);
            }
        }
        scratch.stage_offsets.push(scratch.noisy.len());

        let num_stages = dag.num_stages();
        let total_tasks: usize = scratch.noisy.len();
        if fault_active {
            scratch.task_retries.resize(total_tasks, 0);
        }
        // Root stages are ready immediately.
        for stage in 0..num_stages {
            if scratch.unfinished_parents[stage] == 0 {
                scratch.ready.push(stage);
            }
        }

        let mut skyline = Skyline::new();
        let mut requested_target: usize = 0;
        let mut grant_seq: u64 = 0;

        // Issue the initial allocation request at time 0.
        let mut time = 0.0f64;
        let initial = self.policy.initial_executors().min(pool_cap);
        grant(
            &mut scratch.pending,
            &mut grant_seq,
            &self.cluster,
            time,
            initial,
            &mut requested_target,
            pool_cap,
        );

        // Dynamic-allocation ramp state.
        let mut da_next_add: usize = 1;
        let mut da_last_request = f64::NEG_INFINITY;
        let mut predictive_requested = false;
        let tick_interval = match self.policy {
            AllocationPolicy::Dynamic(cfg) => cfg.schedule_interval_secs.max(0.25),
            _ => 1.0,
        };
        let mut next_tick = 0.0f64;

        let mut completion_seq: u64 = 0;
        let mut finished_tasks = 0usize;

        // Bound the simulation to avoid infinite loops on malformed input.
        let max_sim_time = 1e7;

        while finished_tasks < total_tasks && time < max_sim_time {
            // 1. Bring granted executors online.
            while scratch
                .pending
                .peek()
                .is_some_and(|g| g.allocated_at <= time + 1e-9)
            {
                let grant_event = scratch.pending.pop().expect("peeked grant");
                let idx = scratch.executors.len();
                scratch.executors.push(ExecutorState {
                    usable_at: grant_event.usable_at,
                    busy_slots: 0,
                    idle_since: grant_event.usable_at,
                    removed: false,
                });
                scratch.usable_queue.push(UsableEvent {
                    usable_at: grant_event.usable_at,
                    executor: idx,
                });
                if fault_active {
                    // Draw this executor's fate from its own seed streams:
                    // a spot lifetime, and its node's failure time (shared
                    // with every other executor on the node).
                    schedule_revocation(
                        &faults,
                        &mut scratch.revocations,
                        idx,
                        grant_event.allocated_at,
                        executors_per_node,
                    );
                }
            }

            // 1b. Process due revocations: announcements revoke the
            // executor (and request a replacement), reaps at the end of the
            // grace window lose whatever is still running on it.
            if fault_active {
                while scratch
                    .revocations
                    .peek()
                    .is_some_and(|r| r.time <= time + 1e-9)
                {
                    let revoke = scratch.revocations.pop().expect("peeked revocation");
                    match revoke.phase {
                        RevokePhase::Announce => {
                            let exec = &mut scratch.executors[revoke.executor];
                            if exec.removed {
                                continue; // already released by idle timeout
                            }
                            exec.removed = true;
                            match revoke.kind {
                                FaultKind::Preemption => fault_summary.preempted_executors += 1,
                                FaultKind::NodeLoss => fault_summary.node_loss_executors += 1,
                            }
                            obs_at(
                                obs,
                                time,
                                EventKind::FaultRevocation {
                                    kind: match revoke.kind {
                                        FaultKind::Preemption => FaultClass::Preemption,
                                        FaultKind::NodeLoss => FaultClass::NodeLoss,
                                    },
                                    executor: revoke.executor as u32,
                                },
                            );
                            requested_target = requested_target.saturating_sub(1);
                            if faults.reacquire {
                                grant(
                                    &mut scratch.pending,
                                    &mut grant_seq,
                                    &self.cluster,
                                    time,
                                    1,
                                    &mut requested_target,
                                    pool_cap,
                                );
                                fault_summary.replacements_requested += 1;
                                obs_at(
                                    obs,
                                    time,
                                    EventKind::FaultReplacement {
                                        executor: revoke.executor as u32,
                                    },
                                );
                            }
                            scratch.revocations.push(RevokeEvent {
                                time: revoke.time + faults.grace_period_secs,
                                executor: revoke.executor,
                                phase: RevokePhase::Reap,
                                kind: revoke.kind,
                            });
                        }
                        RevokePhase::Reap => {
                            let lost_before = fault_summary.tasks_lost;
                            failure = reap_executor(
                                scratch,
                                &faults,
                                &mut fault_summary,
                                revoke.executor,
                                time,
                            );
                            obs_at(
                                obs,
                                time,
                                EventKind::FaultReap {
                                    executor: revoke.executor as u32,
                                    tasks_lost: fault_summary.tasks_lost - lost_before,
                                },
                            );
                            if failure.is_some() {
                                break;
                            }
                        }
                    }
                }
                if failure.is_some() {
                    break;
                }
                // With re-acquisition disabled, total capacity loss leaves
                // unfinished work that can never run: fail fast instead of
                // ticking to the simulation bound.
                if scratch.completions.is_empty()
                    && scratch.pending.is_empty()
                    && !scratch.executors.is_empty()
                    && scratch.executors.iter().all(|e| e.removed)
                {
                    failure = Some(FailureReason::ResourcesExhausted);
                    break;
                }
            }
            record_skyline(&mut skyline, time, &scratch.executors);

            // 2. Policy decisions at tick boundaries.
            if time + 1e-9 >= next_tick {
                self.policy_tick(
                    time,
                    scratch,
                    &mut grant_seq,
                    &mut requested_target,
                    &mut da_next_add,
                    &mut da_last_request,
                    &mut predictive_requested,
                    pool_cap,
                );
                record_skyline(&mut skyline, time, &scratch.executors);
                next_tick = time + tick_interval;
            }

            // 3. Schedule pending tasks of ready stages onto free slots.
            if time + 1e-9 >= cfg.driver_overhead_secs {
                // Executors that became usable by now join the slot heap.
                while scratch
                    .usable_queue
                    .peek()
                    .is_some_and(|u| u.usable_at <= time + 1e-9)
                {
                    let usable = scratch.usable_queue.pop().expect("peeked usable");
                    let exec = &scratch.executors[usable.executor];
                    if !exec.removed && exec.busy_slots < ec {
                        scratch
                            .slot_heap
                            .push((ec - exec.busy_slots, usable.executor));
                    }
                }

                // Lost tasks are re-scheduled first (FIFO by loss order):
                // they sit on the critical path of recovery.
                if fault_active {
                    while !scratch.retry.is_empty() {
                        let Some(exec_idx) = pop_free_slot(scratch, ec, time) else {
                            break;
                        };
                        let retry = scratch.retry.remove(0);
                        obs_at(
                            obs,
                            time,
                            EventKind::FaultRetry {
                                stage: retry.stage as u32,
                                task: retry.task as u32,
                            },
                        );
                        let exec = &mut scratch.executors[exec_idx];
                        exec.busy_slots += 1;
                        if exec.busy_slots < ec {
                            scratch.slot_heap.push((ec - exec.busy_slots, exec_idx));
                        }
                        scratch.completions.push(CompletionEvent {
                            end_time: time + retry.remaining,
                            seq: completion_seq,
                            executor: exec_idx,
                            stage: retry.stage,
                            task: retry.task,
                            start_time: time,
                            duration: retry.remaining,
                            lost_at: retry.lost_at,
                        });
                        completion_seq += 1;
                    }
                }

                let mut ready_pos = 0;
                while ready_pos < scratch.ready.len() {
                    let stage_idx = scratch.ready[ready_pos];
                    let stage_size = scratch.stage_size(stage_idx);
                    let mut exhausted = false;
                    while scratch.next_task[stage_idx] < stage_size {
                        let Some(exec_idx) = pop_free_slot(scratch, ec, time) else {
                            break;
                        };
                        let task_idx = scratch.next_task[stage_idx];
                        let duration = scratch.duration(stage_idx, task_idx);
                        scratch.next_task[stage_idx] += 1;
                        let exec = &mut scratch.executors[exec_idx];
                        exec.busy_slots += 1;
                        if exec.busy_slots < ec {
                            scratch.slot_heap.push((ec - exec.busy_slots, exec_idx));
                        }
                        scratch.completions.push(CompletionEvent {
                            end_time: time + duration,
                            seq: completion_seq,
                            executor: exec_idx,
                            stage: stage_idx,
                            task: task_idx,
                            start_time: time,
                            duration,
                            lost_at: f64::NEG_INFINITY,
                        });
                        completion_seq += 1;
                        if scratch.next_task[stage_idx] == stage_size {
                            exhausted = true;
                        }
                    }
                    if exhausted {
                        scratch.ready.remove(ready_pos);
                    } else {
                        ready_pos += 1;
                    }
                }
            }

            // 4. Advance time to the next event.
            let next_completion = scratch
                .completions
                .peek()
                .map_or(f64::INFINITY, |c| c.end_time);
            let next_online = scratch
                .pending
                .peek()
                .map_or(f64::INFINITY, |g| g.allocated_at);
            let next_revocation = scratch.revocations.peek().map_or(f64::INFINITY, |r| r.time);
            let next_event = next_completion
                .min(next_online)
                .min(next_revocation)
                .min(next_tick)
                .min(if time < cfg.driver_overhead_secs {
                    cfg.driver_overhead_secs
                } else {
                    f64::INFINITY
                });
            if !next_event.is_finite() {
                // No runnable work and nothing scheduled to change: bail out
                // (defensive; cannot happen with ≥1 executor kept alive).
                break;
            }
            time = next_event.max(time);

            // 5. Complete tasks that finished by `time`.
            while scratch
                .completions
                .peek()
                .is_some_and(|c| c.end_time <= time + 1e-9)
            {
                let task = scratch.completions.pop().expect("peeked completion");
                finished_tasks += 1;
                if task.lost_at.is_finite() {
                    // A retry finishing: recovery trailed the loss by this.
                    fault_summary.recovery_secs += task.end_time - task.lost_at;
                }
                scratch.completed_tasks[task.stage] += 1;
                if scratch.completed_tasks[task.stage] == scratch.stage_size(task.stage) {
                    scratch.stage_done[task.stage] = true;
                    let (start, end) = (
                        scratch.children_offsets[task.stage],
                        scratch.children_offsets[task.stage + 1],
                    );
                    for child_pos in start..end {
                        let child = scratch.children[child_pos];
                        scratch.unfinished_parents[child] -= 1;
                        if scratch.unfinished_parents[child] == 0
                            && scratch.next_task[child] < scratch.stage_size(child)
                        {
                            scratch.push_ready(child);
                        }
                    }
                }
                let exec = &mut scratch.executors[task.executor];
                exec.busy_slots = exec.busy_slots.saturating_sub(1);
                if exec.busy_slots == 0 {
                    exec.idle_since = task.end_time;
                }
                if !exec.removed && exec.usable_at <= time + 1e-9 {
                    scratch
                        .slot_heap
                        .push((ec - exec.busy_slots, task.executor));
                }
                if cfg.capture_task_log {
                    scratch.records.push(TaskRecord {
                        stage_id: task.stage,
                        start_secs: task.start_time,
                        duration_secs: task.duration,
                    });
                }
            }
        }

        let elapsed = time.max(cfg.driver_overhead_secs);
        skyline.finish(elapsed);
        let auc = skyline.auc_executor_secs();
        let max_exec = skyline.max_executors();
        let total_task_secs: f64 = scratch.noisy.iter().sum();

        let task_log = cfg.capture_task_log.then(|| {
            let stages = dag
                .stages()
                .iter()
                .enumerate()
                .map(|(idx, s)| StageLog {
                    stage_id: idx,
                    parents: s.parents.clone(),
                    task_durations_secs: scratch.noisy
                        [scratch.stage_offsets[idx]..scratch.stage_offsets[idx + 1]]
                        .to_vec(),
                })
                .collect();
            TaskLog {
                query_name: query_name.to_string(),
                executors: max_exec,
                cores_per_executor: ec,
                stages,
                records: scratch.records.clone(),
                driver_overhead_secs: cfg.driver_overhead_secs,
                elapsed_secs: elapsed,
            }
        });

        let outcome = match failure {
            Some(reason) => RunOutcome::Failed(reason),
            // Hitting the simulation bound with unfinished work means the
            // run deadlocked (possible only under pathological fault plans).
            None if finished_tasks < total_tasks => {
                RunOutcome::Failed(FailureReason::ResourcesExhausted)
            }
            None => RunOutcome::Completed,
        };
        if let Some(obs) = obs {
            obs.record_at_secs(
                elapsed,
                EventKind::RunOutcome {
                    completed: outcome.is_completed(),
                },
            );
            obs.record_run(&fault_summary, &outcome);
        }

        QueryRunResult {
            query_name: query_name.to_string(),
            elapsed_secs: elapsed,
            skyline,
            max_executors: max_exec,
            auc_executor_secs: auc,
            total_task_secs,
            task_log,
            outcome,
            faults: fault_summary,
        }
    }

    /// Applies the allocation policy at a tick: reactive scale-up, the
    /// predictive rule request, and idle-timeout removals.
    #[allow(clippy::too_many_arguments)]
    fn policy_tick(
        &self,
        time: f64,
        scratch: &mut SimScratch,
        grant_seq: &mut u64,
        requested_target: &mut usize,
        da_next_add: &mut usize,
        da_last_request: &mut f64,
        predictive_requested: &mut bool,
        pool_cap: usize,
    ) {
        // Pending tasks of ready (or running) stages, plus any lost tasks
        // waiting to be re-scheduled (always empty without fault injection).
        let backlog: usize = scratch
            .ready
            .iter()
            .map(|&idx| scratch.stage_size(idx) - scratch.next_task[idx])
            .sum::<usize>()
            + scratch.retry.len();

        match self.policy {
            AllocationPolicy::Static { .. } => {}
            AllocationPolicy::Dynamic(cfg) => {
                if backlog > 0 {
                    // Each exponentially-larger request only fires after the
                    // backlog has been sustained since the previous request.
                    let backlog_sustained =
                        time - *da_last_request >= cfg.sustained_backlog_secs - 1e-9;
                    let desired = (*requested_target + *da_next_add)
                        .min(cfg.max_executors)
                        .min(pool_cap);
                    if backlog_sustained && desired > *requested_target {
                        grant(
                            &mut scratch.pending,
                            grant_seq,
                            &self.cluster,
                            time,
                            desired - *requested_target,
                            requested_target,
                            pool_cap,
                        );
                        *da_next_add = (*da_next_add * 2).max(1);
                        *da_last_request = time;
                    }
                } else {
                    *da_next_add = 1;
                }
                remove_idle(
                    &mut scratch.executors,
                    time,
                    cfg.idle_timeout_secs,
                    cfg.min_executors.max(1),
                );
            }
            AllocationPolicy::Predictive {
                predicted,
                rule_delay_secs,
                idle_timeout_secs,
                ..
            } => {
                if !*predictive_requested && time + 1e-9 >= rule_delay_secs {
                    *predictive_requested = true;
                    let target = predicted.min(pool_cap);
                    if target > *requested_target {
                        grant(
                            &mut scratch.pending,
                            grant_seq,
                            &self.cluster,
                            time,
                            target - *requested_target,
                            requested_target,
                            pool_cap,
                        );
                    }
                }
                remove_idle(&mut scratch.executors, time, idle_timeout_secs, 1);
            }
        }
    }
}

/// Pops the best free slot at `time`: the usable executor with the most
/// free core-slots, highest index on ties (the historical linear-scan
/// tie-break). Stale heap entries are discarded or corrected lazily.
fn pop_free_slot(scratch: &mut SimScratch, ec: usize, time: f64) -> Option<usize> {
    while let Some((free, exec_idx)) = scratch.slot_heap.pop() {
        let exec = &scratch.executors[exec_idx];
        if exec.removed || exec.usable_at > time + 1e-9 || exec.busy_slots >= ec {
            continue;
        }
        let actual_free = ec - exec.busy_slots;
        if actual_free == free {
            return Some(exec_idx);
        }
        // Stale count: reinsert with the corrected key and keep popping.
        scratch.slot_heap.push((actual_free, exec_idx));
    }
    None
}

/// Records `kind` at simulated time `t_secs` when observability is on;
/// a single untaken branch otherwise.
#[inline]
fn obs_at(obs: Option<&EngineObs>, t_secs: f64, kind: EventKind) {
    if let Some(obs) = obs {
        obs.record_at_secs(t_secs, kind);
    }
}

/// Lognormal-ish multiplicative noise with coefficient of variation `cv`,
/// generated without external distribution crates (Irwin–Hall approximation
/// of a standard normal).
fn noise_factor(rng: &mut StdRng, cv: f64) -> f64 {
    if cv <= 0.0 {
        return 1.0;
    }
    let normal: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    (1.0 + normal * cv).max(0.2)
}

/// Schedules grants for `count` additional executors under the cluster's
/// allocation-lag model and bumps the requested target.
fn grant(
    pending: &mut BinaryHeap<GrantEvent>,
    grant_seq: &mut u64,
    cluster: &ClusterConfig,
    now: f64,
    count: usize,
    requested_target: &mut usize,
    pool_cap: usize,
) {
    let count = count.min(pool_cap.saturating_sub(*requested_target));
    if count == 0 {
        return;
    }
    let lag = cluster.lag;
    let per_wave = if lag.executors_per_wave == 0 {
        usize::MAX
    } else {
        lag.executors_per_wave
    };
    let mut granted = 0usize;
    let mut wave = 0usize;
    while granted < count {
        let in_this_wave = per_wave.min(count - granted);
        let allocated_at = now + lag.grant_delay_secs + wave as f64 * lag.wave_interval_secs;
        let usable_at = allocated_at + lag.executor_startup_secs;
        for _ in 0..in_this_wave {
            pending.push(GrantEvent {
                allocated_at,
                seq: *grant_seq,
                usable_at,
            });
            *grant_seq += 1;
        }
        granted += in_this_wave;
        wave += 1;
    }
    *requested_target += count;
}

/// Releases executors that have been idle past the timeout, never dropping
/// below `keep_min` live executors.
fn remove_idle(executors: &mut [ExecutorState], time: f64, idle_timeout: f64, keep_min: usize) {
    let mut live = executors.iter().filter(|e| !e.removed).count();
    for exec in executors.iter_mut() {
        if live <= keep_min {
            break;
        }
        if !exec.removed
            && exec.busy_slots == 0
            && exec.usable_at <= time
            && time - exec.idle_since >= idle_timeout
        {
            exec.removed = true;
            live -= 1;
        }
    }
}

/// Records the current allocated-executor count (live executors plus grants
/// already issued but not yet online are *not* counted until allocated_at).
fn record_skyline(skyline: &mut Skyline, time: f64, executors: &[ExecutorState]) {
    let count = executors.iter().filter(|e| !e.removed).count();
    skyline.record(time, count);
}

/// Draws executor `idx`'s revocation time (the earlier of its spot lifetime
/// and its node's failure time) and enqueues the announcement if finite.
/// Both draws come from index-keyed seed streams, so the outcome does not
/// depend on scheduling order, and executors mapped onto the same node
/// share one node-failure draw (they die together).
fn schedule_revocation(
    plan: &FaultPlan,
    revocations: &mut BinaryHeap<RevokeEvent>,
    idx: usize,
    online_at: f64,
    executors_per_node: usize,
) {
    let mut revoke_at = f64::INFINITY;
    let mut kind = FaultKind::Preemption;
    let lifetime = plan.executor_lifetime(idx);
    if lifetime.is_finite() {
        revoke_at = online_at + lifetime;
    }
    let node_loss_at = plan.node_loss_time(idx / executors_per_node);
    // A node that failed before this executor came online cannot kill it
    // (replacements land on healthy capacity).
    if node_loss_at > online_at && node_loss_at < revoke_at {
        revoke_at = node_loss_at;
        kind = FaultKind::NodeLoss;
    }
    if revoke_at.is_finite() {
        revocations.push(RevokeEvent {
            time: revoke_at,
            executor: idx,
            phase: RevokePhase::Announce,
            kind,
        });
    }
}

/// Reaps a revoked executor at the end of its grace window: every task
/// still running on it is lost and queued for retry with the restart cost
/// implied by the plan's checkpoint fraction. Returns a failure when a
/// task exceeds its retry cap.
fn reap_executor(
    scratch: &mut SimScratch,
    plan: &FaultPlan,
    summary: &mut FaultSummary,
    executor: usize,
    time: f64,
) -> Option<FailureReason> {
    if !scratch
        .completions
        .iter()
        .any(|c| c.executor == executor && c.end_time > time + 1e-9)
    {
        return None;
    }
    // Rebuilding the heap is O(n), but reaps with in-flight tasks are rare
    // relative to scheduling events.
    let drained = std::mem::take(&mut scratch.completions).into_vec();
    let mut kept = Vec::with_capacity(drained.len());
    let mut lost = Vec::new();
    for event in drained {
        if event.executor == executor && event.end_time > time + 1e-9 {
            lost.push(event);
        } else {
            kept.push(event);
        }
    }
    scratch.completions = BinaryHeap::from(kept);
    // Lost tasks re-enter the retry queue in scheduling order.
    lost.sort_by_key(|a| a.seq);
    let mut failure = None;
    for event in lost {
        let exec = &mut scratch.executors[event.executor];
        exec.busy_slots = exec.busy_slots.saturating_sub(1);
        let elapsed = (time - event.start_time).max(0.0);
        let preserved = plan.checkpoint_fraction * elapsed;
        summary.tasks_lost += 1;
        summary.work_lost_secs += elapsed - preserved;
        let flat = scratch.stage_offsets[event.stage] + event.task;
        scratch.task_retries[flat] += 1;
        if scratch.task_retries[flat] > plan.max_task_retries {
            failure.get_or_insert(FailureReason::RetriesExhausted {
                stage: event.stage,
                task: event.task,
            });
            continue;
        }
        scratch.retry.push(RetryTask {
            stage: event.stage,
            task: event.task,
            remaining: (event.duration - preserved).max(0.0) + plan.restart_overhead_secs,
            // Recovery is measured from the first loss of the task.
            lost_at: if event.lost_at.is_finite() {
                event.lost_at
            } else {
                time
            },
        });
    }
    failure
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{Stage, Task};

    /// A single wide stage: 64 tasks of 10 s each.
    fn wide_dag() -> StageDag {
        StageDag::new(vec![Stage {
            id: 0,
            tasks: vec![Task::new(10.0); 64],
            parents: vec![],
        }])
        .unwrap()
    }

    /// Two stages: a wide scan feeding a narrow aggregation.
    fn two_stage_dag() -> StageDag {
        StageDag::new(vec![
            Stage {
                id: 0,
                tasks: vec![Task::new(5.0); 32],
                parents: vec![],
            },
            Stage {
                id: 1,
                tasks: vec![Task::new(8.0); 4],
                parents: vec![0],
            },
        ])
        .unwrap()
    }

    fn sim(n: usize) -> Simulator {
        Simulator::new(
            ClusterConfig::paper_default(),
            AllocationPolicy::static_allocation(n),
        )
        .unwrap()
    }

    fn instant_cluster() -> ClusterConfig {
        ClusterConfig {
            lag: crate::cluster::AllocationLag::instant(),
            ..ClusterConfig::paper_default()
        }
    }

    #[test]
    fn more_executors_never_slow_down_a_wide_stage() {
        let dag = wide_dag();
        let cfg = RunConfig::deterministic();
        let mut last = f64::INFINITY;
        for n in [1usize, 2, 4, 8, 16] {
            let r = sim(n).run("wide", &dag, &cfg);
            assert!(
                r.elapsed_secs <= last + 1e-6,
                "t({n}) = {} > t(prev) = {last}",
                r.elapsed_secs
            );
            last = r.elapsed_secs;
        }
    }

    #[test]
    fn run_time_saturates_beyond_stage_width() {
        let dag = wide_dag(); // 64 tasks, ec=4 → saturates at 16 executors
        let cfg = RunConfig::deterministic();
        let t16 = sim(16).run("wide", &dag, &cfg).elapsed_secs;
        let t32 = sim(32).run("wide", &dag, &cfg).elapsed_secs;
        // Allocation lag differs slightly, but times should be within a few %.
        assert!((t32 - t16).abs() / t16 < 0.2, "t16={t16} t32={t32}");
    }

    #[test]
    fn auc_grows_with_executor_count_in_saturation() {
        // Long tasks keep the query running well past the allocation ramp,
        // so the full executor count contributes to the skyline.
        let dag = StageDag::new(vec![Stage {
            id: 0,
            tasks: vec![Task::new(40.0); 64],
            parents: vec![],
        }])
        .unwrap();
        let cfg = RunConfig::deterministic();
        let r16 = sim(16).run("wide", &dag, &cfg);
        let r48 = sim(48).run("wide", &dag, &cfg);
        // Same saturated run time (64 slots already cover 64 tasks) ...
        assert!((r48.elapsed_secs - r16.elapsed_secs).abs() / r16.elapsed_secs < 0.2);
        // ... but substantially more executor occupancy.
        assert!(
            r48.auc_executor_secs > r16.auc_executor_secs * 1.5,
            "a16={} a48={}",
            r16.auc_executor_secs,
            r48.auc_executor_secs
        );
    }

    #[test]
    fn elapsed_at_least_driver_plus_critical_path() {
        let dag = two_stage_dag();
        let cfg = RunConfig::deterministic();
        let r = sim(48).run("two", &dag, &cfg);
        let lower_bound = cfg.driver_overhead_secs + dag.critical_path_secs();
        assert!(
            r.elapsed_secs >= lower_bound - 1e-6,
            "elapsed {} < bound {lower_bound}",
            r.elapsed_secs
        );
    }

    #[test]
    fn single_executor_time_close_to_serial_work() {
        // With instant allocation and ec=1, one executor runs everything serially.
        let cluster = ClusterConfig {
            lag: crate::cluster::AllocationLag::instant(),
            ..ClusterConfig::paper_default()
        }
        .with_cores_per_executor(1);
        let sim = Simulator::new(cluster, AllocationPolicy::static_allocation(1)).unwrap();
        let dag = StageDag::new(vec![Stage {
            id: 0,
            tasks: vec![Task::new(3.0); 10],
            parents: vec![],
        }])
        .unwrap();
        let cfg = RunConfig::deterministic();
        let r = sim.run("serial", &dag, &cfg);
        // 30 s of work, slight ec penalty (|1-4|*2% = 6%), plus driver overhead.
        let expected = cfg.driver_overhead_secs + 30.0 * 1.06;
        assert!(
            (r.elapsed_secs - expected).abs() < 1.0,
            "elapsed {} expected ~{expected}",
            r.elapsed_secs
        );
    }

    #[test]
    fn deterministic_runs_are_reproducible() {
        let dag = two_stage_dag();
        let cfg = RunConfig::default().with_seed(7);
        let a = sim(8).run("q", &dag, &cfg);
        let b = sim(8).run("q", &dag, &cfg);
        assert_eq!(a.elapsed_secs, b.elapsed_secs);
        assert_eq!(a.auc_executor_secs, b.auc_executor_secs);
    }

    #[test]
    fn noise_changes_run_time_slightly() {
        let dag = two_stage_dag();
        let a = sim(8).run("q", &dag, &RunConfig::default().with_seed(1));
        let b = sim(8).run("q", &dag, &RunConfig::default().with_seed(2));
        assert_ne!(a.elapsed_secs, b.elapsed_secs);
        let rel = (a.elapsed_secs - b.elapsed_secs).abs() / a.elapsed_secs;
        assert!(rel < 0.3, "noise should be modest, got {rel}");
    }

    #[test]
    fn static_allocation_skyline_is_flat_at_n() {
        let dag = wide_dag();
        let r = sim(12).run("wide", &dag, &RunConfig::deterministic());
        assert_eq!(r.max_executors, 12);
        // All 12 executors stay allocated until the end (no idle removal for SA).
        assert_eq!(r.skyline.value_at(r.elapsed_secs - 0.1), 12);
    }

    #[test]
    fn dynamic_allocation_ramps_up_and_stays_within_bounds() {
        let dag = wide_dag();
        let simulator =
            Simulator::new(instant_cluster(), AllocationPolicy::dynamic(1, 48)).unwrap();
        let r = simulator.run("wide", &dag, &RunConfig::deterministic());
        assert!(r.max_executors > 1, "DA should scale up beyond 1 executor");
        assert!(r.max_executors <= 48);
    }

    #[test]
    fn dynamic_allocation_uses_fewer_executor_seconds_than_max_static_for_narrow_tail() {
        // A long narrow stage after a short wide one: static 48 wastes
        // executors during the tail; dynamic allocation should not allocate
        // more AUC than static-48.
        let dag = StageDag::new(vec![
            Stage {
                id: 0,
                tasks: vec![Task::new(3.0); 48],
                parents: vec![],
            },
            Stage {
                id: 1,
                tasks: vec![Task::new(60.0); 2],
                parents: vec![0],
            },
        ])
        .unwrap();
        let da = Simulator::new(instant_cluster(), AllocationPolicy::dynamic(1, 48)).unwrap();
        let sa =
            Simulator::new(instant_cluster(), AllocationPolicy::static_allocation(48)).unwrap();
        let cfg = RunConfig::deterministic();
        let r_da = da.run("tail", &dag, &cfg);
        let r_sa = sa.run("tail", &dag, &cfg);
        assert!(
            r_da.auc_executor_secs < r_sa.auc_executor_secs,
            "DA AUC {} should be below SA(48) AUC {}",
            r_da.auc_executor_secs,
            r_sa.auc_executor_secs
        );
    }

    #[test]
    fn predictive_policy_reaches_requested_count() {
        let dag = wide_dag();
        let simulator = Simulator::new(
            ClusterConfig::paper_default(),
            AllocationPolicy::predictive(25),
        )
        .unwrap();
        let r = simulator.run("wide", &dag, &RunConfig::deterministic());
        assert_eq!(r.max_executors, 25);
    }

    #[test]
    fn task_log_capture_matches_dag_shape() {
        let dag = two_stage_dag();
        let r = sim(8).run("two", &dag, &RunConfig::deterministic().with_task_log());
        let log = r.task_log.expect("task log requested");
        assert_eq!(log.stages.len(), 2);
        assert_eq!(log.stages[0].task_durations_secs.len(), 32);
        assert_eq!(log.stages[1].parents, vec![0]);
        assert_eq!(log.records.len(), 36);
        assert!(log.elapsed_secs > 0.0);
    }

    #[test]
    fn total_task_secs_close_to_dag_work_when_noise_free() {
        let dag = two_stage_dag();
        let r = sim(8).run("two", &dag, &RunConfig::deterministic());
        // Only the ec penalty (ec=4 → none) applies, so totals match.
        assert!((r.total_task_secs - dag.total_work_secs()).abs() < 1e-6);
    }
}
