//! Discrete-event simulation of query execution on a pool of executors.
//!
//! The simulator plays the role of the Azure Synapse Spark runtime in the
//! paper: given a stage DAG, a cluster configuration, and an allocation
//! policy, it schedules tasks onto executor core-slots over simulated time
//! and reports the elapsed time, the executor-allocation skyline, and the
//! area under that skyline (executor occupancy, `AUC`).
//!
//! Timing behaviour deliberately reproduces the mechanics the paper's
//! figures depend on:
//!
//! * run time saturates once the slot count exceeds the widest stage,
//! * executor requests are satisfied gradually (allocation lag, §5.4),
//! * dynamic allocation ramps up exponentially on backlog and releases idle
//!   executors after a timeout,
//! * run-to-run noise of a few percent (§5.1) is applied per task from a
//!   seeded generator.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::allocation::AllocationPolicy;
use crate::cluster::ClusterConfig;
use crate::skyline::Skyline;
use crate::stage::{StageDag, StageLog, TaskLog, TaskRecord};
use crate::Result;

/// Per-run configuration: noise, driver overhead, and log capture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunConfig {
    /// Seed for the run-to-run noise generator.
    pub seed: u64,
    /// Coefficient of variation of per-task noise (0 disables noise). The
    /// paper observes 4–7% run-to-run variation; the default is 0.05.
    pub noise_cv: f64,
    /// Fixed driver/compilation overhead before the first task can run.
    pub driver_overhead_secs: f64,
    /// Whether to capture a full task log for post-hoc (Sparklens) analysis.
    pub capture_task_log: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            noise_cv: 0.05,
            driver_overhead_secs: 8.0,
            capture_task_log: false,
        }
    }
}

impl RunConfig {
    /// A deterministic configuration (no noise), useful for tests and for
    /// generating reference curves.
    pub fn deterministic() -> Self {
        Self {
            noise_cv: 0.0,
            ..Self::default()
        }
    }

    /// Enables task-log capture.
    pub fn with_task_log(mut self) -> Self {
        self.capture_task_log = true;
        self
    }

    /// Sets the noise seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Result of simulating one query execution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryRunResult {
    /// Query name.
    pub query_name: String,
    /// Elapsed (wall-clock) time of the query in seconds — `t(n)`.
    pub elapsed_secs: f64,
    /// Executor-allocation skyline over the run.
    pub skyline: Skyline,
    /// Maximum executors allocated at any instant.
    pub max_executors: usize,
    /// Area under the skyline in executor-seconds — `AUC`.
    pub auc_executor_secs: f64,
    /// Total task work executed, in core-seconds.
    pub total_task_secs: f64,
    /// Full task log, present when requested in [`RunConfig`].
    pub task_log: Option<TaskLog>,
}

/// The simulator: a cluster configuration plus an allocation policy.
#[derive(Debug, Clone)]
pub struct Simulator {
    cluster: ClusterConfig,
    policy: AllocationPolicy,
}

/// Internal per-executor state.
#[derive(Debug, Clone, Copy)]
struct ExecutorState {
    /// Time from which the executor can run tasks.
    usable_at: f64,
    /// Busy core-slots.
    busy_slots: usize,
    /// Time at which it last became fully idle.
    idle_since: f64,
    /// Whether the executor has been released.
    removed: bool,
}

/// Internal running-task record.
#[derive(Debug, Clone, Copy)]
struct RunningTask {
    end_time: f64,
    executor: usize,
    stage: usize,
    start_time: f64,
    duration: f64,
}

impl Simulator {
    /// Creates a simulator after validating the cluster configuration.
    pub fn new(cluster: ClusterConfig, policy: AllocationPolicy) -> Result<Self> {
        cluster.validate()?;
        Ok(Self { cluster, policy })
    }

    /// The cluster configuration.
    pub fn cluster(&self) -> &ClusterConfig {
        &self.cluster
    }

    /// The allocation policy.
    pub fn policy(&self) -> &AllocationPolicy {
        &self.policy
    }

    /// Simulates the execution of `dag` and returns timing and occupancy.
    pub fn run(&self, query_name: &str, dag: &StageDag, cfg: &RunConfig) -> QueryRunResult {
        let ec = self.cluster.executor.cores.max(1);
        let pool_cap = self.cluster.max_executors().max(1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Materialise noisy task durations. The cores-per-executor penalty
        // keeps ec≠4 configurations slightly off the ec=4 trend (Figure 5).
        let ec_penalty = 1.0 + 0.02 * (ec as f64 - 4.0).abs();
        let noisy: Vec<Vec<f64>> = dag
            .stages()
            .iter()
            .map(|stage| {
                stage
                    .tasks
                    .iter()
                    .map(|t| t.work_secs * ec_penalty * noise_factor(&mut rng, cfg.noise_cv))
                    .collect()
            })
            .collect();

        // Per-stage progress tracking.
        let num_stages = dag.num_stages();
        let mut next_task: Vec<usize> = vec![0; num_stages];
        let mut completed_tasks: Vec<usize> = vec![0; num_stages];
        let stage_sizes: Vec<usize> = dag.stages().iter().map(|s| s.tasks.len()).collect();
        let mut stage_done: Vec<bool> = vec![false; num_stages];

        // Executor pool.
        let mut executors: Vec<ExecutorState> = Vec::new();
        let mut pending_online: Vec<(f64, f64)> = Vec::new(); // (allocated_at, usable_at)
        let mut requested_target: usize = 0;
        let mut skyline = Skyline::new();

        // Issue the initial allocation request at time 0.
        let mut time = 0.0f64;
        let initial = self.policy.initial_executors().min(pool_cap);
        grant(
            &mut pending_online,
            &self.cluster,
            time,
            initial,
            &mut requested_target,
            pool_cap,
        );

        // Dynamic-allocation ramp state.
        let mut da_next_add: usize = 1;
        let mut da_last_request = f64::NEG_INFINITY;
        let mut predictive_requested = false;
        let tick_interval = match self.policy {
            AllocationPolicy::Dynamic(cfg) => cfg.schedule_interval_secs.max(0.25),
            _ => 1.0,
        };
        let mut next_tick = 0.0f64;

        let mut running: Vec<RunningTask> = Vec::new();
        let mut records: Vec<TaskRecord> = Vec::new();
        let total_tasks: usize = stage_sizes.iter().sum();
        let mut finished_tasks = 0usize;

        // Bound the simulation to avoid infinite loops on malformed input.
        let max_sim_time = 1e7;

        while finished_tasks < total_tasks && time < max_sim_time {
            // 1. Bring granted executors online.
            pending_online.retain(|&(allocated_at, usable_at)| {
                if allocated_at <= time + 1e-9 {
                    executors.push(ExecutorState {
                        usable_at,
                        busy_slots: 0,
                        idle_since: usable_at,
                        removed: false,
                    });
                    false
                } else {
                    true
                }
            });
            record_skyline(&mut skyline, time, &executors, &pending_online);

            // 2. Policy decisions at tick boundaries.
            if time + 1e-9 >= next_tick {
                self.policy_tick(
                    time,
                    dag,
                    &next_task,
                    &stage_sizes,
                    &stage_done,
                    &completed_tasks,
                    &mut executors,
                    &mut pending_online,
                    &mut requested_target,
                    &mut da_next_add,
                    &mut da_last_request,
                    &mut predictive_requested,
                    pool_cap,
                );
                record_skyline(&mut skyline, time, &executors, &pending_online);
                next_tick = time + tick_interval;
            }

            // 3. Schedule pending tasks of ready stages onto free slots.
            if time + 1e-9 >= cfg.driver_overhead_secs {
                for stage_idx in 0..num_stages {
                    if stage_done[stage_idx] || next_task[stage_idx] >= stage_sizes[stage_idx] {
                        continue;
                    }
                    let ready = dag.stages()[stage_idx]
                        .parents
                        .iter()
                        .all(|&p| stage_done[p]);
                    if !ready {
                        continue;
                    }
                    while next_task[stage_idx] < stage_sizes[stage_idx] {
                        let Some(exec_idx) = find_free_slot(&executors, ec, time) else {
                            break;
                        };
                        let duration = noisy[stage_idx][next_task[stage_idx]];
                        next_task[stage_idx] += 1;
                        executors[exec_idx].busy_slots += 1;
                        running.push(RunningTask {
                            end_time: time + duration,
                            executor: exec_idx,
                            stage: stage_idx,
                            start_time: time,
                            duration,
                        });
                    }
                }
            }

            // 4. Advance time to the next event.
            let next_completion = running
                .iter()
                .map(|r| r.end_time)
                .fold(f64::INFINITY, f64::min);
            let next_online = pending_online
                .iter()
                .map(|&(a, _)| a)
                .fold(f64::INFINITY, f64::min);
            let next_event = next_completion
                .min(next_online)
                .min(next_tick)
                .min(if time < cfg.driver_overhead_secs {
                    cfg.driver_overhead_secs
                } else {
                    f64::INFINITY
                });
            if !next_event.is_finite() {
                // No runnable work and nothing scheduled to change: bail out
                // (defensive; cannot happen with ≥1 executor kept alive).
                break;
            }
            time = next_event.max(time);

            // 5. Complete tasks that finished by `time`.
            let mut still_running = Vec::with_capacity(running.len());
            for task in running.drain(..) {
                if task.end_time <= time + 1e-9 {
                    finished_tasks += 1;
                    completed_tasks[task.stage] += 1;
                    if completed_tasks[task.stage] == stage_sizes[task.stage] {
                        stage_done[task.stage] = true;
                    }
                    let exec = &mut executors[task.executor];
                    exec.busy_slots = exec.busy_slots.saturating_sub(1);
                    if exec.busy_slots == 0 {
                        exec.idle_since = task.end_time;
                    }
                    if cfg.capture_task_log {
                        records.push(TaskRecord {
                            stage_id: task.stage,
                            start_secs: task.start_time,
                            duration_secs: task.duration,
                        });
                    }
                } else {
                    still_running.push(task);
                }
            }
            running = still_running;
        }

        let elapsed = time.max(cfg.driver_overhead_secs);
        skyline.finish(elapsed);
        let auc = skyline.auc_executor_secs();
        let max_exec = skyline.max_executors();
        let total_task_secs: f64 = noisy.iter().flatten().sum();

        let task_log = cfg.capture_task_log.then(|| {
            let stages = dag
                .stages()
                .iter()
                .enumerate()
                .map(|(idx, s)| StageLog {
                    stage_id: idx,
                    parents: s.parents.clone(),
                    task_durations_secs: noisy[idx].clone(),
                })
                .collect();
            TaskLog {
                query_name: query_name.to_string(),
                executors: max_exec,
                cores_per_executor: ec,
                stages,
                records,
                driver_overhead_secs: cfg.driver_overhead_secs,
                elapsed_secs: elapsed,
            }
        });

        QueryRunResult {
            query_name: query_name.to_string(),
            elapsed_secs: elapsed,
            skyline,
            max_executors: max_exec,
            auc_executor_secs: auc,
            total_task_secs,
            task_log,
        }
    }

    /// Applies the allocation policy at a tick: reactive scale-up, the
    /// predictive rule request, and idle-timeout removals.
    #[allow(clippy::too_many_arguments)]
    fn policy_tick(
        &self,
        time: f64,
        dag: &StageDag,
        next_task: &[usize],
        stage_sizes: &[usize],
        stage_done: &[bool],
        completed_tasks: &[usize],
        executors: &mut [ExecutorState],
        pending_online: &mut Vec<(f64, f64)>,
        requested_target: &mut usize,
        da_next_add: &mut usize,
        da_last_request: &mut f64,
        predictive_requested: &mut bool,
        pool_cap: usize,
    ) {
        // Pending tasks of ready (or running) stages.
        let mut backlog = 0usize;
        for (idx, stage) in dag.stages().iter().enumerate() {
            if stage_done[idx] {
                continue;
            }
            let ready = stage.parents.iter().all(|&p| stage_done[p]);
            if ready {
                backlog += stage_sizes[idx] - next_task[idx];
            }
        }
        let _ = completed_tasks;

        match self.policy {
            AllocationPolicy::Static { .. } => {}
            AllocationPolicy::Dynamic(cfg) => {
                if backlog > 0 {
                    // Each exponentially-larger request only fires after the
                    // backlog has been sustained since the previous request.
                    let backlog_sustained =
                        time - *da_last_request >= cfg.sustained_backlog_secs - 1e-9;
                    let desired =
                        (*requested_target + *da_next_add).min(cfg.max_executors).min(pool_cap);
                    if backlog_sustained && desired > *requested_target {
                        grant(
                            pending_online,
                            &self.cluster,
                            time,
                            desired - *requested_target,
                            requested_target,
                            pool_cap,
                        );
                        *da_next_add = (*da_next_add * 2).max(1);
                        *da_last_request = time;
                    }
                } else {
                    *da_next_add = 1;
                }
                remove_idle(executors, time, cfg.idle_timeout_secs, cfg.min_executors.max(1));
            }
            AllocationPolicy::Predictive {
                predicted,
                rule_delay_secs,
                idle_timeout_secs,
                ..
            } => {
                if !*predictive_requested && time + 1e-9 >= rule_delay_secs {
                    *predictive_requested = true;
                    let target = predicted.min(pool_cap);
                    if target > *requested_target {
                        grant(
                            pending_online,
                            &self.cluster,
                            time,
                            target - *requested_target,
                            requested_target,
                            pool_cap,
                        );
                    }
                }
                remove_idle(executors, time, idle_timeout_secs, 1);
            }
        }
    }
}

/// Lognormal-ish multiplicative noise with coefficient of variation `cv`,
/// generated without external distribution crates (Irwin–Hall approximation
/// of a standard normal).
fn noise_factor(rng: &mut StdRng, cv: f64) -> f64 {
    if cv <= 0.0 {
        return 1.0;
    }
    let normal: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    (1.0 + normal * cv).max(0.2)
}

/// Schedules grants for `count` additional executors under the cluster's
/// allocation-lag model and bumps the requested target.
fn grant(
    pending_online: &mut Vec<(f64, f64)>,
    cluster: &ClusterConfig,
    now: f64,
    count: usize,
    requested_target: &mut usize,
    pool_cap: usize,
) {
    let count = count.min(pool_cap.saturating_sub(*requested_target));
    if count == 0 {
        return;
    }
    let lag = cluster.lag;
    let per_wave = if lag.executors_per_wave == 0 {
        usize::MAX
    } else {
        lag.executors_per_wave
    };
    let mut granted = 0usize;
    let mut wave = 0usize;
    while granted < count {
        let in_this_wave = per_wave.min(count - granted);
        let allocated_at = now + lag.grant_delay_secs + wave as f64 * lag.wave_interval_secs;
        let usable_at = allocated_at + lag.executor_startup_secs;
        for _ in 0..in_this_wave {
            pending_online.push((allocated_at, usable_at));
        }
        granted += in_this_wave;
        wave += 1;
    }
    *requested_target += count;
}

/// Releases executors that have been idle past the timeout, never dropping
/// below `keep_min` live executors.
fn remove_idle(executors: &mut [ExecutorState], time: f64, idle_timeout: f64, keep_min: usize) {
    let mut live = executors.iter().filter(|e| !e.removed).count();
    for exec in executors.iter_mut() {
        if live <= keep_min {
            break;
        }
        if !exec.removed
            && exec.busy_slots == 0
            && exec.usable_at <= time
            && time - exec.idle_since >= idle_timeout
        {
            exec.removed = true;
            live -= 1;
        }
    }
}

/// Finds an executor with a free core-slot that is usable at `time`.
fn find_free_slot(executors: &[ExecutorState], ec: usize, time: f64) -> Option<usize> {
    executors
        .iter()
        .enumerate()
        .filter(|(_, e)| !e.removed && e.usable_at <= time + 1e-9 && e.busy_slots < ec)
        .max_by_key(|(_, e)| ec - e.busy_slots)
        .map(|(i, _)| i)
}

/// Records the current allocated-executor count (live executors plus grants
/// already issued but not yet online are *not* counted until allocated_at).
fn record_skyline(
    skyline: &mut Skyline,
    time: f64,
    executors: &[ExecutorState],
    _pending: &[(f64, f64)],
) {
    let count = executors.iter().filter(|e| !e.removed).count();
    skyline.record(time, count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage::{Stage, Task};

    /// A single wide stage: 64 tasks of 10 s each.
    fn wide_dag() -> StageDag {
        StageDag::new(vec![Stage {
            id: 0,
            tasks: vec![Task::new(10.0); 64],
            parents: vec![],
        }])
        .unwrap()
    }

    /// Two stages: a wide scan feeding a narrow aggregation.
    fn two_stage_dag() -> StageDag {
        StageDag::new(vec![
            Stage {
                id: 0,
                tasks: vec![Task::new(5.0); 32],
                parents: vec![],
            },
            Stage {
                id: 1,
                tasks: vec![Task::new(8.0); 4],
                parents: vec![0],
            },
        ])
        .unwrap()
    }

    fn sim(n: usize) -> Simulator {
        Simulator::new(
            ClusterConfig::paper_default(),
            AllocationPolicy::static_allocation(n),
        )
        .unwrap()
    }

    fn instant_cluster() -> ClusterConfig {
        ClusterConfig {
            lag: crate::cluster::AllocationLag::instant(),
            ..ClusterConfig::paper_default()
        }
    }

    #[test]
    fn more_executors_never_slow_down_a_wide_stage() {
        let dag = wide_dag();
        let cfg = RunConfig::deterministic();
        let mut last = f64::INFINITY;
        for n in [1usize, 2, 4, 8, 16] {
            let r = sim(n).run("wide", &dag, &cfg);
            assert!(
                r.elapsed_secs <= last + 1e-6,
                "t({n}) = {} > t(prev) = {last}",
                r.elapsed_secs
            );
            last = r.elapsed_secs;
        }
    }

    #[test]
    fn run_time_saturates_beyond_stage_width() {
        let dag = wide_dag(); // 64 tasks, ec=4 → saturates at 16 executors
        let cfg = RunConfig::deterministic();
        let t16 = sim(16).run("wide", &dag, &cfg).elapsed_secs;
        let t32 = sim(32).run("wide", &dag, &cfg).elapsed_secs;
        // Allocation lag differs slightly, but times should be within a few %.
        assert!((t32 - t16).abs() / t16 < 0.2, "t16={t16} t32={t32}");
    }

    #[test]
    fn auc_grows_with_executor_count_in_saturation() {
        // Long tasks keep the query running well past the allocation ramp,
        // so the full executor count contributes to the skyline.
        let dag = StageDag::new(vec![Stage {
            id: 0,
            tasks: vec![Task::new(40.0); 64],
            parents: vec![],
        }])
        .unwrap();
        let cfg = RunConfig::deterministic();
        let r16 = sim(16).run("wide", &dag, &cfg);
        let r48 = sim(48).run("wide", &dag, &cfg);
        // Same saturated run time (64 slots already cover 64 tasks) ...
        assert!((r48.elapsed_secs - r16.elapsed_secs).abs() / r16.elapsed_secs < 0.2);
        // ... but substantially more executor occupancy.
        assert!(
            r48.auc_executor_secs > r16.auc_executor_secs * 1.5,
            "a16={} a48={}",
            r16.auc_executor_secs,
            r48.auc_executor_secs
        );
    }

    #[test]
    fn elapsed_at_least_driver_plus_critical_path() {
        let dag = two_stage_dag();
        let cfg = RunConfig::deterministic();
        let r = sim(48).run("two", &dag, &cfg);
        let lower_bound = cfg.driver_overhead_secs + dag.critical_path_secs();
        assert!(
            r.elapsed_secs >= lower_bound - 1e-6,
            "elapsed {} < bound {lower_bound}",
            r.elapsed_secs
        );
    }

    #[test]
    fn single_executor_time_close_to_serial_work() {
        // With instant allocation and ec=1, one executor runs everything serially.
        let cluster = ClusterConfig {
            lag: crate::cluster::AllocationLag::instant(),
            ..ClusterConfig::paper_default()
        }
        .with_cores_per_executor(1);
        let sim = Simulator::new(cluster, AllocationPolicy::static_allocation(1)).unwrap();
        let dag = StageDag::new(vec![Stage {
            id: 0,
            tasks: vec![Task::new(3.0); 10],
            parents: vec![],
        }])
        .unwrap();
        let cfg = RunConfig::deterministic();
        let r = sim.run("serial", &dag, &cfg);
        // 30 s of work, slight ec penalty (|1-4|*2% = 6%), plus driver overhead.
        let expected = cfg.driver_overhead_secs + 30.0 * 1.06;
        assert!(
            (r.elapsed_secs - expected).abs() < 1.0,
            "elapsed {} expected ~{expected}",
            r.elapsed_secs
        );
    }

    #[test]
    fn deterministic_runs_are_reproducible() {
        let dag = two_stage_dag();
        let cfg = RunConfig::default().with_seed(7);
        let a = sim(8).run("q", &dag, &cfg);
        let b = sim(8).run("q", &dag, &cfg);
        assert_eq!(a.elapsed_secs, b.elapsed_secs);
        assert_eq!(a.auc_executor_secs, b.auc_executor_secs);
    }

    #[test]
    fn noise_changes_run_time_slightly() {
        let dag = two_stage_dag();
        let a = sim(8).run("q", &dag, &RunConfig::default().with_seed(1));
        let b = sim(8).run("q", &dag, &RunConfig::default().with_seed(2));
        assert_ne!(a.elapsed_secs, b.elapsed_secs);
        let rel = (a.elapsed_secs - b.elapsed_secs).abs() / a.elapsed_secs;
        assert!(rel < 0.3, "noise should be modest, got {rel}");
    }

    #[test]
    fn static_allocation_skyline_is_flat_at_n() {
        let dag = wide_dag();
        let r = sim(12).run("wide", &dag, &RunConfig::deterministic());
        assert_eq!(r.max_executors, 12);
        // All 12 executors stay allocated until the end (no idle removal for SA).
        assert_eq!(r.skyline.value_at(r.elapsed_secs - 0.1), 12);
    }

    #[test]
    fn dynamic_allocation_ramps_up_and_stays_within_bounds() {
        let dag = wide_dag();
        let simulator =
            Simulator::new(instant_cluster(), AllocationPolicy::dynamic(1, 48)).unwrap();
        let r = simulator.run("wide", &dag, &RunConfig::deterministic());
        assert!(r.max_executors > 1, "DA should scale up beyond 1 executor");
        assert!(r.max_executors <= 48);
    }

    #[test]
    fn dynamic_allocation_uses_fewer_executor_seconds_than_max_static_for_narrow_tail() {
        // A long narrow stage after a short wide one: static 48 wastes
        // executors during the tail; dynamic allocation should not allocate
        // more AUC than static-48.
        let dag = StageDag::new(vec![
            Stage {
                id: 0,
                tasks: vec![Task::new(3.0); 48],
                parents: vec![],
            },
            Stage {
                id: 1,
                tasks: vec![Task::new(60.0); 2],
                parents: vec![0],
            },
        ])
        .unwrap();
        let da = Simulator::new(instant_cluster(), AllocationPolicy::dynamic(1, 48)).unwrap();
        let sa = Simulator::new(instant_cluster(), AllocationPolicy::static_allocation(48)).unwrap();
        let cfg = RunConfig::deterministic();
        let r_da = da.run("tail", &dag, &cfg);
        let r_sa = sa.run("tail", &dag, &cfg);
        assert!(
            r_da.auc_executor_secs < r_sa.auc_executor_secs,
            "DA AUC {} should be below SA(48) AUC {}",
            r_da.auc_executor_secs,
            r_sa.auc_executor_secs
        );
    }

    #[test]
    fn predictive_policy_reaches_requested_count() {
        let dag = wide_dag();
        let simulator = Simulator::new(
            ClusterConfig::paper_default(),
            AllocationPolicy::predictive(25),
        )
        .unwrap();
        let r = simulator.run("wide", &dag, &RunConfig::deterministic());
        assert_eq!(r.max_executors, 25);
    }

    #[test]
    fn task_log_capture_matches_dag_shape() {
        let dag = two_stage_dag();
        let r = sim(8).run("two", &dag, &RunConfig::deterministic().with_task_log());
        let log = r.task_log.expect("task log requested");
        assert_eq!(log.stages.len(), 2);
        assert_eq!(log.stages[0].task_durations_secs.len(), 32);
        assert_eq!(log.stages[1].parents, vec![0]);
        assert_eq!(log.records.len(), 36);
        assert!(log.elapsed_secs > 0.0);
    }

    #[test]
    fn total_task_secs_close_to_dag_work_when_noise_free() {
        let dag = two_stage_dag();
        let r = sim(8).run("two", &dag, &RunConfig::deterministic());
        // Only the ec penalty (ec=4 → none) applies, so totals match.
        assert!((r.total_task_secs - dag.total_work_secs()).abs() < 1e-6);
    }
}
