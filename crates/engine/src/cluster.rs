//! Cluster, node, and executor sizing, plus the allocation-lag model.
//!
//! The paper's testbed uses Azure Synapse Spark pools with medium nodes
//! (8 cores, 64 GB) hosting at most two executors of 4 cores / 28 GB each,
//! and observes that the runtime environment takes roughly 20–30 seconds to
//! gradually satisfy a large executor request (Section 5.4). Those knobs
//! live here.

use serde::{Deserialize, Serialize};

use crate::{EngineError, Result};

/// Size of one executor (Spark worker process).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExecutorSpec {
    /// Cores per executor (`ec` in the paper).
    pub cores: usize,
    /// Memory per executor in GB.
    pub memory_gb: f64,
}

impl ExecutorSpec {
    /// The paper's executor size: 4 cores, 28 GB.
    pub fn paper_default() -> Self {
        Self {
            cores: 4,
            memory_gb: 28.0,
        }
    }

    /// Validates the spec: a zero-core executor can run no tasks (and would
    /// otherwise surface as a silent `executors_per_node() == 0`), and
    /// memory must be a finite, non-negative number.
    pub fn validate(&self) -> Result<()> {
        if self.cores == 0 {
            return Err(EngineError::InvalidConfig(
                "executor cores must be > 0 (a zero-core executor cannot run tasks)".into(),
            ));
        }
        if !self.memory_gb.is_finite() || self.memory_gb < 0.0 {
            return Err(EngineError::InvalidConfig(format!(
                "executor memory must be finite and non-negative, got {} GB",
                self.memory_gb
            )));
        }
        Ok(())
    }
}

/// Size of one cluster node (VM).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeSpec {
    /// Cores per node (`C` in Section 3.3).
    pub cores: usize,
    /// Memory per node in GB (`M`).
    pub memory_gb: f64,
}

impl NodeSpec {
    /// The paper's medium node: 8 cores, 64 GB.
    pub fn medium() -> Self {
        Self {
            cores: 8,
            memory_gb: 64.0,
        }
    }

    /// How many executors of the given spec fit on one node, limited by both
    /// cores and memory.
    pub fn executors_per_node(&self, executor: &ExecutorSpec) -> usize {
        if executor.cores == 0 {
            return 0;
        }
        let by_cores = self.cores / executor.cores;
        let by_memory = if executor.memory_gb <= 0.0 {
            usize::MAX
        } else {
            (self.memory_gb / executor.memory_gb).floor() as usize
        };
        by_cores.min(by_memory)
    }
}

/// How quickly the cluster manager satisfies executor-allocation requests.
///
/// Requests are granted in waves: nothing for `grant_delay_secs`, then
/// `executors_per_wave` new executors come online every `wave_interval_secs`
/// until the target is reached. Each executor additionally pays
/// `executor_startup_secs` before it can run tasks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocationLag {
    /// Delay before the first grant of a request.
    pub grant_delay_secs: f64,
    /// Executors granted per wave.
    pub executors_per_wave: usize,
    /// Interval between grant waves.
    pub wave_interval_secs: f64,
    /// Per-executor startup time once granted.
    pub executor_startup_secs: f64,
}

impl AllocationLag {
    /// Lag calibrated to the paper's observation that 25–48 executors take
    /// roughly 20–30 seconds to be fully allocated.
    pub fn synapse_like() -> Self {
        Self {
            grant_delay_secs: 3.0,
            executors_per_wave: 4,
            wave_interval_secs: 2.0,
            executor_startup_secs: 1.0,
        }
    }

    /// No lag at all: requests are satisfied instantly. Useful for isolating
    /// scheduling effects in tests.
    pub fn instant() -> Self {
        Self {
            grant_delay_secs: 0.0,
            executors_per_wave: usize::MAX,
            wave_interval_secs: 0.0,
            executor_startup_secs: 0.0,
        }
    }

    /// Time from issuing a request until `count` additional executors are
    /// usable, under this lag model.
    pub fn time_to_allocate(&self, count: usize) -> f64 {
        if count == 0 {
            return 0.0;
        }
        if self.executors_per_wave == usize::MAX || self.executors_per_wave == 0 {
            return self.grant_delay_secs + self.executor_startup_secs;
        }
        let waves = count.div_ceil(self.executors_per_wave);
        self.grant_delay_secs
            + (waves.saturating_sub(1)) as f64 * self.wave_interval_secs
            + self.executor_startup_secs
    }
}

/// Full cluster configuration used by the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Node size.
    pub node: NodeSpec,
    /// Number of nodes in the pool.
    pub max_nodes: usize,
    /// Executor size.
    pub executor: ExecutorSpec,
    /// Allocation-lag behaviour.
    pub lag: AllocationLag,
}

impl ClusterConfig {
    /// The paper's setup: medium nodes, 4-core executors, at most two
    /// executors per node, 1–48 executors available.
    pub fn paper_default() -> Self {
        Self {
            node: NodeSpec::medium(),
            max_nodes: 25, // 48 executors + driver comfortably fit
            executor: ExecutorSpec::paper_default(),
            lag: AllocationLag::synapse_like(),
        }
    }

    /// Same as [`ClusterConfig::paper_default`] but with a different
    /// executor-core count (`ec`), used by the total-cores study (Table 1).
    pub fn with_cores_per_executor(mut self, cores: usize) -> Self {
        self.executor.cores = cores;
        // Memory scales with cores so that the node memory constraint keeps
        // roughly the same executors-per-node ratio as the paper.
        self.executor.memory_gb = 7.0 * cores as f64;
        self
    }

    /// Maximum number of executors the pool can host.
    pub fn max_executors(&self) -> usize {
        self.max_nodes * self.node.executors_per_node(&self.executor)
    }

    /// Validates the configuration. Rejects zero-core executors, zero-core
    /// nodes, node-less pools, executors that do not fit on a node (all of
    /// which would otherwise become downstream div-by-zero or a silent
    /// zero-executor pool), and malformed allocation-lag times.
    pub fn validate(&self) -> Result<()> {
        self.executor.validate()?;
        if self.node.cores == 0 {
            return Err(EngineError::InvalidConfig(
                "node cores must be > 0 (a zero-core node hosts no executors)".into(),
            ));
        }
        if !self.node.memory_gb.is_finite() || self.node.memory_gb < 0.0 {
            return Err(EngineError::InvalidConfig(format!(
                "node memory must be finite and non-negative, got {} GB",
                self.node.memory_gb
            )));
        }
        if self.max_nodes == 0 {
            return Err(EngineError::InvalidConfig(
                "cluster must have at least one node (max_nodes must be > 0)".into(),
            ));
        }
        if self.node.executors_per_node(&self.executor) == 0 {
            return Err(EngineError::InvalidConfig(format!(
                "an executor with {} cores / {} GB does not fit on a node with {} cores / {} GB",
                self.executor.cores, self.executor.memory_gb, self.node.cores, self.node.memory_gb
            )));
        }
        let lag_times = [
            ("grant delay", self.lag.grant_delay_secs),
            ("wave interval", self.lag.wave_interval_secs),
            ("executor startup", self.lag.executor_startup_secs),
        ];
        for (name, value) in lag_times {
            if !value.is_finite() || value < 0.0 {
                return Err(EngineError::InvalidConfig(format!(
                    "allocation-lag {name} must be finite and non-negative, got {value} s"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_hosts_two_executors_per_node() {
        let cfg = ClusterConfig::paper_default();
        assert_eq!(cfg.node.executors_per_node(&cfg.executor), 2);
        assert!(cfg.max_executors() >= 48);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn memory_limits_executors_per_node() {
        let node = NodeSpec {
            cores: 16,
            memory_gb: 30.0,
        };
        let executor = ExecutorSpec {
            cores: 4,
            memory_gb: 28.0,
        };
        // By cores 4 would fit, but memory allows only 1.
        assert_eq!(node.executors_per_node(&executor), 1);
    }

    #[test]
    fn oversized_executor_is_invalid() {
        let cfg = ClusterConfig {
            executor: ExecutorSpec {
                cores: 16,
                memory_gb: 28.0,
            },
            ..ClusterConfig::paper_default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn allocation_lag_time_grows_with_count() {
        let lag = AllocationLag::synapse_like();
        let t8 = lag.time_to_allocate(8);
        let t48 = lag.time_to_allocate(48);
        assert!(t48 > t8);
        // 48 executors at 4 per 2s wave ≈ 22s + delays → in the 20–30 s band.
        assert!((20.0..=35.0).contains(&t48), "t48 = {t48}");
    }

    #[test]
    fn instant_lag_is_fast() {
        let lag = AllocationLag::instant();
        assert_eq!(lag.time_to_allocate(0), 0.0);
        assert_eq!(lag.time_to_allocate(48), 0.0);
    }

    #[test]
    fn with_cores_per_executor_rescales_memory() {
        let cfg = ClusterConfig::paper_default().with_cores_per_executor(2);
        assert_eq!(cfg.executor.cores, 2);
        assert_eq!(cfg.node.executors_per_node(&cfg.executor), 4);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn zero_core_executor_is_invalid() {
        let mut cfg = ClusterConfig::paper_default();
        cfg.executor.cores = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("executor cores"), "{err}");
        assert!(cfg.executor.validate().is_err());
    }

    #[test]
    fn zero_executor_pool_is_invalid_with_descriptive_errors() {
        let mut cfg = ClusterConfig::paper_default();
        cfg.max_nodes = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("max_nodes"), "{err}");

        let mut cfg = ClusterConfig::paper_default();
        cfg.node.cores = 0;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("node cores"), "{err}");
    }

    #[test]
    fn non_finite_values_are_invalid() {
        let mut cfg = ClusterConfig::paper_default();
        cfg.executor.memory_gb = f64::NAN;
        assert!(cfg.validate().is_err());

        let mut cfg = ClusterConfig::paper_default();
        cfg.node.memory_gb = f64::INFINITY;
        assert!(cfg.validate().is_err());

        let mut cfg = ClusterConfig::paper_default();
        cfg.lag.grant_delay_secs = f64::NAN;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("grant delay"), "{err}");
    }
}
