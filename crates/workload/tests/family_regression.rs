//! Pins the TPC-DS-like suite bit-for-bit across refactors.
//!
//! The digests below were computed from the pre-`QueryFamily` workload layer
//! (the hardcoded `tpcds_templates()` / `WorkloadGenerator::new` path). Any
//! change to template sampling, plan construction, or DAG construction for
//! the TPC-DS-like family shows up here as a digest mismatch: the family
//! refactor must leave the historical suite — names, templates, plans, and
//! DAGs — exactly as it was.

use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};

/// FNV-1a over a byte stream.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Exact digest of everything the generator produces for a suite: template
/// fields, compile-time plan statistics, and the full task-level DAG.
fn digest_suite(suite: &[QueryInstance]) -> u64 {
    let mut d = Digest::new();
    d.u64(suite.len() as u64);
    for q in suite {
        d.bytes(q.name.as_bytes());
        let t = &q.template;
        d.bytes(t.name.as_bytes());
        d.u64(t.num_inputs as u64);
        for &gb in &t.input_gb_per_sf {
            d.f64(gb);
        }
        d.f64(t.rows_per_gb);
        d.f64(t.work_secs_per_gb);
        d.f64(t.serial_fraction);
        d.u64(t.num_shuffle_stages as u64);
        d.f64(t.skew);
        for count in [
            t.num_joins,
            t.num_aggregates,
            t.num_filters,
            t.num_projects,
            t.num_sorts,
            t.num_unions,
            t.num_windows,
            t.num_subqueries,
        ] {
            d.u64(count as u64);
        }

        let stats = q.plan.stats();
        for &c in &stats.operator_counts {
            d.u64(c as u64);
        }
        d.u64(stats.total_operators as u64);
        d.u64(stats.max_depth as u64);
        d.u64(stats.num_input_sources as u64);
        d.f64(stats.total_input_bytes);
        d.f64(stats.total_rows_processed);

        d.u64(q.dag.num_stages() as u64);
        for stage in q.dag.stages() {
            d.u64(stage.id as u64);
            d.u64(stage.parents.len() as u64);
            for &p in &stage.parents {
                d.u64(p as u64);
            }
            d.u64(stage.tasks.len() as u64);
            for task in &stage.tasks {
                d.f64(task.work_secs);
            }
        }
    }
    d.0
}

/// Digests of the suite as produced by the pre-refactor generator at commit
/// 5961f19 (before the `QueryFamily` registry existed).
const PRE_REFACTOR_DIGEST_SF10: u64 = 0xa342_6b94_56f7_7a20;
const PRE_REFACTOR_DIGEST_SF100: u64 = 0x6119_405b_60f8_1783;

#[test]
fn tpcds_suite_is_bit_identical_to_pre_refactor_generator() {
    let sf10 = WorkloadGenerator::new(ScaleFactor::SF10).suite();
    let sf100 = WorkloadGenerator::new(ScaleFactor::SF100).suite();
    assert_eq!(
        digest_suite(&sf10),
        PRE_REFACTOR_DIGEST_SF10,
        "TPC-DS-like SF10 suite diverged from the pre-refactor generator"
    );
    assert_eq!(
        digest_suite(&sf100),
        PRE_REFACTOR_DIGEST_SF100,
        "TPC-DS-like SF100 suite diverged from the pre-refactor generator"
    );
}

#[test]
fn tpcds_family_names_match_the_historical_suite() {
    let mut expected: Vec<String> = (1..=99).map(|i| format!("q{i}")).collect();
    expected.extend(["q14b", "q23b", "q24b", "q39b"].map(String::from));
    assert_eq!(ae_workload::tpcds_query_names(), expected);
    let suite = WorkloadGenerator::new(ScaleFactor::SF10).suite();
    let names: Vec<&str> = suite.iter().map(|q| q.name.as_str()).collect();
    assert_eq!(
        names,
        expected.iter().map(String::as_str).collect::<Vec<_>>()
    );
}

/// The registry route (`BuiltinFamily::Tpcds`) and the compatibility route
/// (`WorkloadGenerator::new`) must be the same generator, not two copies.
#[test]
fn registry_route_equals_compatibility_route() {
    use ae_workload::BuiltinFamily;
    let via_new = WorkloadGenerator::new(ScaleFactor::SF100).suite();
    let via_registry = WorkloadGenerator::builtin(BuiltinFamily::Tpcds, ScaleFactor::SF100).suite();
    assert_eq!(digest_suite(&via_new), digest_suite(&via_registry));
}
