//! Property-based tests on the workload generators.

use ae_workload::templates::{template_for, tpcds_query_names};
use ae_workload::{ScaleFactor, WorkloadGenerator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every query in the suite produces a structurally valid DAG whose work
    /// matches the template within the spreading tolerance, at any scale
    /// factor in a reasonable range.
    #[test]
    fn any_query_any_scale_factor_is_consistent(query_idx in 0usize..103, sf in 5u32..200) {
        let names = tpcds_query_names();
        let name = &names[query_idx];
        let scale = ScaleFactor(sf);
        let instance = WorkloadGenerator::new(scale).instance(name);
        let stats = instance.plan.stats();

        prop_assert!(instance.dag.num_tasks() >= 1);
        prop_assert!(instance.dag.critical_path_secs() > 0.0);
        prop_assert!(stats.total_input_bytes > 0.0);
        prop_assert_eq!(stats.num_input_sources, instance.template.num_inputs);

        let expected = instance.template.total_work_secs(scale);
        let actual = instance.dag.total_work_secs();
        prop_assert!((actual - expected).abs() / expected < 0.2,
            "{}@SF={}: dag work {} vs template {}", name, sf, actual, expected);
    }

    /// Input bytes scale linearly with the scale factor and the DAG only
    /// ever gets wider (never narrower) as data grows.
    #[test]
    fn scale_factor_monotonicity(query_idx in 0usize..103) {
        let names = tpcds_query_names();
        let name = &names[query_idx];
        let small = WorkloadGenerator::new(ScaleFactor::SF10).instance(name);
        let large = WorkloadGenerator::new(ScaleFactor::SF100).instance(name);
        let b_small = small.plan.stats().total_input_bytes;
        let b_large = large.plan.stats().total_input_bytes;
        prop_assert!((b_large / b_small - 10.0).abs() < 0.5);
        prop_assert!(large.dag.max_stage_width() >= small.dag.max_stage_width());
        prop_assert!(large.dag.total_work_secs() > small.dag.total_work_secs());
    }

    /// Templates are pure functions of the query name.
    #[test]
    fn templates_depend_only_on_the_name(query_idx in 0usize..103) {
        let names = tpcds_query_names();
        let name = &names[query_idx];
        prop_assert_eq!(template_for(name), template_for(name));
    }
}
