//! Property-based tests on the workload generators, across all families.

use ae_workload::families::{skew, tpcds, tpch};
use ae_workload::{BuiltinFamily, ScaleFactor, WorkloadGenerator};
use proptest::prelude::*;

/// The canonical names of a builtin family (0 = tpcds, 1 = tpch, 2 = skew).
fn family_and_names(family_idx: usize) -> (BuiltinFamily, Vec<String>) {
    let family = BuiltinFamily::ALL[family_idx % BuiltinFamily::ALL.len()];
    let names = family.family().query_names();
    (family, names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every query of every family produces a structurally valid DAG whose
    /// work matches the template within the spreading tolerance, at any
    /// scale factor in a reasonable range.
    #[test]
    fn any_query_any_scale_factor_is_consistent(
        family_idx in 0usize..3,
        query_seed in 0usize..103,
        sf in 5u32..200,
    ) {
        let (family, names) = family_and_names(family_idx);
        let name = &names[query_seed % names.len()];
        let scale = ScaleFactor(sf);
        let instance = WorkloadGenerator::builtin(family, scale).instance(name);
        let stats = instance.plan.stats();

        prop_assert_eq!(&instance.family, family.key());
        prop_assert!(instance.dag.num_tasks() >= 1);
        prop_assert!(instance.dag.critical_path_secs() > 0.0);
        prop_assert!(stats.total_input_bytes > 0.0);
        prop_assert_eq!(stats.num_input_sources, instance.template.num_inputs);

        let expected = instance.template.total_work_secs(scale);
        let actual = instance.dag.total_work_secs();
        prop_assert!((actual - expected).abs() / expected < 0.2,
            "{}@SF={}: dag work {} vs template {}", name, sf, actual, expected);
    }

    /// Input bytes scale linearly with the scale factor and the DAG only
    /// ever gets wider (never narrower) as data grows — in every family.
    #[test]
    fn scale_factor_monotonicity(family_idx in 0usize..3, query_seed in 0usize..103) {
        let (family, names) = family_and_names(family_idx);
        let name = &names[query_seed % names.len()];
        let small = WorkloadGenerator::builtin(family, ScaleFactor::SF10).instance(name);
        let large = WorkloadGenerator::builtin(family, ScaleFactor::SF100).instance(name);
        let b_small = small.plan.stats().total_input_bytes;
        let b_large = large.plan.stats().total_input_bytes;
        prop_assert!((b_large / b_small - 10.0).abs() < 0.5);
        prop_assert!(large.dag.max_stage_width() >= small.dag.max_stage_width());
        prop_assert!(large.dag.total_work_secs() > small.dag.total_work_secs());
    }

    /// Templates are pure functions of the query name, and each family
    /// resolves only its own names.
    #[test]
    fn templates_depend_only_on_the_name(family_idx in 0usize..3, query_seed in 0usize..103) {
        let (family, names) = family_and_names(family_idx);
        let name = &names[query_seed % names.len()];
        let lookup = |n: &str| match family {
            BuiltinFamily::Tpcds => tpcds::template_for(n),
            BuiltinFamily::Tpch => tpch::template_for(n),
            BuiltinFamily::Skew => skew::template_for(n),
        };
        let template = lookup(name);
        prop_assert!(template.is_some());
        prop_assert_eq!(template, lookup(name));
        // Name sets are disjoint: the other families reject this name.
        for other in BuiltinFamily::ALL {
            if other != family {
                prop_assert_eq!(other.family().template(name), None);
            }
        }
    }
}
