//! Synthetic production-telemetry generator (Section 2 of the paper).
//!
//! The paper motivates per-query resource allocation with a day of
//! production Spark telemetry at Microsoft: 90,224 applications, 840,278
//! queries, 3,245 clusters. That data is proprietary, so this module
//! generates a synthetic telemetry set whose *reported distributions* match
//! the paper's figures:
//!
//! * Figure 2a — more than 60% of applications run more than one query, with
//!   a long tail up to thousands of queries.
//! * Figure 2b — within an application, queries vary: median coefficient of
//!   variation ≈ 20% for operator counts, ≈ 40% for rows processed, ≈ 60%
//!   for query times.
//! * Figure 2c — ≈ 70% of applications do not share their cluster with any
//!   concurrent application.
//! * Figure 3a — 59% of applications enable dynamic allocation; 97% of those
//!   keep the default (0, 2³¹−1) range, the rest set ranges mostly of 2 but
//!   up to 64.
//! * Figure 3b — of the applications without dynamic allocation, ≈ 80% run
//!   with the default 2 executors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Per-query telemetry captured for an application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryTelemetry {
    /// Number of operators in the query plan.
    pub operator_count: f64,
    /// Rows processed by the query.
    pub rows_processed: f64,
    /// Query execution time in seconds.
    pub duration_secs: f64,
}

/// Dynamic-allocation settings of an application (when enabled).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DynamicAllocationSetting {
    /// Configured minimum executors.
    pub min_executors: u64,
    /// Configured maximum executors.
    pub max_executors: u64,
}

impl DynamicAllocationSetting {
    /// The Spark default range: 0 to 2³¹ − 1.
    pub fn spark_default() -> Self {
        Self {
            min_executors: 0,
            max_executors: (i32::MAX) as u64,
        }
    }

    /// Whether this is the (unrealistic) default range.
    pub fn is_default(&self) -> bool {
        *self == Self::spark_default()
    }

    /// Width of the configured executor range.
    pub fn range(&self) -> u64 {
        self.max_executors.saturating_sub(self.min_executors)
    }
}

/// Telemetry of one Spark application.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ApplicationTelemetry {
    /// Cluster the application ran on.
    pub cluster_id: usize,
    /// Per-query telemetry rows.
    pub queries: Vec<QueryTelemetry>,
    /// Dynamic-allocation settings, `None` when disabled.
    pub dynamic_allocation: Option<DynamicAllocationSetting>,
    /// Static executor count (meaningful when dynamic allocation is off).
    pub static_executors: Option<u64>,
    /// Total cores allocated to the application (executors × cores).
    pub total_cores: u64,
    /// Maximum number of applications concurrently active on the same
    /// cluster while this one ran (including itself).
    pub max_concurrent_apps: usize,
}

impl ApplicationTelemetry {
    /// Coefficient of variation (%) of a per-query metric within this app.
    fn cov(&self, metric: impl Fn(&QueryTelemetry) -> f64) -> f64 {
        let values: Vec<f64> = self.queries.iter().map(metric).collect();
        ae_ml_cov(&values)
    }

    /// CoV (%) of operator counts across this application's queries.
    pub fn operator_count_cov(&self) -> f64 {
        self.cov(|q| q.operator_count)
    }

    /// CoV (%) of rows processed across this application's queries.
    pub fn rows_processed_cov(&self) -> f64 {
        self.cov(|q| q.rows_processed)
    }

    /// CoV (%) of query durations across this application's queries.
    pub fn duration_cov(&self) -> f64 {
        self.cov(|q| q.duration_secs)
    }
}

/// Local CoV helper (population std / mean × 100); kept here to avoid a
/// dependency cycle with `ae-ml`.
fn ae_ml_cov(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    if mean.abs() < f64::EPSILON {
        return 0.0;
    }
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    var.sqrt() / mean * 100.0
}

/// Configuration of the synthetic telemetry generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProductionWorkloadConfig {
    /// Number of applications to generate (the paper analyses 90,224; the
    /// default here is smaller so experiments stay fast while the CDF shapes
    /// are unchanged).
    pub num_applications: usize,
    /// Number of clusters to spread applications over.
    pub num_clusters: usize,
    /// Seed for the generator.
    pub seed: u64,
}

impl Default for ProductionWorkloadConfig {
    fn default() -> Self {
        Self {
            num_applications: 10_000,
            num_clusters: 360,
            seed: 2023,
        }
    }
}

/// The generated telemetry set.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProductionWorkload {
    /// All generated applications.
    pub applications: Vec<ApplicationTelemetry>,
}

impl ProductionWorkload {
    /// Generates a telemetry set from the configuration.
    pub fn generate(config: &ProductionWorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut applications = Vec::with_capacity(config.num_applications);
        // Pre-assign applications to clusters so concurrency can be derived.
        let cluster_of: Vec<usize> = (0..config.num_applications)
            .map(|_| sample_cluster(&mut rng, config.num_clusters))
            .collect();
        let mut apps_per_cluster = vec![0usize; config.num_clusters];
        for &c in &cluster_of {
            apps_per_cluster[c] += 1;
        }

        for &cluster_id in cluster_of.iter().take(config.num_applications) {
            let num_queries = sample_queries_per_app(&mut rng);
            let queries = generate_queries(&mut rng, num_queries);

            // 59% enable dynamic allocation; 97% of those keep the default range.
            let dynamic_allocation = if rng.gen_bool(0.59) {
                if rng.gen_bool(0.97) {
                    Some(DynamicAllocationSetting::spark_default())
                } else {
                    let min = rng.gen_range(0..4u64);
                    // ~60% of custom ranges have width 2, rest up to 64.
                    let width = if rng.gen_bool(0.6) {
                        2
                    } else {
                        [4u64, 8, 16, 32, 64][rng.gen_range(0..5usize)]
                    };
                    Some(DynamicAllocationSetting {
                        min_executors: min,
                        max_executors: min + width,
                    })
                }
            } else {
                None
            };

            // Static executor counts for apps without dynamic allocation:
            // 80% keep the default of 2, the rest scale up to ~2048.
            let static_executors = if dynamic_allocation.is_none() {
                Some(if rng.gen_bool(0.8) {
                    2
                } else {
                    2u64 << rng.gen_range(1..11) // 4 .. 4096-ish, log-spread
                })
            } else {
                None
            };
            let executors_for_cores = static_executors.unwrap_or_else(|| rng.gen_range(2..64));
            let total_cores = executors_for_cores * 4;

            // ~70% of apps run alone; for the rest concurrency grows with
            // cluster population.
            let max_concurrent_apps = if rng.gen_bool(0.70) {
                1
            } else {
                let cap = apps_per_cluster[cluster_id].clamp(2, 64);
                rng.gen_range(2..=cap.max(2))
            };

            applications.push(ApplicationTelemetry {
                cluster_id,
                queries,
                dynamic_allocation,
                static_executors,
                total_cores,
                max_concurrent_apps,
            });
        }
        Self { applications }
    }

    /// Total number of queries across all applications.
    pub fn total_queries(&self) -> usize {
        self.applications.iter().map(|a| a.queries.len()).sum()
    }

    /// Values for the Figure 2a CDF: queries per application.
    pub fn queries_per_application(&self) -> Vec<f64> {
        self.applications
            .iter()
            .map(|a| a.queries.len() as f64)
            .collect()
    }

    /// Values for the Figure 2b CDFs: per-application CoV (%) of rows
    /// processed, query times, and operator counts, in that order.
    pub fn variation_cdfs(&self) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
        let multi: Vec<&ApplicationTelemetry> = self
            .applications
            .iter()
            .filter(|a| a.queries.len() > 1)
            .collect();
        let rows = multi.iter().map(|a| a.rows_processed_cov()).collect();
        let times = multi.iter().map(|a| a.duration_cov()).collect();
        let ops = multi.iter().map(|a| a.operator_count_cov()).collect();
        (rows, times, ops)
    }

    /// Values for the Figure 2c CDF: maximum concurrent applications.
    pub fn concurrent_applications(&self) -> Vec<f64> {
        self.applications
            .iter()
            .map(|a| a.max_concurrent_apps as f64)
            .collect()
    }

    /// Fraction of applications with dynamic allocation enabled.
    pub fn dynamic_allocation_fraction(&self) -> f64 {
        let with = self
            .applications
            .iter()
            .filter(|a| a.dynamic_allocation.is_some())
            .count();
        with as f64 / self.applications.len().max(1) as f64
    }

    /// Values for the Figure 3a CDF: executor-range widths of applications
    /// that configured a *non-default* dynamic-allocation range.
    pub fn non_default_da_ranges(&self) -> Vec<f64> {
        self.applications
            .iter()
            .filter_map(|a| a.dynamic_allocation)
            .filter(|da| !da.is_default())
            .map(|da| da.range() as f64)
            .collect()
    }

    /// Values for the Figure 3b CDFs: static executor counts and total cores
    /// of applications without dynamic allocation.
    pub fn static_allocations(&self) -> (Vec<f64>, Vec<f64>) {
        let execs: Vec<f64> = self
            .applications
            .iter()
            .filter_map(|a| a.static_executors)
            .map(|e| e as f64)
            .collect();
        let cores: Vec<f64> = self
            .applications
            .iter()
            .filter(|a| a.static_executors.is_some())
            .map(|a| a.total_cores as f64)
            .collect();
        (execs, cores)
    }
}

/// Cluster assignment: a few hot clusters host many applications.
fn sample_cluster(rng: &mut StdRng, num_clusters: usize) -> usize {
    // Zipf-ish: square a uniform to concentrate mass on low indices.
    let u: f64 = rng.gen();
    ((u * u) * num_clusters as f64) as usize % num_clusters.max(1)
}

/// Queries per application: ~40% single-query, long tail to thousands.
fn sample_queries_per_app(rng: &mut StdRng) -> usize {
    if rng.gen_bool(0.38) {
        1
    } else {
        // Log-uniform between 2 and 5000.
        let lo = (2.0f64).ln();
        let hi = (5000.0f64).ln();
        let v: f64 = rng.gen_range(lo..hi);
        (v.exp()).round() as usize
    }
}

/// Generates per-query telemetry with per-app dispersion chosen so the CoV
/// distributions land near the paper's medians.
fn generate_queries(rng: &mut StdRng, count: usize) -> Vec<QueryTelemetry> {
    // Per-application base values.
    let base_ops: f64 = rng.gen_range(5.0..60.0);
    let base_rows: f64 = 10f64.powf(rng.gen_range(4.0..9.0));
    let base_time: f64 = 10f64.powf(rng.gen_range(0.5..3.0));
    // Per-application dispersion: operator counts vary least, times most.
    let ops_disp: f64 = rng.gen_range(0.0..0.45);
    let rows_disp: f64 = rng.gen_range(0.05..0.9);
    let time_disp: f64 = rng.gen_range(0.1..1.3);

    // Cap the number of materialised telemetry rows per app to keep memory
    // bounded; CoV statistics stabilise long before 500 samples.
    let materialised = count.min(500);
    let mut queries = Vec::with_capacity(materialised);
    for _ in 0..materialised {
        queries.push(QueryTelemetry {
            operator_count: (base_ops * lognormal(rng, ops_disp)).max(1.0).round(),
            rows_processed: base_rows * lognormal(rng, rows_disp),
            duration_secs: base_time * lognormal(rng, time_disp),
        });
    }
    // Preserve the *reported* query count even when rows were capped by
    // padding with clones of existing rows (cheap, keeps len() faithful).
    while queries.len() < count {
        let idx = queries.len() % materialised;
        let clone = queries[idx].clone();
        queries.push(clone);
    }
    queries
}

/// Multiplicative lognormal-ish factor with scale `sigma`.
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    let normal: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
    (normal * sigma).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_workload() -> ProductionWorkload {
        ProductionWorkload::generate(&ProductionWorkloadConfig {
            num_applications: 2000,
            num_clusters: 80,
            seed: 7,
        })
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ProductionWorkloadConfig {
            num_applications: 200,
            num_clusters: 20,
            seed: 11,
        };
        let a = ProductionWorkload::generate(&cfg);
        let b = ProductionWorkload::generate(&cfg);
        assert_eq!(a.total_queries(), b.total_queries());
        assert_eq!(
            a.applications[17].max_concurrent_apps,
            b.applications[17].max_concurrent_apps
        );
    }

    #[test]
    fn majority_of_apps_have_multiple_queries() {
        let w = small_workload();
        let multi = w
            .applications
            .iter()
            .filter(|a| a.queries.len() > 1)
            .count() as f64
            / w.applications.len() as f64;
        assert!(multi > 0.55, "only {multi:.2} of apps have >1 query");
    }

    #[test]
    fn dynamic_allocation_fraction_near_paper_value() {
        let w = small_workload();
        let frac = w.dynamic_allocation_fraction();
        assert!((frac - 0.59).abs() < 0.05, "DA fraction {frac}");
    }

    #[test]
    fn most_da_apps_use_default_range() {
        let w = small_workload();
        let da: Vec<_> = w
            .applications
            .iter()
            .filter_map(|a| a.dynamic_allocation)
            .collect();
        let default = da.iter().filter(|d| d.is_default()).count() as f64 / da.len() as f64;
        assert!(default > 0.9, "default-range fraction {default}");
        // Non-default ranges exist and are small-ish.
        let ranges = w.non_default_da_ranges();
        assert!(!ranges.is_empty());
        assert!(ranges.iter().all(|&r| (2.0..=64.0).contains(&r)));
    }

    #[test]
    fn most_static_apps_run_with_two_executors() {
        let w = small_workload();
        let (execs, cores) = w.static_allocations();
        assert!(!execs.is_empty());
        let twos = execs.iter().filter(|&&e| e == 2.0).count() as f64 / execs.len() as f64;
        assert!(twos > 0.7, "fraction with 2 executors = {twos}");
        assert_eq!(execs.len(), cores.len());
    }

    #[test]
    fn concurrency_mostly_one() {
        let w = small_workload();
        let conc = w.concurrent_applications();
        let alone = conc.iter().filter(|&&c| c == 1.0).count() as f64 / conc.len() as f64;
        assert!((alone - 0.70).abs() < 0.06, "alone fraction {alone}");
    }

    #[test]
    fn variation_medians_follow_paper_ordering() {
        let w = small_workload();
        let (rows, times, ops) = w.variation_cdfs();
        let median = |mut v: Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap());
            v[v.len() / 2]
        };
        let (m_rows, m_times, m_ops) = (median(rows), median(times), median(ops));
        // Times vary more than rows, which vary more than operator counts.
        assert!(m_times > m_rows, "times {m_times} !> rows {m_rows}");
        assert!(m_rows > m_ops, "rows {m_rows} !> ops {m_ops}");
    }

    #[test]
    fn query_counts_are_preserved_even_when_capped() {
        let mut rng = StdRng::seed_from_u64(1);
        let queries = generate_queries(&mut rng, 1200);
        assert_eq!(queries.len(), 1200);
    }
}
