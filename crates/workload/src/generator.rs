//! Materialises query templates into logical plans and stage DAGs.
//!
//! The [`WorkloadGenerator`] is the stand-in for "benchmark data + Spark SQL
//! compilation": given a [`QueryFamily`] and a [`ScaleFactor`] it produces,
//! per template, (a) the optimizer-facing [`QueryPlan`] whose statistics
//! feed the parameter model, and (b) the physical [`StageDag`] that the
//! execution simulator schedules. Both are deterministic functions of the
//! template and the family's scale-factor semantics, so the "ground truth"
//! run-time curves are stable across the whole evaluation — for every
//! family.

use std::sync::Arc;

use ae_engine::plan::{OperatorKind, PlanNode, QueryPlan};
use ae_engine::stage::{Stage, StageDag, Task};
use serde::{Deserialize, Serialize};

use crate::family::{BuiltinFamily, QueryFamily};
use crate::templates::{QueryTemplate, ScaleFactor};

/// Bytes per scan partition (Spark's default file split size, 128 MB).
const GB_PER_PARTITION: f64 = 0.128;
/// Share of total work done in the scan stages.
const SCAN_WORK_SHARE: f64 = 0.45;
/// Upper bound on tasks per scan stage.
const MAX_SCAN_TASKS: usize = 500;
/// Upper bound on tasks per shuffle stage.
const MAX_SHUFFLE_TASKS: usize = 200;

/// One concrete query: template + plan + physical DAG at a scale factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryInstance {
    /// Query name (same as the template name).
    pub name: String,
    /// Registry key of the family the query belongs to (e.g. `"tpcds"`).
    pub family: String,
    /// The template this instance was generated from.
    pub template: QueryTemplate,
    /// Scale factor of the instance.
    pub scale_factor: ScaleFactor,
    /// Optimizer-facing logical plan.
    pub plan: QueryPlan,
    /// Physical stage DAG scheduled by the simulator.
    pub dag: StageDag,
}

/// Generates query instances for one family at a scale factor.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    family: Arc<dyn QueryFamily>,
    scale_factor: ScaleFactor,
}

impl WorkloadGenerator {
    /// Creates a generator for the historical TPC-DS-like suite at the given
    /// scale factor (the pre-registry default, kept for compatibility).
    pub fn new(scale_factor: ScaleFactor) -> Self {
        Self::builtin(BuiltinFamily::Tpcds, scale_factor)
    }

    /// Creates a generator for a builtin family.
    pub fn builtin(family: BuiltinFamily, scale_factor: ScaleFactor) -> Self {
        Self::for_family(family.family(), scale_factor)
    }

    /// Creates a generator for any registered family.
    pub fn for_family(family: Arc<dyn QueryFamily>, scale_factor: ScaleFactor) -> Self {
        Self {
            family,
            scale_factor,
        }
    }

    /// The family this generator materialises.
    pub fn family(&self) -> &dyn QueryFamily {
        self.family.as_ref()
    }

    /// The scale factor this generator materialises.
    pub fn scale_factor(&self) -> ScaleFactor {
        self.scale_factor
    }

    /// Generates the family's full suite, in canonical order.
    pub fn suite(&self) -> Vec<QueryInstance> {
        self.family
            .templates()
            .iter()
            .map(|t| self.instantiate(t))
            .collect()
    }

    /// Generates a single query by name, or `None` when the name is not part
    /// of the family — the serving path can receive arbitrary names, so
    /// lookup failures must be propagated, not papered over.
    pub fn try_instance(&self, name: &str) -> Option<QueryInstance> {
        self.family.template(name).map(|t| self.instantiate(&t))
    }

    /// Generates a single query by canonical name (e.g. `"q94"`).
    ///
    /// # Panics
    ///
    /// Panics when the name is not part of the family; use
    /// [`try_instance`](Self::try_instance) for request-supplied names.
    pub fn instance(&self, name: &str) -> QueryInstance {
        self.try_instance(name).unwrap_or_else(|| {
            panic!(
                "query '{name}' is not part of the '{}' family",
                self.family.name()
            )
        })
    }

    /// Materialises one template under the family's scale-factor semantics.
    pub fn instantiate(&self, template: &QueryTemplate) -> QueryInstance {
        let multiplier = self.family.scale_multiplier(self.scale_factor);
        QueryInstance {
            name: template.name.clone(),
            family: self.family.name().to_string(),
            template: template.clone(),
            scale_factor: self.scale_factor,
            plan: build_plan(template, multiplier),
            dag: build_dag(template, multiplier),
        }
    }
}

/// Builds the logical plan whose statistics match the template's operator
/// mix, at the given data-size multiplier.
fn build_plan(template: &QueryTemplate, mult: f64) -> QueryPlan {
    // Scans with per-source filters/projections, joined left-deep.
    let mut scans = Vec::with_capacity(template.num_inputs);
    for &gb_per_sf in &template.input_gb_per_sf {
        let bytes = gb_per_sf * mult * 1e9;
        let rows = gb_per_sf * mult * template.rows_per_gb;
        scans.push(PlanNode::leaf(OperatorKind::TableScan, rows, bytes));
    }

    let mut filters_left = template.num_filters;
    let mut projects_left = template.num_projects;

    // Each scan gets at most one filter and one project below the joins.
    let mut sources: Vec<PlanNode> = scans
        .into_iter()
        .map(|scan| {
            let mut node = scan;
            if filters_left > 0 {
                filters_left -= 1;
                let rows = node.estimated_rows * 0.4;
                node = PlanNode::internal(OperatorKind::Filter, rows, vec![node]);
            }
            if projects_left > 0 {
                projects_left -= 1;
                let rows = node.estimated_rows;
                node = PlanNode::internal(OperatorKind::Project, rows, vec![node]);
            }
            node
        })
        .collect();

    // Left-deep join tree over the sources, inserting exchanges.
    let mut current = sources.remove(0);
    let mut joins_used = 0usize;
    for other in sources {
        let rows = (current.estimated_rows + other.estimated_rows) * 0.3;
        let exchange_l = PlanNode::internal(
            OperatorKind::Exchange,
            current.estimated_rows,
            vec![current],
        );
        let exchange_r =
            PlanNode::internal(OperatorKind::Exchange, other.estimated_rows, vec![other]);
        current = PlanNode::internal(OperatorKind::Join, rows, vec![exchange_l, exchange_r]);
        joins_used += 1;
    }
    // Remaining joins are self-join-like unary compositions (semi-joins with
    // subqueries in real TPC-DS); keep them as Join over an Exchange.
    while joins_used < template.num_joins {
        let rows = current.estimated_rows * 0.6;
        let exchange = PlanNode::internal(
            OperatorKind::Exchange,
            current.estimated_rows,
            vec![current],
        );
        current = PlanNode::internal(OperatorKind::Join, rows, vec![exchange]);
        joins_used += 1;
    }

    // Remaining filters and projects sit above the join tree.
    for _ in 0..filters_left {
        let rows = current.estimated_rows * 0.7;
        current = PlanNode::internal(OperatorKind::Filter, rows, vec![current]);
    }
    for _ in 0..projects_left {
        let rows = current.estimated_rows;
        current = PlanNode::internal(OperatorKind::Project, rows, vec![current]);
    }

    // Subqueries, windows, aggregates, sorts, unions, limit.
    for _ in 0..template.num_subqueries {
        let rows = current.estimated_rows * 0.9;
        current = PlanNode::internal(OperatorKind::Subquery, rows, vec![current]);
    }
    for _ in 0..template.num_windows {
        let rows = current.estimated_rows;
        current = PlanNode::internal(OperatorKind::Window, rows, vec![current]);
    }
    for i in 0..template.num_aggregates {
        let rows = (current.estimated_rows * 0.05).max(100.0);
        let exchange = PlanNode::internal(
            OperatorKind::Exchange,
            current.estimated_rows,
            vec![current],
        );
        current = PlanNode::internal(OperatorKind::Aggregate, rows, vec![exchange]);
        if i == 0 && template.num_unions > 0 {
            // Unions appear as siblings of an aggregate branch in many
            // TPC-DS queries; model them as a union over the aggregate and a
            // small local relation.
            let mut children = vec![current];
            for _ in 0..template.num_unions {
                children.push(PlanNode::leaf(OperatorKind::LocalRelation, 1000.0, 0.0));
            }
            let rows: f64 = children.iter().map(|c| c.estimated_rows).sum();
            current = PlanNode::internal(OperatorKind::Union, rows, children);
        }
    }
    for _ in 0..template.num_sorts {
        let rows = current.estimated_rows;
        current = PlanNode::internal(OperatorKind::Sort, rows, vec![current]);
    }
    let rows = current.estimated_rows.min(100.0);
    current = PlanNode::internal(OperatorKind::Limit, rows, vec![current]);

    QueryPlan::new(template.name.clone(), current)
}

/// Builds the physical stage DAG: scan stages, a chain of shuffle stages,
/// and a narrow serial tail, at the given data-size multiplier.
fn build_dag(template: &QueryTemplate, mult: f64) -> StageDag {
    let total_work = template.total_work_secs_at(mult);
    let serial_work = total_work * template.serial_fraction;
    let scan_work = total_work * SCAN_WORK_SHARE;
    let shuffle_work = (total_work - serial_work - scan_work).max(total_work * 0.05);

    let total_gb: f64 = template.input_gb_per_sf.iter().sum::<f64>() * mult;
    let mut stages: Vec<Stage> = Vec::new();

    // Scan stages: one per input, tasks proportional to bytes.
    let mut scan_stage_ids = Vec::with_capacity(template.num_inputs);
    for &gb_per_sf in &template.input_gb_per_sf {
        let gb = gb_per_sf * mult;
        let tasks = ((gb / GB_PER_PARTITION).ceil() as usize).clamp(1, MAX_SCAN_TASKS);
        let stage_work = scan_work * (gb / total_gb.max(1e-9));
        let id = stages.len();
        stages.push(Stage {
            id,
            tasks: spread_work(stage_work, tasks, template.skew),
            parents: vec![],
        });
        scan_stage_ids.push(id);
    }

    // Shuffle stages: a chain, the first depending on all scans. Widths
    // shrink geometrically as data is filtered/aggregated away.
    let first_width = ((total_gb * 4.0).ceil() as usize).clamp(4, MAX_SHUFFLE_TASKS);
    let mut prev: Vec<usize> = scan_stage_ids.clone();
    let num_shuffles = template.num_shuffle_stages;
    // Geometric weights so earlier (wider) shuffle stages carry more work.
    let weight_sum: f64 = (0..num_shuffles).map(|i| 0.6f64.powi(i as i32)).sum();
    for i in 0..num_shuffles {
        let width = ((first_width as f64) * 0.55f64.powi(i as i32)).ceil() as usize;
        let width = width.clamp(1, MAX_SHUFFLE_TASKS);
        let stage_work = shuffle_work * 0.6f64.powi(i as i32) / weight_sum;
        let id = stages.len();
        stages.push(Stage {
            id,
            tasks: spread_work(stage_work, width, template.skew),
            parents: prev.clone(),
        });
        prev = vec![id];
    }

    // Serial tail: one or two tasks holding the inherently serial work.
    let tail_tasks = if serial_work > 30.0 { 2 } else { 1 };
    let id = stages.len();
    stages.push(Stage {
        id,
        tasks: spread_work(serial_work.max(0.5), tail_tasks, 1.0),
        parents: prev,
    });

    StageDag::new(stages).expect("generated DAG is structurally valid")
}

/// Spreads `work` core-seconds over `tasks` tasks, making the last task
/// `skew`× longer than the others (straggler) while preserving total work.
fn spread_work(work: f64, tasks: usize, skew: f64) -> Vec<Task> {
    let tasks = tasks.max(1);
    let skew = skew.max(1.0);
    // base * (tasks - 1) + base * skew = work
    let base = work / ((tasks - 1) as f64 + skew);
    let base = base.max(1e-3);
    let mut out = vec![Task::new(base); tasks];
    if let Some(last) = out.last_mut() {
        *last = Task::new((base * skew).max(1e-3));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::skew::SKEW_QUERY_COUNT;
    use crate::families::tpcds::TPCDS_QUERY_COUNT;
    use crate::families::tpch::TPCH_QUERY_COUNT;

    #[test]
    fn suite_generates_all_queries() {
        let suite = WorkloadGenerator::new(ScaleFactor::SF10).suite();
        assert_eq!(suite.len(), TPCDS_QUERY_COUNT);
        assert!(suite.iter().all(|q| q.dag.num_tasks() > 0));
        assert!(suite.iter().all(|q| q.family == "tpcds"));
    }

    #[test]
    fn every_builtin_family_generates_its_suite() {
        for (id, expected) in [
            (BuiltinFamily::Tpcds, TPCDS_QUERY_COUNT),
            (BuiltinFamily::Tpch, TPCH_QUERY_COUNT),
            (BuiltinFamily::Skew, SKEW_QUERY_COUNT),
        ] {
            let suite = WorkloadGenerator::builtin(id, ScaleFactor::SF10).suite();
            assert_eq!(suite.len(), expected, "{id}");
            assert!(suite.iter().all(|q| q.family == id.key()));
            assert!(suite.iter().all(|q| q.dag.num_tasks() > 0));
            assert!(suite.iter().all(|q| q.plan.stats().total_input_bytes > 0.0));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let generator = WorkloadGenerator::new(ScaleFactor::SF100);
        let a = generator.instance("q94");
        let b = generator.instance("q94");
        assert_eq!(a.dag.total_work_secs(), b.dag.total_work_secs());
        assert_eq!(a.plan.stats(), b.plan.stats());
    }

    #[test]
    fn try_instance_propagates_unknown_names() {
        let generator = WorkloadGenerator::new(ScaleFactor::SF10);
        assert!(generator.try_instance("q94").is_some());
        assert!(generator.try_instance("h1").is_none());
        assert!(generator.try_instance("not-a-query").is_none());
        let tpch = WorkloadGenerator::builtin(BuiltinFamily::Tpch, ScaleFactor::SF10);
        assert!(tpch.try_instance("h1").is_some());
        assert!(tpch.try_instance("q94").is_none());
    }

    #[test]
    #[should_panic(expected = "not part of the 'tpcds' family")]
    fn instance_panics_on_unknown_names() {
        WorkloadGenerator::new(ScaleFactor::SF10).instance("nope");
    }

    #[test]
    fn plan_stats_reflect_template_structure() {
        let generator = WorkloadGenerator::new(ScaleFactor::SF100);
        let q = generator.instance("q23");
        let stats = q.plan.stats();
        assert_eq!(stats.num_input_sources, q.template.num_inputs);
        assert_eq!(
            stats.count_of(OperatorKind::Join),
            q.template.num_joins.max(q.template.num_inputs - 1)
        );
        assert_eq!(
            stats.count_of(OperatorKind::Aggregate),
            q.template.num_aggregates
        );
        assert!(stats.max_depth >= 3);
        assert!(stats.total_input_bytes > 0.0);
        assert!(stats.total_rows_processed > 0.0);
    }

    #[test]
    fn input_bytes_scale_linearly_with_sf() {
        let q10 = WorkloadGenerator::new(ScaleFactor::SF10).instance("q7");
        let q100 = WorkloadGenerator::new(ScaleFactor::SF100).instance("q7");
        let b10 = q10.plan.stats().total_input_bytes;
        let b100 = q100.plan.stats().total_input_bytes;
        assert!((b100 / b10 - 10.0).abs() < 0.1, "ratio {}", b100 / b10);
    }

    #[test]
    fn dag_width_grows_with_scale_factor() {
        let q10 = WorkloadGenerator::new(ScaleFactor::SF10).instance("q94");
        let q100 = WorkloadGenerator::new(ScaleFactor::SF100).instance("q94");
        assert!(q100.dag.max_stage_width() > q10.dag.max_stage_width());
    }

    #[test]
    fn dag_work_matches_template_total() {
        let generator = WorkloadGenerator::new(ScaleFactor::SF100);
        for name in ["q1", "q42", "q94", "q14b"] {
            let q = generator.instance(name);
            let expected = q.template.total_work_secs(ScaleFactor::SF100);
            let actual = q.dag.total_work_secs();
            let rel = (actual - expected).abs() / expected;
            assert!(
                rel < 0.15,
                "{name}: dag work {actual} vs template {expected}"
            );
        }
    }

    #[test]
    fn dag_has_serial_tail_stage() {
        let q = WorkloadGenerator::new(ScaleFactor::SF100).instance("q94");
        let last = q.dag.stages().last().unwrap();
        assert!(last.tasks.len() <= 2);
        assert!(!last.parents.is_empty());
    }

    #[test]
    fn spread_work_preserves_total_and_skew() {
        let tasks = spread_work(100.0, 10, 2.0);
        let total: f64 = tasks.iter().map(|t| t.work_secs).sum();
        assert!((total - 100.0).abs() < 1e-9);
        let max = tasks.iter().map(|t| t.work_secs).fold(0.0, f64::max);
        let min = tasks
            .iter()
            .map(|t| t.work_secs)
            .fold(f64::INFINITY, f64::min);
        assert!((max / min - 2.0).abs() < 1e-9);
    }

    #[test]
    fn spread_work_single_task() {
        let tasks = spread_work(5.0, 1, 3.0);
        assert_eq!(tasks.len(), 1);
        assert!(tasks[0].work_secs > 0.0);
    }

    #[test]
    fn suite_work_range_spans_order_of_magnitude() {
        let suite = WorkloadGenerator::new(ScaleFactor::SF100).suite();
        let works: Vec<f64> = suite.iter().map(|q| q.dag.total_work_secs()).collect();
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = works.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 10.0);
    }

    /// The skew family's bimodal design must survive materialisation: its
    /// DAGs include both serial-tail-dominated and wide parallel queries.
    #[test]
    fn skew_family_dags_span_extreme_shapes() {
        let suite = WorkloadGenerator::builtin(BuiltinFamily::Skew, ScaleFactor::SF100).suite();
        let serial_share = |q: &QueryInstance| {
            let tail = q.dag.stages().last().unwrap().total_work_secs();
            tail / q.dag.total_work_secs()
        };
        assert!(suite.iter().any(|q| serial_share(q) > 0.25));
        assert!(suite.iter().any(|q| serial_share(q) < 0.03));
        let max_width = suite.iter().map(|q| q.dag.max_stage_width()).max().unwrap();
        assert!(max_width >= 100, "widest skew scan only {max_width} tasks");
    }
}
