//! Request-arrival generators for the serving path.
//!
//! The offline evaluation replays the suite once, query after query. A
//! serving benchmark instead needs a *request process*: which query arrives
//! when, at what rate, from how many clients. Two standard load shapes are
//! provided (both fully deterministic given a seed):
//!
//! * **Open loop** ([`OpenLoop`]) — requests arrive on a Poisson process at
//!   a target rate regardless of how fast the system responds (exponential
//!   inter-arrival times), the shape used by PixelsDB-style per-query
//!   service-level evaluations. Queues grow when the system falls behind —
//!   exactly the behaviour a latency benchmark must expose.
//! * **Closed loop** ([`ClosedLoop`]) — a fixed number of clients each
//!   submit their next request as soon as the previous one completes,
//!   measuring sustained throughput under full backpressure.
//!
//! Query indices refer to positions in whatever suite the caller replays —
//! any family's [`crate::WorkloadGenerator::suite`], or a mixed-family
//! concatenation built with [`crate::family::mixed_suite`] — so a single
//! arrival schedule can drive single-family and cross-family request
//! streams alike.
//!
//! For QoS benchmarks, [`OpenLoop::schedule_tagged`] additionally tags
//! every arrival with a *service-level index* and a *tenant index* drawn
//! from weighted categorical mixes ([`WeightedMix`]). The tags are plain
//! indices — the serving tier maps them onto its own service-level and
//! tenant types — and draw from seed streams independent of the
//! inter-arrival and query-choice streams, so tagging a schedule never
//! changes *when* requests arrive or *which* queries they score.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{derive_stream_seed, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled request of an open-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Offset from the start of the run at which the request is issued.
    pub at: Duration,
    /// Index of the query to score (into the replayed suite).
    pub query_index: usize,
}

/// An open-loop (Poisson) arrival process at a target request rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoop {
    /// Target arrival rate in requests per second (must be positive).
    pub rate_qps: f64,
    /// Total number of requests to schedule.
    pub requests: usize,
    /// Seed for inter-arrival and query-choice randomness.
    pub seed: u64,
}

impl OpenLoop {
    /// Creates an open-loop process.
    pub fn new(rate_qps: f64, requests: usize, seed: u64) -> Self {
        Self {
            rate_qps,
            requests,
            seed,
        }
    }

    /// Materialises the full arrival schedule over a suite of
    /// `num_queries` queries: exponential inter-arrival gaps at
    /// `rate_qps`, uniformly random query choice. Arrival times are
    /// strictly non-decreasing.
    ///
    /// Inter-arrival and query-choice randomness draw from independent
    /// seed streams, so changing the request count never reshuffles which
    /// queries earlier requests map to.
    pub fn schedule(&self, num_queries: usize) -> Vec<Arrival> {
        assert!(self.rate_qps > 0.0, "open-loop rate must be positive");
        assert!(num_queries > 0, "cannot schedule over an empty suite");
        let mut gaps = StdRng::seed_from_u64(derive_stream_seed(self.seed, 0));
        let mut picks = StdRng::seed_from_u64(derive_stream_seed(self.seed, 1));
        let mut at = 0.0f64;
        (0..self.requests)
            .map(|_| {
                // Inverse-CDF exponential sample; 1 - u keeps the argument
                // of ln strictly positive (u is in [0, 1)).
                let u: f64 = gaps.gen();
                at += -(1.0 - u).ln() / self.rate_qps;
                Arrival {
                    at: Duration::from_secs_f64(at),
                    query_index: picks.gen_range(0..num_queries),
                }
            })
            .collect()
    }

    /// [`schedule`](Self::schedule) plus per-request service-level and
    /// tenant tags drawn from weighted mixes.
    ///
    /// The `(at, query_index)` pairs are **identical** to the untagged
    /// schedule for the same seed: level and tenant draws use their own
    /// seed streams, so changing a mix (or ignoring the tags) never
    /// reshuffles arrival times or query choice — the QoS benchmark and
    /// the plain serving benchmark replay the same base process.
    pub fn schedule_tagged(
        &self,
        num_queries: usize,
        levels: &WeightedMix,
        tenants: &WeightedMix,
    ) -> Vec<TaggedArrival> {
        let base = self.schedule(num_queries);
        let mut level_draws = StdRng::seed_from_u64(derive_stream_seed(self.seed, 2));
        let mut tenant_draws = StdRng::seed_from_u64(derive_stream_seed(self.seed, 3));
        base.into_iter()
            .map(|arrival| TaggedArrival {
                at: arrival.at,
                query_index: arrival.query_index,
                level_index: levels.pick(level_draws.gen()),
                tenant_index: tenants.pick(tenant_draws.gen()),
            })
            .collect()
    }
}

/// A weighted categorical distribution over `len` classes (service levels,
/// tenants, …), sampled deterministically from a seed stream.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedMix {
    /// Non-negative per-class weights; at least one must be positive.
    weights: Vec<f64>,
}

impl WeightedMix {
    /// Builds a mix from per-class weights. Panics when no weight is
    /// positive, or any weight is negative or non-finite.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "mix weights must be finite and non-negative"
        );
        assert!(
            weights.iter().any(|&w| w > 0.0),
            "a mix needs at least one positive weight"
        );
        Self { weights }
    }

    /// A uniform mix over `classes` classes.
    pub fn uniform(classes: usize) -> Self {
        Self::new(vec![1.0; classes.max(1)])
    }

    /// A degenerate mix: every draw returns `class` (out of `classes`).
    pub fn single(class: usize, classes: usize) -> Self {
        let mut weights = vec![0.0; classes.max(class + 1)];
        weights[class] = 1.0;
        Self { weights }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.weights.len()
    }

    /// Maps a uniform draw `u ∈ [0, 1)` to a class index by cumulative
    /// weight.
    pub fn pick(&self, u: f64) -> usize {
        let total: f64 = self.weights.iter().sum();
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if u * total < acc {
                return i;
            }
        }
        // Rounding at u ≈ 1: the last positively-weighted class.
        self.weights
            .iter()
            .rposition(|&w| w > 0.0)
            .unwrap_or(self.weights.len() - 1)
    }
}

/// One scheduled request of a QoS (tagged) open-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TaggedArrival {
    /// Offset from the start of the run at which the request is issued.
    pub at: Duration,
    /// Index of the query to score (into the replayed suite).
    pub query_index: usize,
    /// Index into the service-level mix the schedule was tagged with.
    pub level_index: usize,
    /// Index into the tenant mix the schedule was tagged with.
    pub tenant_index: usize,
}

/// A closed-loop load shape: `clients` concurrent clients, each issuing
/// `requests_per_client` back-to-back requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoop {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Seed for the per-client query sequences.
    pub seed: u64,
}

impl ClosedLoop {
    /// Creates a closed-loop shape.
    pub fn new(clients: usize, requests_per_client: usize, seed: u64) -> Self {
        Self {
            clients,
            requests_per_client,
            seed,
        }
    }

    /// The query sequence of each client: uniformly random indices into a
    /// suite of `num_queries`, one independent seed stream per client so
    /// sequences do not depend on client scheduling or count.
    pub fn sequences(&self, num_queries: usize) -> Vec<Vec<usize>> {
        assert!(num_queries > 0, "cannot schedule over an empty suite");
        (0..self.clients)
            .map(|client| {
                let mut rng = StdRng::seed_from_u64(derive_stream_seed(self.seed, client as u64));
                (0..self.requests_per_client)
                    .map(|_| rng.gen_range(0..num_queries))
                    .collect()
            })
            .collect()
    }
}

/// Deterministic per-`(query, repeat)` fault-plan seeds for sweeps that
/// inject faults (`ae-engine`'s `FaultPlan`) across a suite.
///
/// Each cell of a `queries × repeats` grid gets its own independent seed
/// stream derived from one base seed, so fault draws never depend on sweep
/// order, repeat count, or which queries are included — the same
/// properties the arrival processes above guarantee for their streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSeeds {
    /// Base seed all per-cell streams derive from.
    pub base: u64,
}

impl FaultSeeds {
    /// Creates the seed family.
    pub fn new(base: u64) -> Self {
        Self { base }
    }

    /// The fault-plan seed of one `(query_index, repeat)` cell. Streams
    /// are disjoint for any suite of up to 2^32 queries and 2^32 repeats.
    pub fn seed_for(&self, query_index: usize, repeat: usize) -> u64 {
        let stream = ((query_index as u64) << 32) | (repeat as u64 & 0xFFFF_FFFF);
        derive_stream_seed(self.base, stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_schedule_is_deterministic_and_ordered() {
        let process = OpenLoop::new(500.0, 200, 7);
        let a = process.schedule(103);
        let b = process.schedule(103);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for pair in a.windows(2) {
            assert!(pair[0].at <= pair[1].at, "arrivals must be ordered");
        }
        assert!(a.iter().all(|arr| arr.query_index < 103));
    }

    #[test]
    fn open_loop_rate_is_roughly_respected() {
        let process = OpenLoop::new(1000.0, 5000, 42);
        let schedule = process.schedule(10);
        let span = schedule.last().unwrap().at.as_secs_f64();
        let empirical_rate = schedule.len() as f64 / span;
        assert!(
            (empirical_rate / 1000.0 - 1.0).abs() < 0.1,
            "empirical rate {empirical_rate} too far from 1000"
        );
    }

    #[test]
    fn open_loop_prefix_is_stable_across_request_counts() {
        let short = OpenLoop::new(100.0, 50, 3).schedule(20);
        let long = OpenLoop::new(100.0, 500, 3).schedule(20);
        assert_eq!(&long[..50], &short[..]);
    }

    #[test]
    fn closed_loop_sequences_are_per_client_stable() {
        let shape = ClosedLoop::new(4, 25, 11);
        let seqs = shape.sequences(103);
        assert_eq!(seqs.len(), 4);
        assert!(seqs.iter().all(|s| s.len() == 25));
        assert!(seqs.iter().flatten().all(|&i| i < 103));
        // Client 2's sequence does not depend on how many clients run.
        let fewer = ClosedLoop::new(3, 25, 11).sequences(103);
        assert_eq!(seqs[2], fewer[2]);
        // Distinct clients draw distinct streams.
        assert_ne!(seqs[0], seqs[1]);
    }

    #[test]
    #[should_panic(expected = "empty suite")]
    fn empty_suite_is_rejected() {
        OpenLoop::new(10.0, 1, 0).schedule(0);
    }

    #[test]
    fn weighted_mix_picks_by_cumulative_weight() {
        let mix = WeightedMix::new(vec![1.0, 3.0, 0.0, 4.0]);
        assert_eq!(mix.classes(), 4);
        assert_eq!(mix.pick(0.0), 0);
        assert_eq!(mix.pick(0.124), 0);
        assert_eq!(mix.pick(0.126), 1);
        assert_eq!(mix.pick(0.49), 1);
        assert_eq!(mix.pick(0.51), 3); // zero-weight class 2 is never picked
        assert_eq!(mix.pick(0.999999), 3);
        let single = WeightedMix::single(1, 3);
        for u in [0.0, 0.3, 0.99] {
            assert_eq!(single.pick(u), 1);
        }
        assert_eq!(WeightedMix::uniform(2).pick(0.6), 1);
    }

    #[test]
    #[should_panic(expected = "positive weight")]
    fn all_zero_mix_is_rejected() {
        WeightedMix::new(vec![0.0, 0.0]);
    }

    #[test]
    fn fault_seeds_are_deterministic_and_disjoint() {
        let seeds = FaultSeeds::new(0xFA);
        assert_eq!(seeds.seed_for(3, 1), seeds.seed_for(3, 1));
        let mut all = std::collections::HashSet::new();
        for q in 0..8 {
            for r in 0..4 {
                assert!(all.insert(seeds.seed_for(q, r)), "cell ({q},{r}) collides");
            }
        }
        assert_ne!(seeds.seed_for(0, 1), FaultSeeds::new(0xFB).seed_for(0, 1));
    }

    #[test]
    fn tagged_schedule_preserves_the_base_process() {
        let process = OpenLoop::new(800.0, 300, 13);
        let base = process.schedule(50);
        let tagged = process.schedule_tagged(
            50,
            &WeightedMix::new(vec![1.0, 4.0, 5.0]),
            &WeightedMix::uniform(4),
        );
        assert_eq!(tagged.len(), base.len());
        for (t, b) in tagged.iter().zip(&base) {
            assert_eq!(t.at, b.at, "tagging must not move arrivals");
            assert_eq!(t.query_index, b.query_index);
            assert!(t.level_index < 3);
            assert!(t.tenant_index < 4);
        }
        // A different mix re-tags but still does not move the base process.
        let retagged =
            process.schedule_tagged(50, &WeightedMix::single(0, 3), &WeightedMix::uniform(4));
        assert!(retagged.iter().all(|t| t.level_index == 0));
        for (t, b) in retagged.iter().zip(&base) {
            assert_eq!(t.at, b.at);
            assert_eq!(t.query_index, b.query_index);
        }
        // Tagging is deterministic and all classes of a mixed mix show up.
        let again = process.schedule_tagged(
            50,
            &WeightedMix::new(vec![1.0, 4.0, 5.0]),
            &WeightedMix::uniform(4),
        );
        assert_eq!(tagged, again);
        for class in 0..3 {
            assert!(tagged.iter().any(|t| t.level_index == class));
        }
    }
}
