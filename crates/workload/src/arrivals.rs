//! Request-arrival generators for the serving path.
//!
//! The offline evaluation replays the suite once, query after query. A
//! serving benchmark instead needs a *request process*: which query arrives
//! when, at what rate, from how many clients. Two standard load shapes are
//! provided (both fully deterministic given a seed):
//!
//! * **Open loop** ([`OpenLoop`]) — requests arrive on a Poisson process at
//!   a target rate regardless of how fast the system responds (exponential
//!   inter-arrival times), the shape used by PixelsDB-style per-query
//!   service-level evaluations. Queues grow when the system falls behind —
//!   exactly the behaviour a latency benchmark must expose.
//! * **Closed loop** ([`ClosedLoop`]) — a fixed number of clients each
//!   submit their next request as soon as the previous one completes,
//!   measuring sustained throughput under full backpressure.
//!
//! Query indices refer to positions in whatever suite the caller replays —
//! any family's [`crate::WorkloadGenerator::suite`], or a mixed-family
//! concatenation built with [`crate::family::mixed_suite`] — so a single
//! arrival schedule can drive single-family and cross-family request
//! streams alike.

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{derive_stream_seed, Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One scheduled request of an open-loop run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Arrival {
    /// Offset from the start of the run at which the request is issued.
    pub at: Duration,
    /// Index of the query to score (into the replayed suite).
    pub query_index: usize,
}

/// An open-loop (Poisson) arrival process at a target request rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpenLoop {
    /// Target arrival rate in requests per second (must be positive).
    pub rate_qps: f64,
    /// Total number of requests to schedule.
    pub requests: usize,
    /// Seed for inter-arrival and query-choice randomness.
    pub seed: u64,
}

impl OpenLoop {
    /// Creates an open-loop process.
    pub fn new(rate_qps: f64, requests: usize, seed: u64) -> Self {
        Self {
            rate_qps,
            requests,
            seed,
        }
    }

    /// Materialises the full arrival schedule over a suite of
    /// `num_queries` queries: exponential inter-arrival gaps at
    /// `rate_qps`, uniformly random query choice. Arrival times are
    /// strictly non-decreasing.
    ///
    /// Inter-arrival and query-choice randomness draw from independent
    /// seed streams, so changing the request count never reshuffles which
    /// queries earlier requests map to.
    pub fn schedule(&self, num_queries: usize) -> Vec<Arrival> {
        assert!(self.rate_qps > 0.0, "open-loop rate must be positive");
        assert!(num_queries > 0, "cannot schedule over an empty suite");
        let mut gaps = StdRng::seed_from_u64(derive_stream_seed(self.seed, 0));
        let mut picks = StdRng::seed_from_u64(derive_stream_seed(self.seed, 1));
        let mut at = 0.0f64;
        (0..self.requests)
            .map(|_| {
                // Inverse-CDF exponential sample; 1 - u keeps the argument
                // of ln strictly positive (u is in [0, 1)).
                let u: f64 = gaps.gen();
                at += -(1.0 - u).ln() / self.rate_qps;
                Arrival {
                    at: Duration::from_secs_f64(at),
                    query_index: picks.gen_range(0..num_queries),
                }
            })
            .collect()
    }
}

/// A closed-loop load shape: `clients` concurrent clients, each issuing
/// `requests_per_client` back-to-back requests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClosedLoop {
    /// Number of concurrent clients.
    pub clients: usize,
    /// Requests each client issues.
    pub requests_per_client: usize,
    /// Seed for the per-client query sequences.
    pub seed: u64,
}

impl ClosedLoop {
    /// Creates a closed-loop shape.
    pub fn new(clients: usize, requests_per_client: usize, seed: u64) -> Self {
        Self {
            clients,
            requests_per_client,
            seed,
        }
    }

    /// The query sequence of each client: uniformly random indices into a
    /// suite of `num_queries`, one independent seed stream per client so
    /// sequences do not depend on client scheduling or count.
    pub fn sequences(&self, num_queries: usize) -> Vec<Vec<usize>> {
        assert!(num_queries > 0, "cannot schedule over an empty suite");
        (0..self.clients)
            .map(|client| {
                let mut rng = StdRng::seed_from_u64(derive_stream_seed(self.seed, client as u64));
                (0..self.requests_per_client)
                    .map(|_| rng.gen_range(0..num_queries))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_loop_schedule_is_deterministic_and_ordered() {
        let process = OpenLoop::new(500.0, 200, 7);
        let a = process.schedule(103);
        let b = process.schedule(103);
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        for pair in a.windows(2) {
            assert!(pair[0].at <= pair[1].at, "arrivals must be ordered");
        }
        assert!(a.iter().all(|arr| arr.query_index < 103));
    }

    #[test]
    fn open_loop_rate_is_roughly_respected() {
        let process = OpenLoop::new(1000.0, 5000, 42);
        let schedule = process.schedule(10);
        let span = schedule.last().unwrap().at.as_secs_f64();
        let empirical_rate = schedule.len() as f64 / span;
        assert!(
            (empirical_rate / 1000.0 - 1.0).abs() < 0.1,
            "empirical rate {empirical_rate} too far from 1000"
        );
    }

    #[test]
    fn open_loop_prefix_is_stable_across_request_counts() {
        let short = OpenLoop::new(100.0, 50, 3).schedule(20);
        let long = OpenLoop::new(100.0, 500, 3).schedule(20);
        assert_eq!(&long[..50], &short[..]);
    }

    #[test]
    fn closed_loop_sequences_are_per_client_stable() {
        let shape = ClosedLoop::new(4, 25, 11);
        let seqs = shape.sequences(103);
        assert_eq!(seqs.len(), 4);
        assert!(seqs.iter().all(|s| s.len() == 25));
        assert!(seqs.iter().flatten().all(|&i| i < 103));
        // Client 2's sequence does not depend on how many clients run.
        let fewer = ClosedLoop::new(3, 25, 11).sequences(103);
        assert_eq!(seqs[2], fewer[2]);
        // Distinct clients draw distinct streams.
        assert_ne!(seqs[0], seqs[1]);
    }

    #[test]
    #[should_panic(expected = "empty suite")]
    fn empty_suite_is_rejected() {
        OpenLoop::new(10.0, 1, 0).schedule(0);
    }
}
