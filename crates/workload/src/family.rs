//! First-class workload families and the family registry.
//!
//! A [`QueryFamily`] is a *descriptor* of one benchmark suite: a stable
//! registry key, a canonical set of query names, a deterministic
//! name → [`QueryTemplate`] mapping (each family draws from its own salted
//! seed stream), and the family's scale-factor semantics (how a
//! [`ScaleFactor`] maps to a data-size multiplier). Everything downstream —
//! the generator, training-data collection, the CV harness, the serving
//! benches — consumes families through this trait, so the TPC-DS-like suite
//! is one implementation among several rather than a hardcoded default.
//!
//! Three families ship built in (see [`BuiltinFamily`]):
//!
//! * `tpcds` — the historical 103-query TPC-DS-like suite, bit-identical to
//!   the pre-registry generator (pinned by `tests/family_regression.rs`),
//! * `tpch` — 22 scan/join-heavy queries with shallower DAGs,
//! * `skew` — a skew-adversarial suite with heavy-tailed input sizes,
//!   straggler stages, and elbow points pushed to the extremes of the
//!   1–48 executor range.
//!
//! Custom families can be added at runtime through [`FamilyRegistry`];
//! [`mixed_suite`] concatenates several families into one request-stream
//! suite for the serving path.

use std::fmt;
use std::sync::Arc;

use crate::families::skew::SkewFamily;
use crate::families::tpcds::TpcdsFamily;
use crate::families::tpch::TpchFamily;
use crate::generator::{QueryInstance, WorkloadGenerator};
use crate::templates::{QueryTemplate, ScaleFactor};
use serde::{Deserialize, Serialize};

/// A workload family: a named, deterministic suite of query templates.
///
/// Implementations must be pure — the same name always maps to the same
/// template, independent of call order, process, or thread count.
pub trait QueryFamily: fmt::Debug + Send + Sync {
    /// Stable registry key, e.g. `"tpcds"`. Lower-case, no whitespace.
    fn name(&self) -> &str;

    /// One-line human description of the suite's character.
    fn description(&self) -> &str;

    /// The canonical query names of the suite, in suite order.
    fn query_names(&self) -> Vec<String>;

    /// The template for one query name, or `None` when the name is not part
    /// of this family. Callers holding arbitrary (e.g. request-supplied)
    /// names must handle the `None` case rather than assume membership.
    fn template(&self, query: &str) -> Option<QueryTemplate>;

    /// All templates of the suite, in suite order.
    fn templates(&self) -> Vec<QueryTemplate> {
        self.query_names()
            .iter()
            .map(|name| {
                self.template(name)
                    .expect("canonical query name has a template")
            })
            .collect()
    }

    /// The family's scale-factor semantics: the data-size multiplier
    /// (relative to SF=1) that `sf` denotes. Defaults to the linear TPC
    /// convention; families whose data grows non-linearly override this.
    fn scale_multiplier(&self, sf: ScaleFactor) -> f64 {
        sf.multiplier()
    }
}

/// The three families shipped with the crate, as a lightweight `Copy` id
/// usable inside configuration structs.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum BuiltinFamily {
    /// The historical 103-query TPC-DS-like suite.
    #[default]
    Tpcds,
    /// The 22-query scan/join-heavy TPC-H-like suite.
    Tpch,
    /// The skew-adversarial suite (heavy tails, stragglers, extreme elbows).
    Skew,
}

impl BuiltinFamily {
    /// All builtin families, in canonical order.
    pub const ALL: [BuiltinFamily; 3] = [
        BuiltinFamily::Tpcds,
        BuiltinFamily::Tpch,
        BuiltinFamily::Skew,
    ];

    /// The registry key of the family.
    pub fn key(self) -> &'static str {
        match self {
            BuiltinFamily::Tpcds => "tpcds",
            BuiltinFamily::Tpch => "tpch",
            BuiltinFamily::Skew => "skew",
        }
    }

    /// Parses a registry key back into the id.
    pub fn parse(key: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|f| f.key() == key)
    }

    /// The family descriptor behind the id.
    pub fn family(self) -> Arc<dyn QueryFamily> {
        match self {
            BuiltinFamily::Tpcds => Arc::new(TpcdsFamily),
            BuiltinFamily::Tpch => Arc::new(TpchFamily),
            BuiltinFamily::Skew => Arc::new(SkewFamily),
        }
    }
}

impl fmt::Display for BuiltinFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.key())
    }
}

/// Error raised when registering a family under an already-taken key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DuplicateFamily(pub String);

impl fmt::Display for DuplicateFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a family named '{}' is already registered", self.0)
    }
}

impl std::error::Error for DuplicateFamily {}

/// A name-keyed collection of workload families.
///
/// The registry preserves registration order (suite enumeration is
/// deterministic) and rejects duplicate keys.
#[derive(Debug, Clone, Default)]
pub struct FamilyRegistry {
    families: Vec<Arc<dyn QueryFamily>>,
}

impl FamilyRegistry {
    /// An empty registry.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry pre-populated with the builtin families, in
    /// [`BuiltinFamily::ALL`] order.
    pub fn builtin() -> Self {
        let mut registry = Self::empty();
        for id in BuiltinFamily::ALL {
            registry
                .register(id.family())
                .expect("builtin keys are distinct");
        }
        registry
    }

    /// Registers a family; fails when its key is already taken.
    pub fn register(&mut self, family: Arc<dyn QueryFamily>) -> Result<(), DuplicateFamily> {
        if self.get(family.name()).is_some() {
            return Err(DuplicateFamily(family.name().to_string()));
        }
        self.families.push(family);
        Ok(())
    }

    /// Looks a family up by key.
    pub fn get(&self, name: &str) -> Option<Arc<dyn QueryFamily>> {
        self.families.iter().find(|f| f.name() == name).cloned()
    }

    /// All registered family keys, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.families.iter().map(|f| f.name()).collect()
    }

    /// All registered families, in registration order.
    pub fn families(&self) -> &[Arc<dyn QueryFamily>] {
        &self.families
    }
}

/// Concatenates the suites of several families (in the given order) into one
/// mixed suite at a common scale factor — the shape the serving benches
/// replay when a request stream spans families. Query indices produced by
/// [`crate::arrivals`] then address the combined suite.
pub fn mixed_suite(families: &[Arc<dyn QueryFamily>], sf: ScaleFactor) -> Vec<QueryInstance> {
    families
        .iter()
        .flat_map(|family| WorkloadGenerator::for_family(Arc::clone(family), sf).suite())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_registry_holds_all_three_families() {
        let registry = FamilyRegistry::builtin();
        assert_eq!(registry.names(), vec!["tpcds", "tpch", "skew"]);
        for id in BuiltinFamily::ALL {
            let family = registry.get(id.key()).expect("registered");
            assert_eq!(family.name(), id.key());
            assert!(!family.query_names().is_empty());
        }
        assert!(registry.get("nope").is_none());
    }

    #[test]
    fn builtin_parse_roundtrips() {
        for id in BuiltinFamily::ALL {
            assert_eq!(BuiltinFamily::parse(id.key()), Some(id));
            assert_eq!(id.to_string(), id.key());
        }
        assert_eq!(BuiltinFamily::parse("tpcc"), None);
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut registry = FamilyRegistry::builtin();
        let err = registry.register(BuiltinFamily::Tpch.family()).unwrap_err();
        assert_eq!(err, DuplicateFamily("tpch".to_string()));
        assert!(err.to_string().contains("tpch"));
    }

    #[test]
    fn templates_default_impl_covers_every_canonical_name() {
        for id in BuiltinFamily::ALL {
            let family = id.family();
            let names = family.query_names();
            let templates = family.templates();
            assert_eq!(names.len(), templates.len());
            for (name, template) in names.iter().zip(&templates) {
                assert_eq!(name, &template.name);
            }
        }
    }

    #[test]
    fn mixed_suite_concatenates_in_order() {
        let registry = FamilyRegistry::builtin();
        let suite = mixed_suite(registry.families(), ScaleFactor::SF10);
        let expected_len: usize = BuiltinFamily::ALL
            .iter()
            .map(|id| id.family().query_names().len())
            .sum();
        assert_eq!(suite.len(), expected_len);
        assert_eq!(suite[0].family, "tpcds");
        assert_eq!(suite.last().unwrap().family, "skew");
    }

    /// A custom family with non-linear scale-factor semantics flows through
    /// the registry and the generator unchanged — the registry is open.
    #[test]
    fn custom_family_with_custom_scale_semantics() {
        #[derive(Debug)]
        struct Quadratic;
        impl QueryFamily for Quadratic {
            fn name(&self) -> &str {
                "quadratic"
            }
            fn description(&self) -> &str {
                "test family whose data grows quadratically in SF"
            }
            fn query_names(&self) -> Vec<String> {
                vec!["only".to_string()]
            }
            fn template(&self, query: &str) -> Option<QueryTemplate> {
                (query == "only").then(|| {
                    let mut t = crate::families::tpcds::template_for("q1").unwrap();
                    t.name = "only".to_string();
                    t
                })
            }
            fn scale_multiplier(&self, sf: ScaleFactor) -> f64 {
                sf.multiplier() * sf.multiplier()
            }
        }

        let mut registry = FamilyRegistry::builtin();
        registry.register(Arc::new(Quadratic)).unwrap();
        let family = registry.get("quadratic").unwrap();
        let g2 = WorkloadGenerator::for_family(Arc::clone(&family), ScaleFactor(2));
        let g4 = WorkloadGenerator::for_family(family, ScaleFactor(4));
        let b2 = g2.instance("only").plan.stats().total_input_bytes;
        let b4 = g4.instance("only").plan.stats().total_input_bytes;
        // Quadratic semantics: doubling SF quadruples the bytes.
        assert!((b4 / b2 - 4.0).abs() < 1e-9, "ratio {}", b4 / b2);
    }
}
