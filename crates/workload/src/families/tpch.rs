//! The 22 synthetic TPC-H-like query templates.
//!
//! TPC-H is the scan/join-heavy counterpoint to TPC-DS: a handful of large
//! fact-like tables (lineitem, orders) joined through shallow, wide plans
//! with one or two aggregations on top, almost no windows or subqueries, and
//! plenty of parallel-friendly work. The family exists so the
//! cross-family generalization harness can ask whether a parameter model
//! trained on deep aggregation-heavy plans transfers to shallow scan-heavy
//! ones (it shares no template with the TPC-DS-like suite and draws from a
//! family-salted seed stream).
//!
//! Qualitative targets: fewer shuffle stages (1–5 vs up to 8), larger
//! per-query input volumes, smaller serial fractions, modest skew — so
//! elbows land a little later than TPC-DS's "mostly 8" but inside the same
//! 1–48 range.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::family::QueryFamily;
use crate::templates::{seed_from_name, QueryTemplate};

/// Number of queries in the TPC-H-like suite.
pub const TPCH_QUERY_COUNT: usize = 22;

/// The TPC-H-like family descriptor: shallow scan/join-heavy plans.
#[derive(Debug, Clone, Copy, Default)]
pub struct TpchFamily;

impl QueryFamily for TpchFamily {
    fn name(&self) -> &str {
        "tpch"
    }

    fn description(&self) -> &str {
        "TPC-H-like: 22 shallow scan/join-heavy queries over large fact tables"
    }

    fn query_names(&self) -> Vec<String> {
        tpch_query_names()
    }

    fn template(&self, query: &str) -> Option<QueryTemplate> {
        template_for(query)
    }
}

/// The canonical 22 query names: h1..h22.
pub fn tpch_query_names() -> Vec<String> {
    (1..=TPCH_QUERY_COUNT).map(|i| format!("h{i}")).collect()
}

/// Builds the full template suite (deterministic on every call).
pub fn tpch_templates() -> Vec<QueryTemplate> {
    tpch_query_names()
        .into_iter()
        .map(|name| sample_template(&name))
        .collect()
}

/// The template for one canonical query name, `None` for unknown names.
pub fn template_for(name: &str) -> Option<QueryTemplate> {
    is_canonical_name(name).then(|| sample_template(name))
}

fn is_canonical_name(name: &str) -> bool {
    let Some(rest) = name.strip_prefix('h') else {
        return false;
    };
    rest.parse::<u32>()
        .is_ok_and(|n| (1..=TPCH_QUERY_COUNT as u32).contains(&n) && rest == n.to_string())
}

/// One seeded draw per name, on the `tpch/`-salted stream.
fn sample_template(name: &str) -> QueryTemplate {
    let mut rng = StdRng::seed_from_u64(seed_from_name(&format!("tpch/{name}")));

    // One or two big fact tables (lineitem-, orders-like) plus a few small
    // dimensions: scan-dominated inputs, larger than the TPC-DS draws.
    let num_inputs = rng.gen_range(2..=6usize);
    let mut input_gb_per_sf = Vec::with_capacity(num_inputs);
    for i in 0..num_inputs {
        let gb = match i {
            // Primary fact table: 0.3–1.5 GB per SF unit.
            0 => rng.gen_range(0.3..1.5),
            // Secondary fact-like table: 0.08–0.5 GB per SF unit.
            1 => rng.gen_range(0.08..0.5),
            // Dimensions.
            _ => rng.gen_range(0.002..0.08),
        };
        input_gb_per_sf.push(gb);
    }

    // Joins connect the scans; plans stay shallow: one aggregation block,
    // rarely two, and a short shuffle chain.
    let num_joins = rng.gen_range(1..=7usize).min(num_inputs + 2);
    let num_aggregates = rng.gen_range(1..=2usize);
    let num_shuffle_stages = (num_joins / 2 + num_aggregates).clamp(1, 5);
    let num_filters = rng.gen_range(1..=7);
    let num_projects = rng.gen_range(2..=9);
    let num_sorts = rng.gen_range(0..=1);
    let num_unions = 0;
    let num_windows = 0;
    let num_subqueries = rng.gen_range(0..=1);

    // Scan-heavy cost: a lower operator-driven component than TPC-DS (the
    // work is in reading and joining, not in deep aggregation towers).
    let work_secs_per_gb = (8.0
        + 5.0 * num_joins as f64
        + 2.0 * num_aggregates as f64
        + 1.5 * num_sorts as f64
        + 0.3 * num_filters as f64)
        * rng.gen_range(0.85..1.15);
    // Shallow plans end in short tails: little inherently serial work.
    let serial_fraction = (0.015 + 0.015 * num_aggregates as f64 + 0.01 * num_sorts as f64)
        .clamp(0.015, 0.10)
        * rng.gen_range(0.8..1.2);

    QueryTemplate {
        name: name.to_string(),
        num_inputs,
        input_gb_per_sf,
        rows_per_gb: rng.gen_range(4.0e6..3.0e7),
        work_secs_per_gb,
        serial_fraction: serial_fraction.clamp(0.01, 0.12),
        num_shuffle_stages,
        skew: rng.gen_range(1.0..1.8),
        num_joins,
        num_aggregates,
        num_filters,
        num_projects,
        num_sorts,
        num_unions,
        num_windows,
        num_subqueries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families::tpcds;
    use crate::templates::ScaleFactor;

    #[test]
    fn suite_has_22_unique_queries() {
        let names = tpch_query_names();
        assert_eq!(names.len(), TPCH_QUERY_COUNT);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), TPCH_QUERY_COUNT);
    }

    #[test]
    fn templates_are_deterministic_and_membership_checked() {
        assert_eq!(template_for("h6"), template_for("h6"));
        assert_ne!(template_for("h6"), template_for("h7"));
        for name in ["h0", "h23", "h06", "q1", "sk1", ""] {
            assert!(template_for(name).is_none(), "{name:?} should be unknown");
        }
    }

    #[test]
    fn suite_is_shallower_and_more_scan_heavy_than_tpcds() {
        let tpch = tpch_templates();
        let tpcds = tpcds::tpcds_templates();
        let mean = |v: Vec<f64>| v.iter().sum::<f64>() / v.len() as f64;
        let mean_shuffles =
            |ts: &[QueryTemplate]| mean(ts.iter().map(|t| t.num_shuffle_stages as f64).collect());
        let mean_input =
            |ts: &[QueryTemplate]| mean(ts.iter().map(|t| t.total_input_gb_at(1.0)).collect());
        let mean_serial =
            |ts: &[QueryTemplate]| mean(ts.iter().map(|t| t.serial_fraction).collect());
        assert!(mean_shuffles(&tpch) < mean_shuffles(&tpcds));
        assert!(mean_input(&tpch) > mean_input(&tpcds));
        assert!(mean_serial(&tpch) < mean_serial(&tpcds));
        assert!(tpch.iter().all(|t| t.num_shuffle_stages <= 5));
        assert!(tpch.iter().all(|t| t.num_windows == 0 && t.num_unions == 0));
    }

    #[test]
    fn template_fields_are_in_valid_ranges() {
        for template in tpch_templates() {
            assert!(template.num_inputs >= 2 && template.num_inputs <= 6);
            assert_eq!(template.input_gb_per_sf.len(), template.num_inputs);
            assert!(template.input_gb_per_sf.iter().all(|&gb| gb > 0.0));
            assert!(template.serial_fraction > 0.0 && template.serial_fraction <= 0.12);
            assert!(template.skew >= 1.0 && template.skew < 1.8);
            assert!(template.work_secs_per_gb > 0.0);
            assert!(template.num_joins >= 1);
        }
    }

    #[test]
    fn suite_spans_a_wide_range_of_work() {
        let works: Vec<f64> = tpch_templates()
            .iter()
            .map(|t| t.total_work_secs(ScaleFactor::SF100))
            .collect();
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = works.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 4.0, "work range too narrow: {min}..{max}");
    }

    #[test]
    fn family_descriptor_matches_free_functions() {
        let family = TpchFamily;
        assert_eq!(family.name(), "tpch");
        assert_eq!(family.query_names(), tpch_query_names());
        assert_eq!(family.template("h21"), template_for("h21"));
        assert_eq!(family.template("q21"), None);
    }
}
