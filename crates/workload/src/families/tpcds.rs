//! The 103 synthetic TPC-DS-like query templates.
//!
//! Each template is drawn once from a seeded generator keyed by the query
//! name, so `q23` always has the same shape, across processes and runs. The
//! sampling below is the historical pre-`QueryFamily` generator, moved here
//! verbatim: the suite must stay **bit-identical** across refactors (pinned
//! by `tests/family_regression.rs`), because recorded benchmark numbers and
//! the scheduler-regression fixtures all assume it.
//!
//! The distributions are chosen so the derived workload matches the
//! qualitative properties the paper reports for TPC-DS on Synapse:
//! optimal executor counts spread between 1 and 48 (Figure 3c), elbow
//! points mostly at 8 (Figure 11), run times from tens of seconds to several
//! hundred seconds at SF=100, and scan widths that grow with the scale
//! factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::family::QueryFamily;
use crate::templates::{seed_from_name, QueryTemplate};

/// Number of queries in the TPC-DS-like suite (99 templates + 4 variants).
pub const TPCDS_QUERY_COUNT: usize = 103;

/// The TPC-DS-like family descriptor: deep, aggregation-heavy plans with
/// moderate skew — the suite the paper's evaluation is built on.
#[derive(Debug, Clone, Copy, Default)]
pub struct TpcdsFamily;

impl QueryFamily for TpcdsFamily {
    fn name(&self) -> &str {
        "tpcds"
    }

    fn description(&self) -> &str {
        "TPC-DS-like: 103 deep, aggregation-heavy decision-support queries"
    }

    fn query_names(&self) -> Vec<String> {
        tpcds_query_names()
    }

    fn template(&self, query: &str) -> Option<QueryTemplate> {
        template_for(query)
    }
}

/// The canonical 103 query names: q1..q99 plus the b-variants the paper
/// lists (14b, 23b, 24b, 39b).
pub fn tpcds_query_names() -> Vec<String> {
    let mut names: Vec<String> = (1..=99).map(|i| format!("q{i}")).collect();
    for variant in ["q14b", "q23b", "q24b", "q39b"] {
        names.push(variant.to_string());
    }
    names
}

/// Builds the full template suite. Deterministic: the same 103 templates are
/// produced on every call.
pub fn tpcds_templates() -> Vec<QueryTemplate> {
    tpcds_query_names()
        .into_iter()
        .map(|name| sample_template(&name))
        .collect()
}

/// Builds the template for one canonical query name (deterministic in the
/// name). Returns `None` for names outside the suite — the serving path can
/// receive arbitrary names, and an unknown one must surface as an error to
/// the caller, not as a silently fabricated workload.
pub fn template_for(name: &str) -> Option<QueryTemplate> {
    is_canonical_name(name).then(|| sample_template(name))
}

/// Whether `name` is one of the 103 canonical TPC-DS-like names.
fn is_canonical_name(name: &str) -> bool {
    let Some(rest) = name.strip_prefix('q') else {
        return false;
    };
    if matches!(rest, "14b" | "23b" | "24b" | "39b") {
        return true;
    }
    // The round-trip comparison rejects non-canonical spellings that a bare
    // parse would accept ("q007", "q+7").
    rest.parse::<u32>()
        .is_ok_and(|n| (1..=99).contains(&n) && rest == n.to_string())
}

/// The historical sampling body, unchanged: one seeded draw per name.
fn sample_template(name: &str) -> QueryTemplate {
    let mut rng = StdRng::seed_from_u64(seed_from_name(name));

    // Input structure: one or two large fact tables plus dimensions.
    let num_inputs = rng.gen_range(1..=8);
    let mut input_gb_per_sf = Vec::with_capacity(num_inputs);
    for i in 0..num_inputs {
        let gb = if i == 0 {
            // Fact table: 0.05–0.6 GB per SF unit (5–60 GB at SF=100).
            rng.gen_range(0.05..0.6)
        } else {
            // Dimension tables are small.
            rng.gen_range(0.001..0.05)
        };
        input_gb_per_sf.push(gb);
    }

    let num_joins = rng
        .gen_range(0..=10usize)
        .min(num_inputs.saturating_sub(1) + 4);
    let num_aggregates = rng.gen_range(1..=6usize);
    let num_shuffle_stages = (num_joins + num_aggregates).clamp(1, 8);
    let num_filters = rng.gen_range(2..=14);
    let num_projects = rng.gen_range(3..=18);
    let num_sorts = rng.gen_range(0..=3);
    let num_unions = rng.gen_range(0..=2);
    let num_windows = rng.gen_range(0..=2);
    let num_subqueries = rng.gen_range(0..=2);

    // Cost per gigabyte is driven by the operator mix — joins, aggregations,
    // sorts and windows do the heavy lifting — plus a modest residual that
    // plan features cannot explain (data properties, expression complexity).
    // Keeping most of the cost explainable from compile-time features is
    // what makes the parameter-model learning problem realistic rather than
    // dominated by irreducible noise.
    let work_secs_per_gb = (14.0
        + 4.5 * num_joins as f64
        + 3.5 * num_aggregates as f64
        + 2.5 * num_sorts as f64
        + 2.0 * num_windows as f64
        + 0.4 * num_filters as f64)
        * rng.gen_range(0.85..1.15);
    // Deeper, aggregation-heavy plans end in narrower (more serial) tails.
    let serial_fraction = (0.03
        + 0.02 * num_aggregates as f64
        + 0.015 * num_sorts as f64
        + 0.01 * num_subqueries as f64)
        .clamp(0.03, 0.30)
        * rng.gen_range(0.8..1.2);

    QueryTemplate {
        name: name.to_string(),
        num_inputs,
        input_gb_per_sf,
        rows_per_gb: rng.gen_range(2.0e6..2.0e7),
        work_secs_per_gb,
        serial_fraction: serial_fraction.clamp(0.02, 0.35),
        num_shuffle_stages,
        skew: rng.gen_range(1.0..2.5),
        num_joins,
        num_aggregates,
        num_filters,
        num_projects,
        num_sorts,
        num_unions,
        num_windows,
        num_subqueries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::ScaleFactor;

    #[test]
    fn suite_has_103_unique_queries() {
        let names = tpcds_query_names();
        assert_eq!(names.len(), TPCDS_QUERY_COUNT);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), TPCDS_QUERY_COUNT);
        assert!(names.contains(&"q94".to_string()));
        assert!(names.contains(&"q14b".to_string()));
    }

    #[test]
    fn templates_are_deterministic() {
        let a = template_for("q94").unwrap();
        let b = template_for("q94").unwrap();
        assert_eq!(a, b);
        let c = template_for("q69").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn unknown_names_return_none() {
        for name in ["", "q0", "q100", "q007", "q+7", "q14c", "h1", "sk3", "94"] {
            assert!(template_for(name).is_none(), "{name:?} should be unknown");
        }
        for name in ["q1", "q99", "q14b", "q39b"] {
            assert!(template_for(name).is_some(), "{name:?} should be known");
        }
    }

    #[test]
    fn template_fields_are_in_valid_ranges() {
        for template in tpcds_templates() {
            assert!(template.num_inputs >= 1 && template.num_inputs <= 8);
            assert_eq!(template.input_gb_per_sf.len(), template.num_inputs);
            assert!(template.input_gb_per_sf.iter().all(|&gb| gb > 0.0));
            assert!(template.serial_fraction > 0.0 && template.serial_fraction < 0.5);
            assert!(template.num_shuffle_stages >= 1 && template.num_shuffle_stages <= 8);
            assert!(template.skew >= 1.0);
            assert!(template.work_secs_per_gb > 0.0);
        }
    }

    #[test]
    fn suite_spans_a_wide_range_of_work() {
        let works: Vec<f64> = tpcds_templates()
            .iter()
            .map(|t| t.total_work_secs(ScaleFactor::SF100))
            .collect();
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = works.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 10.0, "work range too narrow: {min}..{max}");
    }

    #[test]
    fn family_descriptor_matches_free_functions() {
        let family = TpcdsFamily;
        assert_eq!(family.name(), "tpcds");
        assert_eq!(family.query_names(), tpcds_query_names());
        assert_eq!(family.template("q94"), template_for("q94"));
        assert_eq!(family.template("nope"), None);
        assert_eq!(family.scale_multiplier(ScaleFactor::SF100), 100.0);
    }
}
