//! The skew-adversarial query suite.
//!
//! Where the TPC-DS-like and TPC-H-like families are "benchmark-shaped",
//! this family is deliberately hostile to a parameter model trained on them:
//!
//! * **Heavy-tailed input sizes** — fact-table volumes follow a truncated
//!   Pareto draw, so a few queries scan an order of magnitude more data than
//!   the median one (production telemetry, not benchmark uniformity).
//! * **Straggler stages** — per-stage skew reaches 8× (vs ≤2.5× in TPC-DS),
//!   so stage completion is dominated by a single slow task.
//! * **Extreme elbows** — the suite is bimodal: half the queries are
//!   serial-dominated (elbow at the very bottom of the 1–48 range), the
//!   other half are embarrassingly parallel with tiny serial tails (elbow
//!   pushed toward the top). A model that has only ever seen elbows around 8
//!   must extrapolate to both ends at once.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::family::QueryFamily;
use crate::templates::{seed_from_name, QueryTemplate};

/// Number of queries in the skew-adversarial suite.
pub const SKEW_QUERY_COUNT: usize = 24;

/// The skew-adversarial family descriptor.
#[derive(Debug, Clone, Copy, Default)]
pub struct SkewFamily;

impl QueryFamily for SkewFamily {
    fn name(&self) -> &str {
        "skew"
    }

    fn description(&self) -> &str {
        "skew-adversarial: heavy-tailed input sizes, straggler stages, extreme elbows"
    }

    fn query_names(&self) -> Vec<String> {
        skew_query_names()
    }

    fn template(&self, query: &str) -> Option<QueryTemplate> {
        template_for(query)
    }
}

/// The canonical 24 query names: sk1..sk24.
pub fn skew_query_names() -> Vec<String> {
    (1..=SKEW_QUERY_COUNT).map(|i| format!("sk{i}")).collect()
}

/// Builds the full template suite (deterministic on every call).
pub fn skew_templates() -> Vec<QueryTemplate> {
    skew_query_names()
        .into_iter()
        .map(|name| sample_template(&name))
        .collect()
}

/// The template for one canonical query name, `None` for unknown names.
pub fn template_for(name: &str) -> Option<QueryTemplate> {
    is_canonical_name(name).then(|| sample_template(name))
}

fn is_canonical_name(name: &str) -> bool {
    let Some(rest) = name.strip_prefix("sk") else {
        return false;
    };
    rest.parse::<u32>()
        .is_ok_and(|n| (1..=SKEW_QUERY_COUNT as u32).contains(&n) && rest == n.to_string())
}

/// Truncated-Pareto draw in `[scale, cap]` with tail index `alpha`.
fn pareto(rng: &mut StdRng, scale: f64, alpha: f64, cap: f64) -> f64 {
    let u: f64 = rng.gen();
    (scale / (1.0 - u).powf(1.0 / alpha)).min(cap)
}

/// One seeded draw per name, on the `skew/`-salted stream.
fn sample_template(name: &str) -> QueryTemplate {
    let mut rng = StdRng::seed_from_u64(seed_from_name(&format!("skew/{name}")));

    // Half the suite is serial-dominated, half embarrassingly parallel —
    // the draw is seeded, so each query's mode is fixed forever.
    let serial_dominated = rng.gen_bool(0.5);

    // Heavy-tailed inputs: Pareto fact table (up to 4 GB per SF unit, an
    // order of magnitude past the TPC-DS ceiling), skewed dimension sizes.
    let num_inputs = rng.gen_range(1..=5usize);
    let mut input_gb_per_sf = Vec::with_capacity(num_inputs);
    for i in 0..num_inputs {
        let gb = if i == 0 {
            pareto(&mut rng, 0.04, 1.1, 4.0)
        } else {
            pareto(&mut rng, 0.001, 1.3, 0.2)
        };
        input_gb_per_sf.push(gb);
    }

    let num_joins = rng.gen_range(0..=6usize).min(num_inputs + 2);
    let num_aggregates = rng.gen_range(1..=4usize);
    // Serial-dominated queries funnel through long narrow chains; parallel
    // ones keep the chain short so the wide scans dominate.
    let num_shuffle_stages = if serial_dominated {
        (2 + num_joins + num_aggregates).clamp(3, 8)
    } else {
        (num_joins / 2 + 1).clamp(1, 3)
    };
    let num_filters = rng.gen_range(1..=10);
    let num_projects = rng.gen_range(2..=12);
    let num_sorts = rng.gen_range(0..=2);
    let num_unions = rng.gen_range(0..=1);
    let num_windows = rng.gen_range(0..=1);
    let num_subqueries = rng.gen_range(0..=2);

    let work_secs_per_gb = (6.0
        + 4.0 * num_joins as f64
        + 3.0 * num_aggregates as f64
        + 2.0 * num_sorts as f64
        + 0.4 * num_filters as f64)
        * rng.gen_range(0.6..1.6);

    // The bimodal serial fraction is what pushes elbows to the extremes of
    // the 1–48 range: ~0.3–0.45 flattens the curve almost immediately,
    // ~0.005–0.02 keeps it dropping to the top of the range.
    let serial_fraction = if serial_dominated {
        rng.gen_range(0.30..0.45)
    } else {
        rng.gen_range(0.005..0.02)
    };

    QueryTemplate {
        name: name.to_string(),
        num_inputs,
        input_gb_per_sf,
        rows_per_gb: rng.gen_range(1.0e6..4.0e7),
        work_secs_per_gb,
        serial_fraction,
        num_shuffle_stages,
        skew: rng.gen_range(2.0..8.0),
        num_joins,
        num_aggregates,
        num_filters,
        num_projects,
        num_sorts,
        num_unions,
        num_windows,
        num_subqueries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::templates::ScaleFactor;

    #[test]
    fn suite_has_24_unique_queries() {
        let names = skew_query_names();
        assert_eq!(names.len(), SKEW_QUERY_COUNT);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), SKEW_QUERY_COUNT);
    }

    #[test]
    fn templates_are_deterministic_and_membership_checked() {
        assert_eq!(template_for("sk12"), template_for("sk12"));
        assert_ne!(template_for("sk12"), template_for("sk13"));
        for name in ["sk0", "sk25", "sk01", "q12", "h12", "sk", ""] {
            assert!(template_for(name).is_none(), "{name:?} should be unknown");
        }
    }

    #[test]
    fn suite_is_bimodal_in_serial_fraction() {
        let templates = skew_templates();
        let low = templates
            .iter()
            .filter(|t| t.serial_fraction < 0.05)
            .count();
        let high = templates
            .iter()
            .filter(|t| t.serial_fraction > 0.25)
            .count();
        assert_eq!(
            low + high,
            SKEW_QUERY_COUNT,
            "no mid-range serial fractions"
        );
        // Both modes are well populated (the coin is fair and seeded).
        assert!(low >= SKEW_QUERY_COUNT / 4, "only {low} parallel queries");
        assert!(high >= SKEW_QUERY_COUNT / 4, "only {high} serial queries");
    }

    #[test]
    fn input_sizes_are_heavy_tailed() {
        let volumes: Vec<f64> = skew_templates()
            .iter()
            .map(|t| t.total_input_gb_at(1.0))
            .collect();
        let max = volumes.iter().cloned().fold(0.0, f64::max);
        let mut sorted = volumes.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!(
            max / median > 8.0,
            "tail not heavy enough: max {max}, median {median}"
        );
    }

    #[test]
    fn stages_have_stragglers() {
        let templates = skew_templates();
        assert!(templates.iter().all(|t| t.skew >= 2.0));
        assert!(
            templates.iter().any(|t| t.skew > 5.0),
            "no extreme stragglers drawn"
        );
    }

    #[test]
    fn template_fields_are_in_valid_ranges() {
        for template in skew_templates() {
            assert!(template.num_inputs >= 1 && template.num_inputs <= 5);
            assert_eq!(template.input_gb_per_sf.len(), template.num_inputs);
            assert!(template.input_gb_per_sf.iter().all(|&gb| gb > 0.0));
            assert!(template.serial_fraction > 0.0 && template.serial_fraction < 0.5);
            assert!(template.num_shuffle_stages >= 1 && template.num_shuffle_stages <= 8);
            assert!(template.work_secs_per_gb > 0.0);
            assert!(template.total_work_secs(ScaleFactor::SF10) > 0.0);
        }
    }

    #[test]
    fn family_descriptor_matches_free_functions() {
        let family = SkewFamily;
        assert_eq!(family.name(), "skew");
        assert_eq!(family.query_names(), skew_query_names());
        assert_eq!(family.template("sk7"), template_for("sk7"));
        assert_eq!(family.template("7"), None);
    }
}
