//! The builtin workload-family implementations.
//!
//! Each submodule hosts one suite: its canonical names, its seeded
//! template-sampling distributions, and its [`crate::family::QueryFamily`]
//! descriptor. The distributions are what give each family its character —
//! the shared materialisation into plans and DAGs lives in
//! [`crate::generator`].

pub mod skew;
pub mod tpcds;
pub mod tpch;
