//! The 103 synthetic TPC-DS-like query templates.
//!
//! Each template is a compact description of a decision-support query:
//! how many inputs it scans, its operator mix, how much work it does per
//! gigabyte of input, how wide its scan and shuffle stages are, and how much
//! of its work is inherently serial. The concrete values are drawn once from
//! a seeded generator keyed by the query name, so `q23` always has the same
//! shape, across processes and runs — the synthetic analogue of a fixed
//! benchmark suite.
//!
//! The distributions are chosen so the derived workload matches the
//! qualitative properties the paper reports for TPC-DS on Synapse:
//! optimal executor counts spread between 1 and 48 (Figure 3c), elbow
//! points mostly at 8 (Figure 11), run times from tens of seconds to several
//! hundred seconds at SF=100, and scan widths that grow with the scale
//! factor.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Number of queries in the TPC-DS-like suite (99 templates + 4 variants).
pub const TPCDS_QUERY_COUNT: usize = 103;

/// TPC-DS scale factor (the paper evaluates 10 and 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScaleFactor(pub u32);

impl ScaleFactor {
    /// Scale factor 10.
    pub const SF10: ScaleFactor = ScaleFactor(10);
    /// Scale factor 100.
    pub const SF100: ScaleFactor = ScaleFactor(100);

    /// Multiplier relative to SF=1.
    pub fn multiplier(&self) -> f64 {
        self.0 as f64
    }
}

impl std::fmt::Display for ScaleFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SF={}", self.0)
    }
}

/// Compact description of one query template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Query name, e.g. `"q94"` or `"q14b"`.
    pub name: String,
    /// Number of input data sources (fact/dimension tables scanned).
    pub num_inputs: usize,
    /// Gigabytes read per input source at SF=1.
    pub input_gb_per_sf: Vec<f64>,
    /// Rows per gigabyte of input (drives the rows-processed estimate).
    pub rows_per_gb: f64,
    /// CPU-seconds of task work per gigabyte of input scanned.
    pub work_secs_per_gb: f64,
    /// Fraction of total work that is inherently serial (narrow tail stages).
    pub serial_fraction: f64,
    /// Number of shuffle stages after the scans (joins + aggregations).
    pub num_shuffle_stages: usize,
    /// Skew factor: ≥1, how much longer the slowest task of a stage is than
    /// the average task.
    pub skew: f64,
    /// Operator-mix counts used to synthesise the logical plan.
    pub num_joins: usize,
    /// Aggregate operators in the plan.
    pub num_aggregates: usize,
    /// Filter operators in the plan.
    pub num_filters: usize,
    /// Project operators in the plan.
    pub num_projects: usize,
    /// Sort operators in the plan.
    pub num_sorts: usize,
    /// Union operators in the plan.
    pub num_unions: usize,
    /// Window operators in the plan.
    pub num_windows: usize,
    /// Subquery operators in the plan.
    pub num_subqueries: usize,
}

impl QueryTemplate {
    /// Total gigabytes read at the given scale factor.
    pub fn total_input_gb(&self, sf: ScaleFactor) -> f64 {
        self.input_gb_per_sf.iter().sum::<f64>() * sf.multiplier()
    }

    /// Total task work in core-seconds at the given scale factor.
    ///
    /// Work grows slightly sub-linearly with data size (larger scans amortise
    /// per-task overheads), which keeps SF=10 queries from being trivially
    /// 10× cheaper than SF=100 ones.
    pub fn total_work_secs(&self, sf: ScaleFactor) -> f64 {
        let gb = self.total_input_gb(sf);
        self.work_secs_per_gb * gb.powf(0.92)
    }
}

/// The canonical 103 query names: q1..q99 plus the b-variants the paper
/// lists (14b, 23b, 24b, 39b).
pub fn tpcds_query_names() -> Vec<String> {
    let mut names: Vec<String> = (1..=99).map(|i| format!("q{i}")).collect();
    for variant in ["q14b", "q23b", "q24b", "q39b"] {
        names.push(variant.to_string());
    }
    names
}

/// Builds the full template suite. Deterministic: the same 103 templates are
/// produced on every call.
pub fn tpcds_templates() -> Vec<QueryTemplate> {
    tpcds_query_names()
        .into_iter()
        .map(|name| template_for(&name))
        .collect()
}

/// Builds the template for one query name (deterministic in the name).
pub fn template_for(name: &str) -> QueryTemplate {
    let mut rng = StdRng::seed_from_u64(seed_from_name(name));

    // Input structure: one or two large fact tables plus dimensions.
    let num_inputs = rng.gen_range(1..=8);
    let mut input_gb_per_sf = Vec::with_capacity(num_inputs);
    for i in 0..num_inputs {
        let gb = if i == 0 {
            // Fact table: 0.05–0.6 GB per SF unit (5–60 GB at SF=100).
            rng.gen_range(0.05..0.6)
        } else {
            // Dimension tables are small.
            rng.gen_range(0.001..0.05)
        };
        input_gb_per_sf.push(gb);
    }

    let num_joins = rng
        .gen_range(0..=10usize)
        .min(num_inputs.saturating_sub(1) + 4);
    let num_aggregates = rng.gen_range(1..=6usize);
    let num_shuffle_stages = (num_joins + num_aggregates).clamp(1, 8);
    let num_filters = rng.gen_range(2..=14);
    let num_projects = rng.gen_range(3..=18);
    let num_sorts = rng.gen_range(0..=3);
    let num_unions = rng.gen_range(0..=2);
    let num_windows = rng.gen_range(0..=2);
    let num_subqueries = rng.gen_range(0..=2);

    // Cost per gigabyte is driven by the operator mix — joins, aggregations,
    // sorts and windows do the heavy lifting — plus a modest residual that
    // plan features cannot explain (data properties, expression complexity).
    // Keeping most of the cost explainable from compile-time features is
    // what makes the parameter-model learning problem realistic rather than
    // dominated by irreducible noise.
    let work_secs_per_gb = (14.0
        + 4.5 * num_joins as f64
        + 3.5 * num_aggregates as f64
        + 2.5 * num_sorts as f64
        + 2.0 * num_windows as f64
        + 0.4 * num_filters as f64)
        * rng.gen_range(0.85..1.15);
    // Deeper, aggregation-heavy plans end in narrower (more serial) tails.
    let serial_fraction = (0.03
        + 0.02 * num_aggregates as f64
        + 0.015 * num_sorts as f64
        + 0.01 * num_subqueries as f64)
        .clamp(0.03, 0.30)
        * rng.gen_range(0.8..1.2);

    QueryTemplate {
        name: name.to_string(),
        num_inputs,
        input_gb_per_sf,
        rows_per_gb: rng.gen_range(2.0e6..2.0e7),
        work_secs_per_gb,
        serial_fraction: serial_fraction.clamp(0.02, 0.35),
        num_shuffle_stages,
        skew: rng.gen_range(1.0..2.5),
        num_joins,
        num_aggregates,
        num_filters,
        num_projects,
        num_sorts,
        num_unions,
        num_windows,
        num_subqueries,
    }
}

/// Stable 64-bit seed derived from a query name (FNV-1a).
fn seed_from_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_103_unique_queries() {
        let names = tpcds_query_names();
        assert_eq!(names.len(), TPCDS_QUERY_COUNT);
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), TPCDS_QUERY_COUNT);
        assert!(names.contains(&"q94".to_string()));
        assert!(names.contains(&"q14b".to_string()));
    }

    #[test]
    fn templates_are_deterministic() {
        let a = template_for("q94");
        let b = template_for("q94");
        assert_eq!(a, b);
        let c = template_for("q69");
        assert_ne!(a, c);
    }

    #[test]
    fn template_fields_are_in_valid_ranges() {
        for template in tpcds_templates() {
            assert!(template.num_inputs >= 1 && template.num_inputs <= 8);
            assert_eq!(template.input_gb_per_sf.len(), template.num_inputs);
            assert!(template.input_gb_per_sf.iter().all(|&gb| gb > 0.0));
            assert!(template.serial_fraction > 0.0 && template.serial_fraction < 0.5);
            assert!(template.num_shuffle_stages >= 1 && template.num_shuffle_stages <= 8);
            assert!(template.skew >= 1.0);
            assert!(template.work_secs_per_gb > 0.0);
        }
    }

    #[test]
    fn work_scales_with_scale_factor() {
        let t = template_for("q42");
        let w10 = t.total_work_secs(ScaleFactor::SF10);
        let w100 = t.total_work_secs(ScaleFactor::SF100);
        assert!(w100 > w10 * 4.0, "w10={w10} w100={w100}");
        assert!(w100 < w10 * 12.0, "sub-linear scaling expected");
    }

    #[test]
    fn suite_spans_a_wide_range_of_work() {
        let works: Vec<f64> = tpcds_templates()
            .iter()
            .map(|t| t.total_work_secs(ScaleFactor::SF100))
            .collect();
        let min = works.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = works.iter().cloned().fold(0.0, f64::max);
        assert!(max / min > 10.0, "work range too narrow: {min}..{max}");
    }

    #[test]
    fn scale_factor_display() {
        assert_eq!(ScaleFactor::SF100.to_string(), "SF=100");
        assert_eq!(ScaleFactor(37).multiplier(), 37.0);
    }
}
