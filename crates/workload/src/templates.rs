//! The shared template vocabulary of every workload family.
//!
//! A [`QueryTemplate`] is a compact description of one decision-support
//! query: how many inputs it scans, its operator mix, how much work it does
//! per gigabyte of input, how wide its scan and shuffle stages are, and how
//! much of its work is inherently serial. Families
//! ([`crate::family::QueryFamily`]) differ only in *which* templates they
//! produce — the TPC-DS-like suite draws deep aggregation-heavy mixes, the
//! TPC-H-like suite draws shallow scan/join-heavy ones, the skew-adversarial
//! suite draws heavy-tailed sizes and stragglers — while the materialisation
//! into plans and DAGs ([`crate::generator`]) is family-agnostic.
//!
//! Every family's concrete values are drawn once from a seeded generator
//! keyed by the query name (plus a family salt), so `q23` always has the
//! same shape, across processes and runs — the synthetic analogue of a
//! fixed benchmark suite.

use serde::{Deserialize, Serialize};

/// Benchmark scale factor (the paper evaluates TPC-DS at 10 and 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScaleFactor(pub u32);

impl ScaleFactor {
    /// Scale factor 10.
    pub const SF10: ScaleFactor = ScaleFactor(10);
    /// Scale factor 100.
    pub const SF100: ScaleFactor = ScaleFactor(100);

    /// Multiplier relative to SF=1.
    pub fn multiplier(&self) -> f64 {
        self.0 as f64
    }
}

impl std::fmt::Display for ScaleFactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SF={}", self.0)
    }
}

/// Compact description of one query template.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Query name, e.g. `"q94"`, `"h6"`, or `"sk17"`.
    pub name: String,
    /// Number of input data sources (fact/dimension tables scanned).
    pub num_inputs: usize,
    /// Gigabytes read per input source at SF=1.
    pub input_gb_per_sf: Vec<f64>,
    /// Rows per gigabyte of input (drives the rows-processed estimate).
    pub rows_per_gb: f64,
    /// CPU-seconds of task work per gigabyte of input scanned.
    pub work_secs_per_gb: f64,
    /// Fraction of total work that is inherently serial (narrow tail stages).
    pub serial_fraction: f64,
    /// Number of shuffle stages after the scans (joins + aggregations).
    pub num_shuffle_stages: usize,
    /// Skew factor: ≥1, how much longer the slowest task of a stage is than
    /// the average task.
    pub skew: f64,
    /// Operator-mix counts used to synthesise the logical plan.
    pub num_joins: usize,
    /// Aggregate operators in the plan.
    pub num_aggregates: usize,
    /// Filter operators in the plan.
    pub num_filters: usize,
    /// Project operators in the plan.
    pub num_projects: usize,
    /// Sort operators in the plan.
    pub num_sorts: usize,
    /// Union operators in the plan.
    pub num_unions: usize,
    /// Window operators in the plan.
    pub num_windows: usize,
    /// Subquery operators in the plan.
    pub num_subqueries: usize,
}

impl QueryTemplate {
    /// Total gigabytes read at the given size multiplier relative to SF=1.
    ///
    /// Families with non-linear scale-factor semantics pass their own
    /// multiplier here (see
    /// [`crate::family::QueryFamily::scale_multiplier`]).
    pub fn total_input_gb_at(&self, multiplier: f64) -> f64 {
        self.input_gb_per_sf.iter().sum::<f64>() * multiplier
    }

    /// Total gigabytes read at the given scale factor (linear semantics).
    pub fn total_input_gb(&self, sf: ScaleFactor) -> f64 {
        self.total_input_gb_at(sf.multiplier())
    }

    /// Total task work in core-seconds at the given size multiplier.
    ///
    /// Work grows slightly sub-linearly with data size (larger scans amortise
    /// per-task overheads), which keeps SF=10 queries from being trivially
    /// 10× cheaper than SF=100 ones.
    pub fn total_work_secs_at(&self, multiplier: f64) -> f64 {
        let gb = self.total_input_gb_at(multiplier);
        self.work_secs_per_gb * gb.powf(0.92)
    }

    /// Total task work in core-seconds at the given scale factor (linear
    /// semantics).
    pub fn total_work_secs(&self, sf: ScaleFactor) -> f64 {
        self.total_work_secs_at(sf.multiplier())
    }
}

/// Stable 64-bit seed derived from a query name (FNV-1a).
///
/// New families should hash a family-prefixed name (e.g. `"tpch/h1"`) so
/// name collisions across families draw distinct shapes. The one exception
/// is the TPC-DS-like family, which hashes the bare name: that is the
/// historical stream, and salting it would break the suite's pinned
/// bit-identity with the pre-registry generator.
pub(crate) fn seed_from_name(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_scales_with_scale_factor() {
        let t = crate::families::tpcds::template_for("q42").expect("canonical name");
        let w10 = t.total_work_secs(ScaleFactor::SF10);
        let w100 = t.total_work_secs(ScaleFactor::SF100);
        assert!(w100 > w10 * 4.0, "w10={w10} w100={w100}");
        assert!(w100 < w10 * 12.0, "sub-linear scaling expected");
    }

    #[test]
    fn explicit_multiplier_matches_scale_factor_path() {
        let t = crate::families::tpcds::template_for("q7").expect("canonical name");
        assert_eq!(
            t.total_work_secs(ScaleFactor::SF100).to_bits(),
            t.total_work_secs_at(100.0).to_bits()
        );
        assert_eq!(
            t.total_input_gb(ScaleFactor::SF10).to_bits(),
            t.total_input_gb_at(10.0).to_bits()
        );
    }

    #[test]
    fn scale_factor_display() {
        assert_eq!(ScaleFactor::SF100.to_string(), "SF=100");
        assert_eq!(ScaleFactor(37).multiplier(), 37.0);
    }
}
