//! # ae-workload — synthetic workloads for the AutoExecutor reproduction
//!
//! The workload layer is organised around first-class *families*
//! ([`family::QueryFamily`]): named, deterministic suites of query templates
//! behind a registry ([`family::FamilyRegistry`]). Three families ship built
//! in ([`family::BuiltinFamily`]):
//!
//! * **`tpcds`** — the paper's evaluation suite (103 queries: 99 templates
//!   plus 4 variants) at scale factors 10 and 100. [`families::tpcds`] and
//!   [`generator`] produce the synthetic equivalent of "TPC-DS data + Spark
//!   SQL compilation": deep, aggregation-heavy plans whose operator mixes,
//!   input sizes, and stage DAGs span the ranges the paper reports (optimal
//!   executor counts from 1 to 48, elbow points concentrated around 8).
//!   Bit-identical to the pre-registry generator
//!   (`tests/family_regression.rs`).
//! * **`tpch`** — 22 scan/join-heavy queries with shallower DAGs
//!   ([`families::tpch`]), the classic counterpoint for cross-family
//!   generalization experiments.
//! * **`skew`** — a skew-adversarial suite ([`families::skew`]): heavy-tailed
//!   input sizes, straggler stages, and elbow points pushed to the extremes
//!   of the 1–48 executor range.
//!
//! [`production`] additionally generates the synthetic **production Spark
//! telemetry** (90,224 applications, 840,278 queries, 3,245 clusters) used
//! for the motivating analysis of Section 2.
//!
//! All generators are seeded and fully deterministic, so every experiment
//! in the benchmark harness is reproducible.
//!
//! For the serving path, [`arrivals`] turns any suite — single-family or the
//! concatenation built by [`family::mixed_suite`] — into a *request
//! process*: open-loop Poisson arrivals at a target rate, or closed-loop
//! per-client request sequences (both deterministic given a seed). For QoS
//! benchmarks, open-loop schedules can additionally be *tagged* with
//! service-level and tenant indices drawn from weighted mixes
//! ([`arrivals::WeightedMix`], [`arrivals::TaggedArrival`]) without
//! perturbing the underlying arrival process.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrivals;
pub mod families;
pub mod family;
pub mod generator;
pub mod production;
pub mod templates;

pub use arrivals::{Arrival, ClosedLoop, FaultSeeds, OpenLoop, TaggedArrival, WeightedMix};
pub use families::skew::SKEW_QUERY_COUNT;
pub use families::tpcds::{template_for, tpcds_query_names, tpcds_templates, TPCDS_QUERY_COUNT};
pub use families::tpch::TPCH_QUERY_COUNT;
pub use family::{mixed_suite, BuiltinFamily, DuplicateFamily, FamilyRegistry, QueryFamily};
pub use generator::{QueryInstance, WorkloadGenerator};
pub use production::{ApplicationTelemetry, ProductionWorkload, ProductionWorkloadConfig};
pub use templates::{QueryTemplate, ScaleFactor};
