//! # ae-workload — synthetic workloads for the AutoExecutor reproduction
//!
//! Two workload families feed the paper's evaluation:
//!
//! * **TPC-DS** (103 queries = 99 templates + 4 variants) at scale factors
//!   10 and 100, executed on Azure Synapse Spark. [`templates`] and
//!   [`generator`] produce the equivalent here: 103 deterministic synthetic
//!   query templates whose operator mixes, input sizes, and stage DAGs span
//!   the same ranges the paper reports (optimal executor counts from 1 to
//!   48, elbow points concentrated around 8, run times from tens of seconds
//!   to minutes).
//! * **Production Spark telemetry at Microsoft** (90,224 applications,
//!   840,278 queries, 3,245 clusters) used for the motivating analysis of
//!   Section 2. [`production`] generates a synthetic telemetry set with the
//!   distributions reported in Figures 2 and 3a/3b.
//!
//! Both generators are seeded and fully deterministic, so every experiment
//! in the benchmark harness is reproducible.
//!
//! For the serving path, [`arrivals`] turns either suite into a *request
//! process*: open-loop Poisson arrivals at a target rate, or closed-loop
//! per-client request sequences (both deterministic given a seed).

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrivals;
pub mod generator;
pub mod production;
pub mod templates;

pub use arrivals::{Arrival, ClosedLoop, OpenLoop};
pub use generator::{QueryInstance, WorkloadGenerator};
pub use production::{ApplicationTelemetry, ProductionWorkload, ProductionWorkloadConfig};
pub use templates::{QueryTemplate, ScaleFactor, TPCDS_QUERY_COUNT};
