//! The serving-trace format: a compact, versioned, bit-exact record of
//! one serving session, sufficient to re-evaluate alternative
//! configurations offline without re-simulation.
//!
//! A [`ServingTrace`] has three sections:
//!
//! * **meta** — the capture-side configuration a replayer needs to
//!   reproduce outcomes: workload family, model label, selection
//!   objective, seed, candidate executor counts, per-level deadline
//!   budgets, slowdown targets, and unit price.
//! * **queries** — the distinct queries observed, each with its full
//!   feature vector (bit-exact), an FNV digest of those features, and a
//!   *ground-truth actual runtime curve* `t_actual(n)` over the candidate
//!   counts, measured once at capture time by deterministic simulation.
//!   The curve is what lets replay evaluate an *alternative* config's
//!   choice `n'` without re-simulating: `t_actual(n')` is already in the
//!   trace.
//! * **records** — one line per request: the envelope (arrival offset,
//!   query index, service level, tenant, status) and the outcome (chosen
//!   executors, predicted runtime, price, observed serving latency,
//!   miss/degraded/demoted flags).
//!
//! # Bit-exactness and versioning
//!
//! Every `f64` travels as the 16-hex-digit `to_bits()` pattern, so
//! `parse(render(t)) == t` exactly (including NaN payloads) and
//! `render(parse(s)) == s` for any trace this library wrote. The first
//! line carries the format version ([`TRACE_FORMAT_VERSION`]); parsers
//! reject versions they do not understand rather than guessing. Any
//! change to the line grammar must bump the version.

use std::fmt::Write as _;
use std::sync::Mutex;

use crate::{thread_slot, DEFAULT_SHARDS};

/// Version tag written on (and required at) the first line of every
/// serialized trace.
pub const TRACE_FORMAT_VERSION: u32 = 1;

/// Number of service levels a trace carries budgets for (mirrors the
/// serving runtime's `ServiceLevel::COUNT` without depending on it).
pub const TRACE_LEVELS: usize = 3;

/// FNV-1a digest of a feature vector's exact bit patterns. Stable across
/// capture and replay; two queries with identical features collide by
/// design (they *are* the same point in feature space).
pub fn feature_digest(features: &[f64]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &f in features {
        for b in f.to_bits().to_le_bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x100000001b3);
        }
    }
    hash
}

/// Capture-side configuration recorded in the trace header.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Workload family label (e.g. `tpcds`). Single token: whitespace is
    /// replaced with `_` at render time.
    pub family: String,
    /// Label of the model that served the capture.
    pub model: String,
    /// Selection objective label the capture ran under.
    pub objective: String,
    /// Seed of the capture session (arrival schedule and simulation).
    pub seed: u64,
    /// Candidate executor counts the scorer chose from.
    pub candidate_counts: Vec<u32>,
    /// Per-level scoring deadline budgets in nanoseconds, indexed by
    /// service-level index (0 = best-effort).
    pub deadline_budgets_ns: [u64; TRACE_LEVELS],
    /// Per-level slowdown targets the pricer used.
    pub slowdown_targets: [f64; TRACE_LEVELS],
    /// Price of one executor-second of predicted work at the base level.
    pub unit_price: f64,
}

/// One distinct query observed during capture.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceQuery {
    /// Query name (single token; whitespace replaced with `_`).
    pub name: String,
    /// The full feature vector, bit-exact.
    pub features: Vec<f64>,
    /// [`feature_digest`] of `features` (recomputed and checked at
    /// parse time).
    pub digest: u64,
    /// Ground-truth actual runtime `(n, t_actual_secs)` over the
    /// candidate counts, from deterministic simulation at capture time.
    pub actual_curve: Vec<(u32, f64)>,
}

impl TraceQuery {
    /// `t_actual` at executor count `n`, when `n` is on the curve.
    pub fn actual_secs(&self, n: u32) -> Option<f64> {
        self.actual_curve
            .iter()
            .find(|&&(count, _)| count == n)
            .map(|&(_, secs)| secs)
    }
}

/// How a captured request left the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestStatus {
    /// Scored successfully (possibly degraded).
    Completed,
    /// Evicted from a queue to admit higher-value work.
    Shed,
    /// Rejected at admission (queue full).
    Dropped,
    /// Rejected by the tenant governor.
    Throttled,
    /// Failed with a scoring error.
    Errored,
}

impl RequestStatus {
    fn code(self) -> char {
        match self {
            RequestStatus::Completed => 'c',
            RequestStatus::Shed => 's',
            RequestStatus::Dropped => 'd',
            RequestStatus::Throttled => 't',
            RequestStatus::Errored => 'e',
        }
    }

    fn from_code(c: &str) -> Result<Self, TraceError> {
        match c {
            "c" => Ok(RequestStatus::Completed),
            "s" => Ok(RequestStatus::Shed),
            "d" => Ok(RequestStatus::Dropped),
            "t" => Ok(RequestStatus::Throttled),
            "e" => Ok(RequestStatus::Errored),
            other => Err(TraceError(format!("unknown status code {other:?}"))),
        }
    }

    /// Human-readable label.
    pub fn name(self) -> &'static str {
        match self {
            RequestStatus::Completed => "completed",
            RequestStatus::Shed => "shed",
            RequestStatus::Dropped => "dropped",
            RequestStatus::Throttled => "throttled",
            RequestStatus::Errored => "errored",
        }
    }
}

const FLAG_MISSED: u32 = 1;
const FLAG_DEGRADED: u32 = 2;
const FLAG_DEMOTED: u32 = 4;

/// One request's envelope and outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Submission order within the capture (dense, 0-based).
    pub seq: u64,
    /// Scheduled arrival offset from capture start, in nanoseconds.
    pub arrival_ns: u64,
    /// Index into [`ServingTrace::queries`].
    pub query: u32,
    /// Requested service-level index (before any demotion).
    pub level: u8,
    /// Tenant index.
    pub tenant: u32,
    /// How the request left the system.
    pub status: RequestStatus,
    /// Chosen executor count (0 for non-completed requests).
    pub executors: u32,
    /// Predicted runtime at `executors`, seconds (bit-exact).
    pub predicted_secs: f64,
    /// Quoted price (bit-exact; 0.0 for non-completed requests).
    pub price: f64,
    /// Observed serving latency (submit → fulfilled) in nanoseconds.
    pub observed_latency_ns: u64,
    /// Canonical deadline-miss flag: `observed_latency_ns` exceeded the
    /// request's level budget from [`TraceMeta::deadline_budgets_ns`].
    pub missed: bool,
    /// Served by the heuristic fallback (breaker open).
    pub degraded: bool,
    /// Demoted to best-effort by the tenant governor before scoring.
    pub demoted: bool,
}

impl TraceRecord {
    fn flags(&self) -> u32 {
        (self.missed as u32) * FLAG_MISSED
            + (self.degraded as u32) * FLAG_DEGRADED
            + (self.demoted as u32) * FLAG_DEMOTED
    }
}

/// A parse or validation failure, with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError(pub String);

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace error: {}", self.0)
    }
}

impl std::error::Error for TraceError {}

/// A complete captured serving session.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingTrace {
    /// Capture-side configuration.
    pub meta: TraceMeta,
    /// Distinct queries, referenced by [`TraceRecord::query`].
    pub queries: Vec<TraceQuery>,
    /// Per-request records, sorted by `seq`.
    pub records: Vec<TraceRecord>,
}

fn hex_f64(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn parse_hex_f64(s: &str) -> Result<f64, TraceError> {
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| TraceError(format!("bad f64 bit pattern {s:?}")))
}

fn parse_num<T: std::str::FromStr>(s: &str, what: &str) -> Result<T, TraceError> {
    s.parse()
        .map_err(|_| TraceError(format!("bad {what}: {s:?}")))
}

fn token(s: &str) -> String {
    if s.is_empty() {
        return "_".to_string();
    }
    s.chars()
        .map(|c| {
            if c.is_whitespace() || c.is_control() {
                '_'
            } else {
                c
            }
        })
        .collect()
}

impl ServingTrace {
    /// Serializes the trace to its canonical text form. The rendering is
    /// deterministic: equal traces render to equal strings.
    pub fn render(&self) -> String {
        let mut out =
            String::with_capacity(64 + self.queries.len() * 256 + self.records.len() * 96);
        let _ = writeln!(out, "aeobs-trace v{TRACE_FORMAT_VERSION}");
        let m = &self.meta;
        let _ = writeln!(
            out,
            "meta {} {} {} {}",
            token(&m.family),
            token(&m.model),
            token(&m.objective),
            m.seed
        );
        let counts: Vec<String> = m.candidate_counts.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(out, "counts {}", counts.join(" "));
        let _ = writeln!(
            out,
            "budgets_ns {} {} {}",
            m.deadline_budgets_ns[0], m.deadline_budgets_ns[1], m.deadline_budgets_ns[2]
        );
        let _ = writeln!(
            out,
            "targets {} {} {}",
            hex_f64(m.slowdown_targets[0]),
            hex_f64(m.slowdown_targets[1]),
            hex_f64(m.slowdown_targets[2])
        );
        let _ = writeln!(out, "unit_price {}", hex_f64(m.unit_price));
        let _ = writeln!(out, "queries {}", self.queries.len());
        for q in &self.queries {
            let feats: Vec<String> = q.features.iter().map(|&f| hex_f64(f)).collect();
            let curve: Vec<String> = q
                .actual_curve
                .iter()
                .map(|&(n, t)| format!("{n}:{}", hex_f64(t)))
                .collect();
            let _ = writeln!(
                out,
                "q {} {:016x} {} {} {} {}",
                token(&q.name),
                q.digest,
                q.features.len(),
                feats.join(" "),
                q.actual_curve.len(),
                curve.join(" ")
            );
        }
        let _ = writeln!(out, "records {}", self.records.len());
        for r in &self.records {
            let _ = writeln!(
                out,
                "r {} {} {} {} {} {} {} {} {} {} {}",
                r.seq,
                r.arrival_ns,
                r.query,
                r.level,
                r.tenant,
                r.status.code(),
                r.executors,
                hex_f64(r.predicted_secs),
                hex_f64(r.price),
                r.observed_latency_ns,
                r.flags()
            );
        }
        out.push_str("end\n");
        out
    }

    /// Parses a trace rendered by [`render`](Self::render). Rejects
    /// unknown format versions, malformed lines, out-of-range query
    /// references, and feature vectors whose digest does not match.
    pub fn parse(text: &str) -> Result<ServingTrace, TraceError> {
        let mut lines = text.lines();
        let mut next = |what: &str| {
            lines
                .next()
                .ok_or_else(|| TraceError(format!("truncated trace: missing {what}")))
        };

        let header = next("version line")?;
        let version = header
            .strip_prefix("aeobs-trace v")
            .ok_or_else(|| TraceError(format!("not a serving trace: {header:?}")))?;
        let version: u32 = parse_num(version, "format version")?;
        if version != TRACE_FORMAT_VERSION {
            return Err(TraceError(format!(
                "unsupported trace format v{version} (this library reads v{TRACE_FORMAT_VERSION})"
            )));
        }

        let meta_line = next("meta line")?;
        let parts: Vec<&str> = meta_line.split(' ').collect();
        if parts.len() != 5 || parts[0] != "meta" {
            return Err(TraceError(format!("bad meta line: {meta_line:?}")));
        }
        let (family, model, objective) = (
            parts[1].to_string(),
            parts[2].to_string(),
            parts[3].to_string(),
        );
        let seed: u64 = parse_num(parts[4], "seed")?;

        let counts_line = next("counts line")?;
        let counts_body = counts_line
            .strip_prefix("counts")
            .ok_or_else(|| TraceError(format!("bad counts line: {counts_line:?}")))?;
        let candidate_counts: Vec<u32> = counts_body
            .split_whitespace()
            .map(|c| parse_num(c, "candidate count"))
            .collect::<Result<_, _>>()?;

        let budgets_line = next("budgets line")?;
        let parts: Vec<&str> = budgets_line.split(' ').collect();
        if parts.len() != 4 || parts[0] != "budgets_ns" {
            return Err(TraceError(format!("bad budgets line: {budgets_line:?}")));
        }
        let deadline_budgets_ns = [
            parse_num(parts[1], "budget")?,
            parse_num(parts[2], "budget")?,
            parse_num(parts[3], "budget")?,
        ];

        let targets_line = next("targets line")?;
        let parts: Vec<&str> = targets_line.split(' ').collect();
        if parts.len() != 4 || parts[0] != "targets" {
            return Err(TraceError(format!("bad targets line: {targets_line:?}")));
        }
        let slowdown_targets = [
            parse_hex_f64(parts[1])?,
            parse_hex_f64(parts[2])?,
            parse_hex_f64(parts[3])?,
        ];

        let price_line = next("unit_price line")?;
        let unit_price = parse_hex_f64(
            price_line
                .strip_prefix("unit_price ")
                .ok_or_else(|| TraceError(format!("bad unit_price line: {price_line:?}")))?,
        )?;

        let count_line = next("queries count")?;
        let num_queries: usize = parse_num(
            count_line
                .strip_prefix("queries ")
                .ok_or_else(|| TraceError(format!("bad queries line: {count_line:?}")))?,
            "query count",
        )?;
        let mut queries = Vec::with_capacity(num_queries);
        for _ in 0..num_queries {
            let line = next("query line")?;
            let mut parts = line.split(' ');
            if parts.next() != Some("q") {
                return Err(TraceError(format!("bad query line: {line:?}")));
            }
            let name = parts
                .next()
                .ok_or_else(|| TraceError("query line missing name".into()))?
                .to_string();
            let digest = u64::from_str_radix(
                parts
                    .next()
                    .ok_or_else(|| TraceError("query line missing digest".into()))?,
                16,
            )
            .map_err(|_| TraceError("bad query digest".into()))?;
            let num_features: usize = parse_num(
                parts
                    .next()
                    .ok_or_else(|| TraceError("query line missing feature count".into()))?,
                "feature count",
            )?;
            let mut features = Vec::with_capacity(num_features);
            for _ in 0..num_features {
                features.push(parse_hex_f64(parts.next().ok_or_else(|| {
                    TraceError(format!("query {name}: truncated feature list"))
                })?)?);
            }
            let num_points: usize = parse_num(
                parts
                    .next()
                    .ok_or_else(|| TraceError("query line missing curve count".into()))?,
                "curve point count",
            )?;
            let mut actual_curve = Vec::with_capacity(num_points);
            for _ in 0..num_points {
                let pair = parts
                    .next()
                    .ok_or_else(|| TraceError(format!("query {name}: truncated curve")))?;
                let (n, t) = pair
                    .split_once(':')
                    .ok_or_else(|| TraceError(format!("bad curve point {pair:?}")))?;
                actual_curve.push((parse_num(n, "curve count")?, parse_hex_f64(t)?));
            }
            if parts.next().is_some() {
                return Err(TraceError(format!("query {name}: trailing tokens")));
            }
            if feature_digest(&features) != digest {
                return Err(TraceError(format!(
                    "query {name}: feature digest mismatch (corrupt trace?)"
                )));
            }
            queries.push(TraceQuery {
                name,
                features,
                digest,
                actual_curve,
            });
        }

        let count_line = next("records count")?;
        let num_records: usize = parse_num(
            count_line
                .strip_prefix("records ")
                .ok_or_else(|| TraceError(format!("bad records line: {count_line:?}")))?,
            "record count",
        )?;
        let mut records = Vec::with_capacity(num_records);
        for _ in 0..num_records {
            let line = next("record line")?;
            let parts: Vec<&str> = line.split(' ').collect();
            if parts.len() != 12 || parts[0] != "r" {
                return Err(TraceError(format!("bad record line: {line:?}")));
            }
            let query: u32 = parse_num(parts[3], "query index")?;
            if query as usize >= queries.len() {
                return Err(TraceError(format!(
                    "record references query {query} of {}",
                    queries.len()
                )));
            }
            let flags: u32 = parse_num(parts[11], "flags")?;
            records.push(TraceRecord {
                seq: parse_num(parts[1], "seq")?,
                arrival_ns: parse_num(parts[2], "arrival")?,
                query,
                level: parse_num(parts[4], "level")?,
                tenant: parse_num(parts[5], "tenant")?,
                status: RequestStatus::from_code(parts[6])?,
                executors: parse_num(parts[7], "executors")?,
                predicted_secs: parse_hex_f64(parts[8])?,
                price: parse_hex_f64(parts[9])?,
                observed_latency_ns: parse_num(parts[10], "latency")?,
                missed: flags & FLAG_MISSED != 0,
                degraded: flags & FLAG_DEGRADED != 0,
                demoted: flags & FLAG_DEMOTED != 0,
            });
        }
        if next("end marker")? != "end" {
            return Err(TraceError("missing end marker".into()));
        }
        Ok(ServingTrace {
            meta: TraceMeta {
                family,
                model,
                objective,
                seed,
                candidate_counts,
                deadline_budgets_ns,
                slowdown_targets,
                unit_price,
            },
            queries,
            records,
        })
    }
}

/// Concurrent capture buffer: load-generator threads append records to
/// per-thread shards without contending; [`finish`](Self::finish)
/// restores submission order by `seq`.
#[derive(Debug)]
pub struct TraceRecorder {
    shards: Box<[Mutex<Vec<TraceRecord>>]>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self {
            shards: (0..DEFAULT_SHARDS)
                .map(|_| Mutex::new(Vec::new()))
                .collect(),
        }
    }

    /// Appends one record (thread-safe, shard per thread).
    pub fn record(&self, record: TraceRecord) {
        self.shards[thread_slot() % self.shards.len()]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push(record);
    }

    /// Records captured so far.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum()
    }

    /// True when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Moves the records out, sorted by [`TraceRecord::seq`].
    pub fn finish(&self) -> Vec<TraceRecord> {
        let mut records: Vec<TraceRecord> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let mut shard = shard.lock().unwrap_or_else(|poison| poison.into_inner());
            records.append(&mut shard);
        }
        records.sort_by_key(|r| r.seq);
        records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_trace() -> ServingTrace {
        let features = vec![1.5, -0.25, 3.75e9, f64::MIN_POSITIVE];
        let digest = feature_digest(&features);
        ServingTrace {
            meta: TraceMeta {
                family: "tpcds".into(),
                model: "m1".into(),
                objective: "elbow".into(),
                seed: 42,
                candidate_counts: vec![1, 2, 4, 8],
                deadline_budgets_ns: [250_000_000, 50_000_000, 10_000_000],
                slowdown_targets: [f64::INFINITY, 1.15, 1.05],
                unit_price: 1.0,
            },
            queries: vec![TraceQuery {
                name: "q7".into(),
                features,
                digest,
                actual_curve: vec![(1, 100.0), (2, 51.5), (4, 27.25), (8, 16.125)],
            }],
            records: vec![
                TraceRecord {
                    seq: 0,
                    arrival_ns: 0,
                    query: 0,
                    level: 2,
                    tenant: 1,
                    status: RequestStatus::Completed,
                    executors: 4,
                    predicted_secs: 27.0,
                    price: 29.3,
                    observed_latency_ns: 81_345,
                    missed: false,
                    degraded: false,
                    demoted: false,
                },
                TraceRecord {
                    seq: 1,
                    arrival_ns: 12_000,
                    query: 0,
                    level: 0,
                    tenant: 0,
                    status: RequestStatus::Shed,
                    executors: 0,
                    predicted_secs: 0.0,
                    price: 0.0,
                    observed_latency_ns: 0,
                    missed: false,
                    degraded: false,
                    demoted: true,
                },
            ],
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let trace = sample_trace();
        let text = trace.render();
        let parsed = ServingTrace::parse(&text).unwrap();
        assert_eq!(parsed, trace, "parse(render(t)) must equal t exactly");
        assert_eq!(
            parsed.render(),
            text,
            "render(parse(s)) must equal s exactly"
        );
        // Bit-exactness covers the infinity in the slowdown targets and
        // the subnormal feature.
        assert_eq!(
            parsed.meta.slowdown_targets[0].to_bits(),
            f64::INFINITY.to_bits()
        );
        assert_eq!(
            parsed.queries[0].features[3].to_bits(),
            f64::MIN_POSITIVE.to_bits()
        );
    }

    #[test]
    fn version_and_corruption_are_rejected() {
        let trace = sample_trace();
        let text = trace.render();
        let wrong_version = text.replacen("aeobs-trace v1", "aeobs-trace v9", 1);
        assert!(ServingTrace::parse(&wrong_version).is_err());
        assert!(ServingTrace::parse("not a trace").is_err());
        // Flip one feature bit: the digest check must catch it.
        let q_line = text.lines().nth(7).unwrap().to_string();
        assert!(q_line.starts_with("q "), "fixture layout changed: {q_line}");
        let corrupted_q = {
            let mut parts: Vec<String> = q_line.split(' ').map(String::from).collect();
            let bits = u64::from_str_radix(&parts[4], 16).unwrap() ^ 1;
            parts[4] = format!("{bits:016x}");
            parts.join(" ")
        };
        let corrupted = text.replacen(&q_line, &corrupted_q, 1);
        let err = ServingTrace::parse(&corrupted).unwrap_err();
        assert!(err.0.contains("digest mismatch"), "{err}");
        // Truncation.
        let truncated: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(ServingTrace::parse(&truncated).is_err());
    }

    #[test]
    fn tokens_are_sanitized() {
        let mut trace = sample_trace();
        trace.meta.family = "tp cds\n".into();
        trace.queries[0].name = "q 7".into();
        let parsed = ServingTrace::parse(&trace.render()).unwrap();
        assert_eq!(parsed.meta.family, "tp_cds_");
        assert_eq!(parsed.queries[0].name, "q_7");
    }

    #[test]
    fn recorder_restores_submission_order() {
        let recorder = std::sync::Arc::new(TraceRecorder::new());
        let template = sample_trace().records[0];
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let rec = std::sync::Arc::clone(&recorder);
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        rec.record(TraceRecord {
                            seq: t * 50 + i,
                            ..template
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let records = recorder.finish();
        assert_eq!(records.len(), 200);
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(recorder.is_empty(), "finish drains the recorder");
    }

    #[test]
    fn curve_lookup() {
        let trace = sample_trace();
        assert_eq!(trace.queries[0].actual_secs(4), Some(27.25));
        assert_eq!(trace.queries[0].actual_secs(5), None);
    }
}
