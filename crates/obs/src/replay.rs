//! Deterministic trace replay: re-drive a captured serving trace
//! through an alternative scheduler/model/pricing configuration —
//! without re-simulation — and diff the outcomes.
//!
//! Replay is a *pure function* of `(trace, policy, scorer)`:
//!
//! * the **scorer** re-decides each completed request from the captured
//!   feature vector (an alternative model, objective, candidate set, or
//!   pricing rule plugs in here);
//! * the chosen executor count is evaluated against the query's
//!   captured **ground-truth actual curve** `t_actual(n)` — no
//!   simulation runs at replay time;
//! * **SLO** flags reuse the captured serving latencies (scoring
//!   latency does not depend on the replayed policy) against the
//!   *policy's* deadline budgets, so tightening budgets reclassifies
//!   misses deterministically;
//! * **revenue** is `Σ price(served) − penalty_ratio · Σ price(missed)`.
//!
//! Admission outcomes (shed/dropped/throttled) are carried over from
//! capture: replay evaluates per-request *decisions*, not queueing
//! dynamics — re-running the arrival process would be re-simulation,
//! exactly what this mode avoids. The determinism gate in `bench_obs`
//! relies on purity: replaying a trace under its own capture
//! configuration must reproduce every captured outcome bit-identically
//! ([`ReplayRun::verify_against_capture`]).

use crate::trace::{RequestStatus, ServingTrace, TraceQuery, TRACE_LEVELS};
use crate::{escape_json, json_f64};

/// The replay-side configuration: deadline budgets and the revenue
/// penalty model. Build one from the trace for a baseline run, then
/// override fields for the alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayPolicy {
    /// Label used in reports and diffs.
    pub label: String,
    /// Per-level scoring deadline budgets (ns), indexed by
    /// service-level index.
    pub deadline_budgets_ns: [u64; TRACE_LEVELS],
    /// Revenue penalty per deadline miss, as a fraction of the missed
    /// request's price.
    pub miss_penalty_ratio: f64,
}

impl ReplayPolicy {
    /// The baseline policy: the trace's own budgets and a 25% miss
    /// penalty.
    pub fn baseline(trace: &ServingTrace) -> Self {
        Self {
            label: "baseline".to_string(),
            deadline_budgets_ns: trace.meta.deadline_budgets_ns,
            miss_penalty_ratio: 0.25,
        }
    }

    /// Renames the policy.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Overrides the deadline budgets.
    pub fn with_budgets_ns(mut self, budgets: [u64; TRACE_LEVELS]) -> Self {
        self.deadline_budgets_ns = budgets;
        self
    }
}

/// A scorer's decision for one replayed request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayScore {
    /// Chosen executor count.
    pub executors: u32,
    /// Predicted runtime at that count, seconds.
    pub predicted_secs: f64,
    /// Quoted price.
    pub price: f64,
}

/// One replayed request's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayOutcome {
    /// The captured record's sequence number.
    pub seq: u64,
    /// Carried-over admission status.
    pub status: RequestStatus,
    /// Requested service-level index.
    pub level: u8,
    /// Chosen executor count (0 when not completed or the scorer
    /// declined).
    pub executors: u32,
    /// Predicted runtime at `executors`, seconds.
    pub predicted_secs: f64,
    /// Quoted price.
    pub price: f64,
    /// Ground-truth runtime at `executors` from the captured curve
    /// (0.0 when the request did not complete or the count is off the
    /// curve — no ground truth).
    pub actual_secs: f64,
    /// Deadline miss under the replay policy's budgets.
    pub missed: bool,
}

/// Per-service-level SLO accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelSlo {
    /// Completed requests at this level.
    pub completed: u64,
    /// Completed requests past the policy's budget.
    pub misses: u64,
}

impl LevelSlo {
    /// Miss rate over completions (0.0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.misses as f64 / self.completed as f64
        }
    }
}

/// Aggregate SLO + accuracy + revenue report of one replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// The policy label.
    pub label: String,
    /// Total records replayed.
    pub requests: u64,
    /// Completed requests.
    pub completed: u64,
    /// Carried-over sheds.
    pub shed: u64,
    /// Carried-over drops.
    pub dropped: u64,
    /// Carried-over throttles.
    pub throttled: u64,
    /// Carried-over scoring errors plus scorer declines at replay time.
    pub errored: u64,
    /// SLO accounting per service level, indexed by level index.
    pub levels: [LevelSlo; TRACE_LEVELS],
    /// Number of residual samples (completions with an on-curve count).
    pub residual_samples: u64,
    /// Mean |predicted − actual| / actual over the residual samples.
    pub mean_abs_residual: f64,
    /// Mean signed residual (positive = over-prediction).
    pub mean_residual_bias: f64,
    /// Worst |relative residual|.
    pub max_abs_residual: f64,
    /// Σ price over completions.
    pub gross_revenue: f64,
    /// Σ penalty over misses.
    pub miss_penalties: f64,
    /// `gross_revenue − miss_penalties`.
    pub net_revenue: f64,
    /// Mean executors over completions.
    pub mean_executors: f64,
}

impl ReplayReport {
    /// Total deadline misses across levels.
    pub fn total_misses(&self) -> u64 {
        self.levels.iter().map(|l| l.misses).sum()
    }

    /// JSON object with the full report.
    pub fn to_json(&self) -> String {
        let levels: Vec<String> = self
            .levels
            .iter()
            .map(|l| {
                format!(
                    "{{\"completed\":{},\"misses\":{},\"miss_rate\":{}}}",
                    l.completed,
                    l.misses,
                    json_f64(l.miss_rate())
                )
            })
            .collect();
        format!(
            concat!(
                "{{\"label\":\"{}\",\"requests\":{},\"completed\":{},\"shed\":{},",
                "\"dropped\":{},\"throttled\":{},\"errored\":{},\"levels\":[{}],",
                "\"residual_samples\":{},\"mean_abs_residual\":{},",
                "\"mean_residual_bias\":{},\"max_abs_residual\":{},",
                "\"gross_revenue\":{},\"miss_penalties\":{},\"net_revenue\":{},",
                "\"mean_executors\":{}}}"
            ),
            escape_json(&self.label),
            self.requests,
            self.completed,
            self.shed,
            self.dropped,
            self.throttled,
            self.errored,
            levels.join(","),
            self.residual_samples,
            json_f64(self.mean_abs_residual),
            json_f64(self.mean_residual_bias),
            json_f64(self.max_abs_residual),
            json_f64(self.gross_revenue),
            json_f64(self.miss_penalties),
            json_f64(self.net_revenue),
            json_f64(self.mean_executors),
        )
    }
}

/// A completed replay: per-request outcomes plus the aggregate report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayRun {
    /// Per-request outcomes, in capture order.
    pub outcomes: Vec<ReplayOutcome>,
    /// The aggregate report.
    pub report: ReplayReport,
}

impl ReplayRun {
    /// The determinism gate: checks that this run (expected: a replay
    /// under the trace's own capture configuration) reproduced every
    /// captured completed-request outcome bit-identically — executor
    /// counts, predicted-runtime bits, price bits, and miss flags.
    /// Returns human-readable descriptions of every mismatch.
    pub fn verify_against_capture(&self, trace: &ServingTrace) -> Vec<String> {
        let mut mismatches = Vec::new();
        if self.outcomes.len() != trace.records.len() {
            mismatches.push(format!(
                "outcome count {} != record count {}",
                self.outcomes.len(),
                trace.records.len()
            ));
            return mismatches;
        }
        for (outcome, record) in self.outcomes.iter().zip(&trace.records) {
            if record.status != RequestStatus::Completed {
                continue;
            }
            if outcome.executors != record.executors {
                mismatches.push(format!(
                    "seq {}: executors {} != captured {}",
                    record.seq, outcome.executors, record.executors
                ));
            }
            if outcome.predicted_secs.to_bits() != record.predicted_secs.to_bits() {
                mismatches.push(format!(
                    "seq {}: predicted_secs {:e} != captured {:e} (bit mismatch)",
                    record.seq, outcome.predicted_secs, record.predicted_secs
                ));
            }
            if outcome.price.to_bits() != record.price.to_bits() {
                mismatches.push(format!(
                    "seq {}: price {:e} != captured {:e} (bit mismatch)",
                    record.seq, outcome.price, record.price
                ));
            }
            if outcome.missed != record.missed {
                mismatches.push(format!(
                    "seq {}: missed {} != captured {}",
                    record.seq, outcome.missed, record.missed
                ));
            }
        }
        mismatches
    }
}

/// Replays `trace` under `policy`, re-deciding each completed request
/// with `scorer(query_index, query)`. A scorer returning `None` counts
/// the request as errored. Pure: equal inputs give equal outputs.
pub fn replay<F>(trace: &ServingTrace, policy: &ReplayPolicy, mut scorer: F) -> ReplayRun
where
    F: FnMut(usize, &TraceQuery) -> Option<ReplayScore>,
{
    let mut outcomes = Vec::with_capacity(trace.records.len());
    let mut levels = [LevelSlo::default(); TRACE_LEVELS];
    let (mut completed, mut shed, mut dropped, mut throttled, mut errored) = (0u64, 0, 0, 0, 0);
    let mut residual_samples = 0u64;
    let (mut sum_abs, mut sum_signed, mut max_abs) = (0.0f64, 0.0f64, 0.0f64);
    let (mut gross, mut penalties) = (0.0f64, 0.0f64);
    let mut executor_sum = 0u64;

    for record in &trace.records {
        let level_idx = (record.level as usize).min(TRACE_LEVELS - 1);
        let mut outcome = ReplayOutcome {
            seq: record.seq,
            status: record.status,
            level: record.level,
            executors: 0,
            predicted_secs: 0.0,
            price: 0.0,
            actual_secs: 0.0,
            missed: false,
        };
        match record.status {
            RequestStatus::Shed => shed += 1,
            RequestStatus::Dropped => dropped += 1,
            RequestStatus::Throttled => throttled += 1,
            RequestStatus::Errored => errored += 1,
            RequestStatus::Completed => {
                let query = &trace.queries[record.query as usize];
                match scorer(record.query as usize, query) {
                    None => {
                        outcome.status = RequestStatus::Errored;
                        errored += 1;
                    }
                    Some(score) => {
                        completed += 1;
                        executor_sum += score.executors as u64;
                        outcome.executors = score.executors;
                        outcome.predicted_secs = score.predicted_secs;
                        outcome.price = score.price;
                        outcome.missed =
                            record.observed_latency_ns > policy.deadline_budgets_ns[level_idx];
                        levels[level_idx].completed += 1;
                        if outcome.missed {
                            levels[level_idx].misses += 1;
                            penalties += policy.miss_penalty_ratio * score.price;
                        }
                        gross += score.price;
                        if let Some(actual) = query.actual_secs(score.executors) {
                            outcome.actual_secs = actual;
                            if actual > 0.0 {
                                let rel = (score.predicted_secs - actual) / actual;
                                residual_samples += 1;
                                sum_abs += rel.abs();
                                sum_signed += rel;
                                if rel.abs() > max_abs {
                                    max_abs = rel.abs();
                                }
                            }
                        }
                    }
                }
            }
        }
        outcomes.push(outcome);
    }

    let report = ReplayReport {
        label: policy.label.clone(),
        requests: trace.records.len() as u64,
        completed,
        shed,
        dropped,
        throttled,
        errored,
        levels,
        residual_samples,
        mean_abs_residual: if residual_samples == 0 {
            0.0
        } else {
            sum_abs / residual_samples as f64
        },
        mean_residual_bias: if residual_samples == 0 {
            0.0
        } else {
            sum_signed / residual_samples as f64
        },
        max_abs_residual: max_abs,
        gross_revenue: gross,
        miss_penalties: penalties,
        net_revenue: gross - penalties,
        mean_executors: if completed == 0 {
            0.0
        } else {
            executor_sum as f64 / completed as f64
        },
    };
    ReplayRun { outcomes, report }
}

/// The deltas between two replay reports of the same trace (`candidate`
/// − `baseline`): the one-look answer to "what would this alternative
/// configuration have done to SLOs, accuracy, and revenue".
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayDiff {
    /// Baseline policy label.
    pub baseline: String,
    /// Candidate policy label.
    pub candidate: String,
    /// Per-level miss-rate deltas (candidate − baseline).
    pub miss_rate_delta: [f64; TRACE_LEVELS],
    /// Total-miss delta.
    pub misses_delta: i64,
    /// Mean-|residual| delta (accuracy; negative = candidate more
    /// accurate).
    pub mean_abs_residual_delta: f64,
    /// Mean-executors delta (resource footprint).
    pub mean_executors_delta: f64,
    /// Gross-revenue delta.
    pub gross_revenue_delta: f64,
    /// Net-revenue delta.
    pub net_revenue_delta: f64,
    /// Net-revenue delta as a fraction of the baseline's |net revenue|
    /// (0.0 when the baseline is 0).
    pub net_revenue_delta_frac: f64,
}

impl ReplayDiff {
    /// Computes `candidate − baseline`.
    pub fn between(baseline: &ReplayReport, candidate: &ReplayReport) -> Self {
        let miss_rate_delta = std::array::from_fn(|i| {
            candidate.levels[i].miss_rate() - baseline.levels[i].miss_rate()
        });
        let net_delta = candidate.net_revenue - baseline.net_revenue;
        Self {
            baseline: baseline.label.clone(),
            candidate: candidate.label.clone(),
            miss_rate_delta,
            misses_delta: candidate.total_misses() as i64 - baseline.total_misses() as i64,
            mean_abs_residual_delta: candidate.mean_abs_residual - baseline.mean_abs_residual,
            mean_executors_delta: candidate.mean_executors - baseline.mean_executors,
            gross_revenue_delta: candidate.gross_revenue - baseline.gross_revenue,
            net_revenue_delta: net_delta,
            net_revenue_delta_frac: if baseline.net_revenue.abs() > 0.0 {
                net_delta / baseline.net_revenue.abs()
            } else {
                0.0
            },
        }
    }

    /// JSON object with every delta.
    pub fn to_json(&self) -> String {
        let rates: Vec<String> = self.miss_rate_delta.iter().map(|&d| json_f64(d)).collect();
        format!(
            concat!(
                "{{\"baseline\":\"{}\",\"candidate\":\"{}\",\"miss_rate_delta\":[{}],",
                "\"misses_delta\":{},\"mean_abs_residual_delta\":{},",
                "\"mean_executors_delta\":{},\"gross_revenue_delta\":{},",
                "\"net_revenue_delta\":{},\"net_revenue_delta_frac\":{}}}"
            ),
            escape_json(&self.baseline),
            escape_json(&self.candidate),
            rates.join(","),
            self.misses_delta,
            json_f64(self.mean_abs_residual_delta),
            json_f64(self.mean_executors_delta),
            json_f64(self.gross_revenue_delta),
            json_f64(self.net_revenue_delta),
            json_f64(self.net_revenue_delta_frac),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{feature_digest, TraceMeta, TraceQuery, TraceRecord};

    fn two_query_trace() -> ServingTrace {
        let mk_query = |name: &str, base: f64| {
            let features = vec![base, base * 2.0];
            TraceQuery {
                digest: feature_digest(&features),
                name: name.into(),
                features,
                actual_curve: vec![(1, base), (2, base / 1.9), (4, base / 3.4)],
            }
        };
        let mk_record =
            |seq: u64, query: u32, level: u8, latency: u64, status: RequestStatus| TraceRecord {
                seq,
                arrival_ns: seq * 1_000,
                query,
                level,
                tenant: 0,
                status,
                executors: if status == RequestStatus::Completed {
                    2
                } else {
                    0
                },
                predicted_secs: 10.0,
                price: 8.0,
                observed_latency_ns: latency,
                missed: latency > [250_000_000u64, 50_000_000, 10_000_000][level as usize],
                degraded: false,
                demoted: false,
            };
        ServingTrace {
            meta: TraceMeta {
                family: "synthetic".into(),
                model: "m".into(),
                objective: "elbow".into(),
                seed: 7,
                candidate_counts: vec![1, 2, 4],
                deadline_budgets_ns: [250_000_000, 50_000_000, 10_000_000],
                slowdown_targets: [f64::INFINITY, 1.15, 1.05],
                unit_price: 1.0,
            },
            queries: vec![mk_query("qa", 20.0), mk_query("qb", 60.0)],
            records: vec![
                mk_record(0, 0, 2, 5_000_000, RequestStatus::Completed),
                mk_record(1, 1, 2, 60_000_000, RequestStatus::Completed), // miss at 10ms budget
                mk_record(2, 0, 0, 1_000_000, RequestStatus::Completed),
                mk_record(3, 1, 1, 0, RequestStatus::Shed),
                mk_record(4, 0, 1, 0, RequestStatus::Throttled),
            ],
        }
    }

    /// The "capture scorer": returns exactly what the trace recorded, as
    /// a baseline replay would.
    fn capture_scorer(
        trace: &ServingTrace,
    ) -> impl FnMut(usize, &TraceQuery) -> Option<ReplayScore> + '_ {
        let mut next = trace
            .records
            .iter()
            .filter(|r| r.status == RequestStatus::Completed)
            .map(|r| ReplayScore {
                executors: r.executors,
                predicted_secs: r.predicted_secs,
                price: r.price,
            })
            .collect::<Vec<_>>()
            .into_iter();
        move |_, _| next.next()
    }

    #[test]
    fn baseline_replay_reproduces_capture() {
        let trace = two_query_trace();
        let policy = ReplayPolicy::baseline(&trace);
        let run = replay(&trace, &policy, capture_scorer(&trace));
        assert!(run.verify_against_capture(&trace).is_empty());
        assert_eq!(run.report.requests, 5);
        assert_eq!(run.report.completed, 3);
        assert_eq!(run.report.shed, 1);
        assert_eq!(run.report.throttled, 1);
        assert_eq!(run.report.total_misses(), 1);
        assert_eq!(run.report.levels[2].completed, 2);
        assert_eq!(run.report.levels[2].misses, 1);
        // Revenue: 3 × 8.0 gross, one miss at 25% of 8.0 penalty.
        assert!((run.report.gross_revenue - 24.0).abs() < 1e-12);
        assert!((run.report.net_revenue - 22.0).abs() < 1e-12);
        // Residuals: predicted 10.0 vs actual at n=2.
        assert_eq!(run.report.residual_samples, 3);
        assert!(run.report.mean_abs_residual > 0.0);
        // Purity: replaying again gives the identical run.
        assert_eq!(run, replay(&trace, &policy, capture_scorer(&trace)));
    }

    #[test]
    fn verify_catches_every_field() {
        let trace = two_query_trace();
        let policy = ReplayPolicy::baseline(&trace);
        let mut run = replay(&trace, &policy, capture_scorer(&trace));
        run.outcomes[0].executors += 1;
        run.outcomes[1].predicted_secs += 1e-9;
        run.outcomes[2].missed = !run.outcomes[2].missed;
        let mismatches = run.verify_against_capture(&trace);
        assert_eq!(mismatches.len(), 3, "{mismatches:?}");
    }

    #[test]
    fn alternative_policy_shifts_slo_and_revenue() {
        let trace = two_query_trace();
        let baseline = replay(
            &trace,
            &ReplayPolicy::baseline(&trace),
            capture_scorer(&trace),
        );
        // Tighten every budget to 2 ms: more misses, more penalties.
        let strict_policy = ReplayPolicy::baseline(&trace)
            .with_label("strict")
            .with_budgets_ns([2_000_000; TRACE_LEVELS]);
        let strict = replay(&trace, &strict_policy, capture_scorer(&trace));
        assert!(strict.report.total_misses() > baseline.report.total_misses());
        assert!(strict.report.net_revenue < baseline.report.net_revenue);

        let diff = ReplayDiff::between(&baseline.report, &strict.report);
        assert_eq!(diff.baseline, "baseline");
        assert_eq!(diff.candidate, "strict");
        assert!(diff.misses_delta > 0);
        assert!(diff.net_revenue_delta < 0.0);
        assert!(diff.net_revenue_delta_frac < 0.0);
        assert!(diff.miss_rate_delta[2] > 0.0);
        let json = diff.to_json();
        assert!(json.contains("\"candidate\":\"strict\""));
        assert!(json.contains("misses_delta"));
    }

    #[test]
    fn alternative_scorer_changes_accuracy_and_footprint() {
        let trace = two_query_trace();
        let baseline = replay(
            &trace,
            &ReplayPolicy::baseline(&trace),
            capture_scorer(&trace),
        );
        // An "oracle" scorer that picks n = 4 and predicts the actual
        // runtime perfectly: residuals collapse to zero.
        let oracle_policy = ReplayPolicy::baseline(&trace).with_label("oracle");
        let oracle = replay(&trace, &oracle_policy, |_, q| {
            let actual = q.actual_secs(4)?;
            Some(ReplayScore {
                executors: 4,
                predicted_secs: actual,
                price: 4.0,
            })
        });
        assert_eq!(oracle.report.mean_abs_residual, 0.0);
        assert_eq!(oracle.report.mean_executors, 4.0);
        let diff = ReplayDiff::between(&baseline.report, &oracle.report);
        assert!(diff.mean_abs_residual_delta < 0.0);
        assert!(diff.mean_executors_delta > 0.0);
    }

    #[test]
    fn declining_scorer_counts_as_errored() {
        let trace = two_query_trace();
        let run = replay(&trace, &ReplayPolicy::baseline(&trace), |_, _| None);
        assert_eq!(run.report.completed, 0);
        assert_eq!(run.report.errored, 3);
        assert_eq!(run.outcomes[0].status, RequestStatus::Errored);
        assert_eq!(run.report.net_revenue, 0.0);
    }

    #[test]
    fn report_json_renders() {
        let trace = two_query_trace();
        let run = replay(
            &trace,
            &ReplayPolicy::baseline(&trace),
            capture_scorer(&trace),
        );
        let json = run.report.to_json();
        assert!(json.contains("\"label\":\"baseline\""));
        assert!(json.contains("\"requests\":5"));
        assert!(json.contains("\"levels\":["));
    }
}
