//! Lock-free histograms over fixed bucket ladders.
//!
//! Two ladder shapes cover every use in the workspace:
//!
//! * [`Ladder::LogLinear`] — an HdrHistogram-style log-linear ladder for
//!   latencies: each power-of-two octave is split into `2^sub_bits`
//!   equal-width sub-buckets, bounding the relative quantization error at
//!   `2^-sub_bits` (≈ 3.1% for the default `sub_bits = 5`) across the
//!   full `u64` range with a few KB of buckets.
//! * [`Ladder::Linear`] — fixed-width buckets with an offset, used for
//!   small-integer distributions such as worker batch sizes where every
//!   value gets its own exact bucket.
//!
//! [`AtomicHistogram`] is a plain array of `AtomicU64` bucket counters
//! plus an exact sum and an exact maximum (`fetch_max`); recording is
//! three relaxed atomic RMWs and never takes a lock. [`ShardedHistogram`]
//! spreads recorders over [`crate::DEFAULT_SHARDS`]
//! copies keyed by a dense per-thread slot so concurrent writers do not
//! contend on cache lines; snapshots merge the shards.
//!
//! **Merge invariant:** a [`HistogramSnapshot`] is a pure function of
//! (bucket counts, sum, max), and merging is element-wise addition plus
//! `max`. Percentiles computed from `N` merged per-thread histograms are
//! therefore *identical* to percentiles from one histogram that saw all
//! samples sequentially — pinned by the concurrency test below.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::{json_f64, thread_slot, DEFAULT_SHARDS};

/// A fixed bucket ladder: the shared shape of a histogram and all
/// snapshots merged from it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ladder {
    /// `buckets` fixed-width buckets: bucket `i` covers values
    /// `[offset + i·width, offset + (i+1)·width)`. Values below `offset`
    /// clamp into bucket 0, values off the top clamp into the last
    /// bucket.
    Linear {
        /// Lowest value of bucket 0.
        offset: u64,
        /// Width of every bucket (≥ 1).
        width: u64,
        /// Number of buckets (≥ 1).
        buckets: usize,
    },
    /// Log-linear ladder over the full `u64` range: values below
    /// `2^sub_bits` get exact unit buckets, and each subsequent octave
    /// `[2^m, 2^{m+1})` is split into `2^sub_bits` equal sub-buckets.
    LogLinear {
        /// Sub-bucket resolution per octave; relative error ≤ `2^-sub_bits`.
        sub_bits: u32,
    },
}

impl Ladder {
    /// The default latency ladder: log-linear with 32 sub-buckets per
    /// octave (≤ 3.125% relative error), covering the entire `u64`
    /// nanosecond range in 1920 buckets (15 KiB of counters).
    pub fn latency() -> Self {
        Ladder::LogLinear { sub_bits: 5 }
    }

    /// A linear ladder with one exact bucket per value in `1..=max`,
    /// matching the serving runtime's batch-size accounting (sizes beyond
    /// `max` clamp into the last bucket).
    pub fn batch_sizes(max: usize) -> Self {
        Ladder::Linear {
            offset: 1,
            width: 1,
            buckets: max.max(1),
        }
    }

    /// Total number of buckets in the ladder.
    pub fn num_buckets(&self) -> usize {
        match *self {
            Ladder::Linear { buckets, .. } => buckets.max(1),
            Ladder::LogLinear { sub_bits } => {
                let sub = sub_bits.min(16);
                // Octave of the MSB ranges over sub..=63; plus the exact
                // linear region [0, 2^sub).
                (((63 - sub) + 1) as usize + 1) << sub
            }
        }
    }

    /// Bucket index of `value` (always in range).
    pub fn index(&self, value: u64) -> usize {
        match *self {
            Ladder::Linear {
                offset,
                width,
                buckets,
            } => {
                let buckets = buckets.max(1);
                if value <= offset {
                    0
                } else {
                    (((value - offset) / width.max(1)) as usize).min(buckets - 1)
                }
            }
            Ladder::LogLinear { sub_bits } => {
                let sub = sub_bits.min(16);
                if value < (1u64 << sub) {
                    value as usize
                } else {
                    let msb = 63 - value.leading_zeros();
                    let shift = msb - sub;
                    let base = ((msb - sub + 1) as usize) << sub;
                    base + ((value >> shift) as usize - (1usize << sub))
                }
            }
        }
    }

    /// Lowest value mapping into bucket `idx`.
    pub fn bucket_low(&self, idx: usize) -> u64 {
        match *self {
            Ladder::Linear { offset, width, .. } => offset + idx as u64 * width.max(1),
            Ladder::LogLinear { sub_bits } => {
                let sub = sub_bits.min(16);
                let m = 1usize << sub;
                if idx < m {
                    idx as u64
                } else {
                    let octave = idx >> sub; // ≥ 1
                    let within = (idx & (m - 1)) as u64;
                    (m as u64 + within) << (octave - 1)
                }
            }
        }
    }

    /// Highest value mapping into bucket `idx` (saturates on the top
    /// bucket).
    pub fn bucket_high(&self, idx: usize) -> u64 {
        if idx + 1 >= self.num_buckets() {
            return u64::MAX;
        }
        self.bucket_low(idx + 1).saturating_sub(1)
    }
}

/// A lock-free histogram: bucket counters plus an exact sum and maximum.
/// Recording is three relaxed atomic read-modify-writes.
#[derive(Debug)]
pub struct AtomicHistogram {
    ladder: Ladder,
    counts: Box<[AtomicU64]>,
    sum: AtomicU64,
    max: AtomicU64,
}

impl AtomicHistogram {
    /// Creates an empty histogram over `ladder`.
    pub fn new(ladder: Ladder) -> Self {
        let counts = (0..ladder.num_buckets())
            .map(|_| AtomicU64::new(0))
            .collect();
        Self {
            ladder,
            counts,
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// The histogram's ladder.
    pub fn ladder(&self) -> Ladder {
        self.ladder
    }

    /// Records one value.
    ///
    /// Memory ordering: all updates are `Relaxed`. Each atomic is
    /// individually monotonic, so any snapshot is a valid (if possibly
    /// torn across *different* counters) state; no recording is ever
    /// lost or double-counted.
    pub fn record(&self, value: u64) {
        self.counts[self.ladder.index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Copies the counters into an immutable, mergeable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: Vec<u64> = self
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect();
        let count = counts.iter().sum();
        HistogramSnapshot {
            ladder: self.ladder,
            counts,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A histogram sharded over per-thread copies so concurrent recorders
/// never contend; [`ShardedHistogram::snapshot`] merges the shards.
#[derive(Debug)]
pub struct ShardedHistogram {
    shards: Box<[AtomicHistogram]>,
}

impl ShardedHistogram {
    /// Creates a histogram with [`DEFAULT_SHARDS`] shards.
    pub fn new(ladder: Ladder) -> Self {
        Self::with_shards(ladder, DEFAULT_SHARDS)
    }

    /// Creates a histogram with an explicit shard count (≥ 1).
    pub fn with_shards(ladder: Ladder, shards: usize) -> Self {
        Self {
            shards: (0..shards.max(1))
                .map(|_| AtomicHistogram::new(ladder))
                .collect(),
        }
    }

    /// The histogram's ladder.
    pub fn ladder(&self) -> Ladder {
        self.shards[0].ladder()
    }

    /// Records one value into the calling thread's shard.
    pub fn record(&self, value: u64) {
        self.shards[thread_slot() % self.shards.len()].record(value);
    }

    /// Records a duration as nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merged snapshot across all shards.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = self.shards[0].snapshot();
        for shard in &self.shards[1..] {
            merged.merge(&shard.snapshot());
        }
        merged
    }
}

/// An immutable copy of a histogram's counters. Snapshots over the same
/// ladder merge exactly; percentiles are pure functions of the merged
/// counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    ladder: Ladder,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot over `ladder`.
    pub fn empty(ladder: Ladder) -> Self {
        Self {
            ladder,
            counts: vec![0; ladder.num_buckets()],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// The ladder the counts are bucketed over.
    pub fn ladder(&self) -> Ladder {
        self.ladder
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum recorded value (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another snapshot's counts into this one.
    ///
    /// # Panics
    /// When the ladders differ — merged percentiles would be meaningless.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.ladder, other.ladder,
            "cannot merge histograms over different ladders"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Nearest-rank percentile (`p` in `[0, 1]`), reported as the upper
    /// bound of the bucket holding that rank, clamped to the exact
    /// recorded maximum. Returns 0 when empty. Quantization error is
    /// bounded by the ladder (≤ 3.125% for [`Ladder::latency`]).
    pub fn value_at_percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (idx, &bucket) in self.counts.iter().enumerate() {
            cumulative += bucket;
            if cumulative >= rank {
                return self.ladder.bucket_high(idx).min(self.max);
            }
        }
        self.max
    }

    /// Count/mean/p50/p90/p99/max as [`Duration`]s, interpreting the
    /// recorded values as nanoseconds.
    pub fn latency_stats(&self) -> LatencyStats {
        LatencyStats {
            count: self.count,
            mean: Duration::from_nanos(self.mean() as u64),
            p50: Duration::from_nanos(self.value_at_percentile(0.50)),
            p90: Duration::from_nanos(self.value_at_percentile(0.90)),
            p99: Duration::from_nanos(self.value_at_percentile(0.99)),
            max: Duration::from_nanos(self.max),
        }
    }

    /// Compact JSON object: count, sum, max, mean, the standard
    /// percentiles, and the non-empty buckets as `[low, count]` pairs.
    pub fn to_json(&self) -> String {
        let buckets: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(idx, &c)| format!("[{},{}]", self.ladder.bucket_low(idx), c))
            .collect();
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"buckets\":[{}]}}",
            self.count,
            self.sum,
            self.max,
            json_f64(self.mean()),
            self.value_at_percentile(0.50),
            self.value_at_percentile(0.90),
            self.value_at_percentile(0.99),
            buckets.join(",")
        )
    }
}

/// Percentile summary of a latency histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (nearest-rank, bucket-quantized).
    pub p50: Duration,
    /// 90th percentile.
    pub p90: Duration,
    /// 99th percentile.
    pub p99: Duration,
    /// Worst observed latency (exact).
    pub max: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn log_linear_indexing_is_monotone_and_tight() {
        let ladder = Ladder::latency();
        // The exact region: unit buckets.
        for v in 0..64u64 {
            let idx = ladder.index(v);
            assert!(ladder.bucket_low(idx) <= v && v <= ladder.bucket_high(idx));
        }
        // Spot values across octaves: containment and monotonicity.
        let mut last_idx = 0;
        for shift in 0..63u32 {
            let v = 1u64 << shift;
            for probe in [v, v + v / 3, (v << 1).saturating_sub(1)] {
                let idx = ladder.index(probe);
                assert!(idx < ladder.num_buckets());
                assert!(
                    ladder.bucket_low(idx) <= probe && probe <= ladder.bucket_high(idx),
                    "v={probe} idx={idx} low={} high={}",
                    ladder.bucket_low(idx),
                    ladder.bucket_high(idx)
                );
                assert!(idx >= last_idx);
                last_idx = idx;
            }
        }
        assert_eq!(ladder.index(u64::MAX), ladder.num_buckets() - 1);
    }

    #[test]
    fn log_linear_relative_error_is_bounded() {
        let ladder = Ladder::latency();
        for &v in &[100u64, 1_000, 12_345, 1_000_000, 987_654_321, u64::MAX / 3] {
            let idx = ladder.index(v);
            let (low, high) = (ladder.bucket_low(idx), ladder.bucket_high(idx));
            let width = high - low;
            assert!(
                (width as f64) <= 0.032 * low as f64,
                "bucket [{low}, {high}] too wide for {v}"
            );
        }
    }

    #[test]
    fn linear_ladder_matches_batch_size_semantics() {
        let ladder = Ladder::batch_sizes(4);
        assert_eq!(ladder.num_buckets(), 4);
        assert_eq!(ladder.index(0), 0); // clamp low
        assert_eq!(ladder.index(1), 0);
        assert_eq!(ladder.index(3), 2);
        assert_eq!(ladder.index(4), 3);
        assert_eq!(ladder.index(9), 3); // clamp high
        assert_eq!(ladder.bucket_low(2), 3);
        assert_eq!(ladder.bucket_high(2), 3);
    }

    #[test]
    fn percentiles_match_nearest_rank_on_exact_buckets() {
        // With unit-width buckets the histogram must reproduce the exact
        // nearest-rank percentiles of the sample set.
        let hist = AtomicHistogram::new(Ladder::Linear {
            offset: 0,
            width: 1,
            buckets: 2048,
        });
        for v in 1..=100u64 {
            hist.record(v);
        }
        hist.record(1000);
        let snap = hist.snapshot();
        assert_eq!(snap.count(), 101);
        assert_eq!(snap.value_at_percentile(0.50), 51);
        assert_eq!(snap.value_at_percentile(0.99), 100);
        assert_eq!(snap.max(), 1000);
        assert!((snap.mean() - (5050.0 + 1000.0) / 101.0).abs() < 1e-9);
    }

    #[test]
    fn concurrent_recording_matches_sequential_merge() {
        // Satellite: N threads hammering one sharded histogram must
        // produce the exact same snapshot as one thread recording the
        // same multiset of values sequentially.
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 5_000;
        let sharded = Arc::new(ShardedHistogram::new(Ladder::latency()));
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let hist = Arc::clone(&sharded);
                std::thread::spawn(move || {
                    // Deterministic pseudo-random values, disjoint per thread.
                    let mut state = 0x9e3779b97f4a7c15u64.wrapping_mul(t + 1);
                    for _ in 0..PER_THREAD {
                        state ^= state << 13;
                        state ^= state >> 7;
                        state ^= state << 17;
                        hist.record(state % 50_000_000);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let sequential = AtomicHistogram::new(Ladder::latency());
        for t in 0..THREADS {
            let mut state = 0x9e3779b97f4a7c15u64.wrapping_mul(t + 1);
            for _ in 0..PER_THREAD {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                sequential.record(state % 50_000_000);
            }
        }

        assert_eq!(sharded.snapshot(), sequential.snapshot());
    }

    #[test]
    fn merge_rejects_ladder_mismatch() {
        let a = HistogramSnapshot::empty(Ladder::latency());
        let b = HistogramSnapshot::empty(Ladder::batch_sizes(8));
        let result = std::panic::catch_unwind(move || {
            let mut a = a;
            a.merge(&b);
        });
        assert!(result.is_err());
    }

    #[test]
    fn empty_snapshot_is_all_zeroes() {
        let snap = ShardedHistogram::new(Ladder::latency()).snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.value_at_percentile(0.99), 0);
        let stats = snap.latency_stats();
        assert_eq!(stats.max, Duration::ZERO);
        assert_eq!(stats.count, 0);
    }

    #[test]
    fn json_lists_only_nonempty_buckets() {
        let hist = AtomicHistogram::new(Ladder::batch_sizes(4));
        hist.record(2);
        hist.record(2);
        hist.record(9);
        let json = hist.snapshot().to_json();
        assert!(json.contains("\"count\":3"));
        assert!(json.contains("[2,2]"));
        assert!(json.contains("[4,1]"));
    }
}
