//! Unified observability for the AutoExecutor reproduction: lock-free
//! metrics, structured event tracing, and deterministic serving-trace
//! capture/replay.
//!
//! The paper's premise is choosing executor counts from *predicted*
//! price-performance curves; this crate is how the system observes how
//! those predictions fare against reality. It is deliberately a leaf
//! crate with **zero dependencies** (not even the workspace shims) so the
//! engine, the serving runtime, the PPM layer, and the bench harness can
//! all instrument through it without cycles.
//!
//! Three subsystems:
//!
//! * **Metrics** ([`metrics`], [`hist`], [`drift`]) — atomic counters and
//!   gauges, lock-free log-linear latency histograms with mergeable
//!   snapshots (p50/p90/p99/max), observed-vs-predicted residual trackers
//!   (the drift signal), all held in a sharded [`MetricsRegistry`]. Hot
//!   paths touch only pre-registered `Arc` handles; the registry itself is
//!   only locked at registration and snapshot time.
//! * **Events** ([`events`]) — a bounded, thread-sharded [`EventSink`]
//!   recording typed events (admission, shed, demotion, batch drain,
//!   breaker transitions, fault revocations/reaps/retries, model swaps)
//!   with monotonic timestamps and a JSON export. Overflow drops the
//!   oldest events and counts the drops; recording never blocks on a
//!   contended lock in steady state.
//! * **Traces** ([`trace`], [`mod@replay`]) — a compact, versioned,
//!   bit-exact serving-trace format (every request's envelope and
//!   outcome) plus a replay evaluator that re-drives a captured trace
//!   through an alternative scheduler/model/pricing configuration
//!   *without re-simulation* and diffs SLO, accuracy, and revenue.
//!
//! Everything here is plain `std`: `AtomicU64`, short uncontended
//! `Mutex` sections, and hand-rolled serialization (floats travel as
//! `f64::to_bits` hex, so capture → serialize → parse → replay is
//! bit-identical by construction).

pub mod drift;
pub mod events;
pub mod hist;
pub mod metrics;
pub mod replay;
pub mod trace;

pub use drift::{DriftSignal, ResidualTracker};
pub use events::{Event, EventKind, EventSink, FaultClass};
pub use hist::{AtomicHistogram, HistogramSnapshot, Ladder, LatencyStats, ShardedHistogram};
pub use metrics::{Counter, Gauge, MetricSource, MetricValue, MetricsRegistry, MetricsSnapshot};
pub use replay::{
    replay, LevelSlo, ReplayDiff, ReplayOutcome, ReplayPolicy, ReplayReport, ReplayRun, ReplayScore,
};
pub use trace::{
    feature_digest, RequestStatus, ServingTrace, TraceError, TraceMeta, TraceQuery, TraceRecord,
    TraceRecorder, TRACE_FORMAT_VERSION, TRACE_LEVELS,
};

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of shards used by [`ShardedHistogram`], [`EventSink`], and
/// [`TraceRecorder`]. Eight is enough that a handful of worker plus
/// load-generator threads land on distinct shards with high probability.
pub const DEFAULT_SHARDS: usize = 8;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// A small dense per-thread index (0, 1, 2, … in first-use order), used to
/// pick shards so that each thread keeps hitting the same uncontended
/// shard. Unlike hashing `ThreadId`, consecutive threads never collide
/// until there are more threads than shards.
pub(crate) fn thread_slot() -> usize {
    THREAD_SLOT.with(|slot| *slot)
}

/// Escapes `s` for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats `v` as a JSON number (Rust's `Display` for `f64` is
/// shortest-roundtrip). Non-finite values become `null`, which JSON
/// cannot represent as numbers.
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_slots_are_dense_and_stable() {
        let here = thread_slot();
        assert_eq!(here, thread_slot(), "slot must be stable per thread");
        let other = std::thread::spawn(thread_slot).join().unwrap();
        assert_ne!(here, other, "distinct threads get distinct slots");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }
}
