//! Structured event tracing: a bounded, thread-sharded sink of typed
//! events with monotonic timestamps.
//!
//! Events answer the *sequence* questions counters cannot: did the
//! breaker trip before or after the shed burst? how many batch drains
//! separated a model swap from the first demotion? The sink is bounded —
//! each shard keeps a ring of the most recent events and counts what it
//! evicted — so an instrumented runtime can run forever without growing.
//!
//! Timestamps are monotonic nanoseconds from the sink's creation
//! ([`EventSink::record`]); simulated components stamp their own clocks
//! via [`EventSink::record_at`] (the engine records sim-time seconds
//! scaled to nanoseconds). Recording locks only the calling thread's
//! shard — a different shard per thread up to
//! [`crate::DEFAULT_SHARDS`] — so the lock is
//! uncontended in steady state.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::{escape_json, thread_slot, DEFAULT_SHARDS};

/// Which fault struck an executor (mirrors the engine's `FaultKind`
/// without depending on the engine crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Spot-instance preemption of a single executor.
    Preemption,
    /// Loss of a node and every executor on it.
    NodeLoss,
}

impl FaultClass {
    fn name(self) -> &'static str {
        match self {
            FaultClass::Preemption => "preemption",
            FaultClass::NodeLoss => "node_loss",
        }
    }
}

/// A typed event. Levels are `ServiceLevel::index()` values (0 =
/// best-effort, 2 = interactive); executor/stage/task indices are the
/// engine's.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A request was admitted: `queued` distinguishes the worker queue
    /// path from the inline idle shortcut.
    Admission {
        /// Admitted service level (after any demotion).
        level: u8,
        /// True when enqueued for a worker, false for inline scoring.
        queued: bool,
    },
    /// A queued request was evicted to make room under saturation.
    Shed {
        /// Level the victim was queued at.
        level: u8,
    },
    /// A request was rejected outright (queue full, no shed candidate).
    Dropped {
        /// Level of the rejected request.
        level: u8,
    },
    /// The tenant governor demoted an over-rate request to best-effort.
    Demotion {
        /// The level the request asked for.
        from_level: u8,
    },
    /// The tenant governor rejected an over-rate request.
    Throttle,
    /// A worker drained one batch from the queues.
    BatchDrain {
        /// Requests in the batch.
        size: u32,
        /// Requests still pending after the drain.
        backlog: u32,
    },
    /// The circuit breaker tripped open (threshold reached or a
    /// half-open probe failed).
    BreakerTrip,
    /// A half-open probe succeeded; the breaker closed again.
    BreakerRecovered,
    /// The runtime observed a new model registration and swapped its
    /// cached decode (RCU swap).
    ModelSwap,
    /// A fault announcement revoked an executor (grace window starts).
    FaultRevocation {
        /// What kind of fault.
        kind: FaultClass,
        /// Engine executor index.
        executor: u32,
    },
    /// The grace window expired; tasks still on the executor were lost.
    FaultReap {
        /// Engine executor index.
        executor: u32,
        /// Tasks lost and queued for retry.
        tasks_lost: u32,
    },
    /// A lost task was re-scheduled onto a surviving executor.
    FaultRetry {
        /// Stage of the retried task.
        stage: u32,
        /// Task index within the stage.
        task: u32,
    },
    /// A replacement executor was requested after a revocation.
    FaultReplacement {
        /// Engine executor index of the revoked executor.
        executor: u32,
    },
    /// A task drew a straggler multiplier (> 1×) at schedule time.
    Straggler {
        /// Stage of the straggling task.
        stage: u32,
        /// Task index within the stage.
        task: u32,
    },
    /// A simulated query run finished.
    RunOutcome {
        /// True when every task completed; false for failed runs.
        completed: bool,
    },
    /// The fleet steal coordinator migrated queued requests from an
    /// overloaded shard to an underloaded one.
    WorkSteal {
        /// Shard index the requests were stolen from (the victim).
        from_shard: u16,
        /// Shard index the requests were injected into (the thief).
        to_shard: u16,
        /// Requests migrated in this steal operation.
        count: u32,
    },
    /// The serving runtime began shutdown.
    Shutdown,
    /// The fleet health monitor quarantined a shard: it was removed from
    /// the routing ring and its non-interactive backlog was evacuated.
    ShardQuarantine {
        /// Index of the quarantined shard.
        shard: u16,
    },
    /// A probationary shard passed its trickle-traffic checks and was
    /// re-inserted into the routing ring.
    ShardRecover {
        /// Index of the recovered shard.
        shard: u16,
    },
    /// A failed request was re-submitted to a different shard under the
    /// fleet's cross-shard retry budget.
    FailoverRetry {
        /// Shard whose attempt failed.
        from_shard: u16,
        /// Shard the request was retried on.
        to_shard: u16,
    },
    /// Quarantine evacuated a batch of queued requests from a shard into
    /// survivors (never `Interactive` entries).
    BacklogEvacuation {
        /// Shard the backlog was evacuated from.
        from_shard: u16,
        /// Requests moved to surviving shards.
        count: u32,
    },
}

impl EventKind {
    /// The event's type tag as used in the JSON export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Admission { .. } => "admission",
            EventKind::Shed { .. } => "shed",
            EventKind::Dropped { .. } => "dropped",
            EventKind::Demotion { .. } => "demotion",
            EventKind::Throttle => "throttle",
            EventKind::BatchDrain { .. } => "batch_drain",
            EventKind::BreakerTrip => "breaker_trip",
            EventKind::BreakerRecovered => "breaker_recovered",
            EventKind::ModelSwap => "model_swap",
            EventKind::FaultRevocation { .. } => "fault_revocation",
            EventKind::FaultReap { .. } => "fault_reap",
            EventKind::FaultRetry { .. } => "fault_retry",
            EventKind::FaultReplacement { .. } => "fault_replacement",
            EventKind::Straggler { .. } => "straggler",
            EventKind::RunOutcome { .. } => "run_outcome",
            EventKind::WorkSteal { .. } => "work_steal",
            EventKind::Shutdown => "shutdown",
            EventKind::ShardQuarantine { .. } => "shard_quarantine",
            EventKind::ShardRecover { .. } => "shard_recover",
            EventKind::FailoverRetry { .. } => "failover_retry",
            EventKind::BacklogEvacuation { .. } => "backlog_evacuation",
        }
    }

    fn fields_json(&self) -> String {
        match *self {
            EventKind::Admission { level, queued } => {
                format!(",\"level\":{level},\"queued\":{queued}")
            }
            EventKind::Shed { level } | EventKind::Dropped { level } => {
                format!(",\"level\":{level}")
            }
            EventKind::Demotion { from_level } => format!(",\"from_level\":{from_level}"),
            EventKind::BatchDrain { size, backlog } => {
                format!(",\"size\":{size},\"backlog\":{backlog}")
            }
            EventKind::FaultRevocation { kind, executor } => {
                format!(",\"fault\":\"{}\",\"executor\":{executor}", kind.name())
            }
            EventKind::FaultReap {
                executor,
                tasks_lost,
            } => {
                format!(",\"executor\":{executor},\"tasks_lost\":{tasks_lost}")
            }
            EventKind::FaultRetry { stage, task } | EventKind::Straggler { stage, task } => {
                format!(",\"stage\":{stage},\"task\":{task}")
            }
            EventKind::FaultReplacement { executor } => format!(",\"executor\":{executor}"),
            EventKind::RunOutcome { completed } => format!(",\"completed\":{completed}"),
            EventKind::WorkSteal {
                from_shard,
                to_shard,
                count,
            } => {
                format!(",\"from_shard\":{from_shard},\"to_shard\":{to_shard},\"count\":{count}")
            }
            EventKind::ShardQuarantine { shard } | EventKind::ShardRecover { shard } => {
                format!(",\"shard\":{shard}")
            }
            EventKind::FailoverRetry {
                from_shard,
                to_shard,
            } => {
                format!(",\"from_shard\":{from_shard},\"to_shard\":{to_shard}")
            }
            EventKind::BacklogEvacuation { from_shard, count } => {
                format!(",\"from_shard\":{from_shard},\"count\":{count}")
            }
            EventKind::Throttle
            | EventKind::BreakerTrip
            | EventKind::BreakerRecovered
            | EventKind::ModelSwap
            | EventKind::Shutdown => String::new(),
        }
    }
}

/// One recorded event: a timestamp, a global sequence number (total
/// order of recording), and the typed payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds: monotonic since sink creation for wall-clock
    /// recorders, or the caller's own clock via `record_at`.
    pub ts_ns: u64,
    /// Global recording sequence number (gap-free only while nothing is
    /// evicted).
    pub seq: u64,
    /// The typed payload.
    pub kind: EventKind,
}

impl Event {
    /// JSON object for this event: `ts_ns`, `seq`, `type`, payload
    /// fields.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"ts_ns\":{},\"seq\":{},\"type\":\"{}\"{}}}",
            self.ts_ns,
            self.seq,
            escape_json(self.kind.name()),
            self.kind.fields_json()
        )
    }
}

struct Shard {
    ring: VecDeque<Event>,
}

/// A bounded, thread-sharded event sink. See the module docs.
pub struct EventSink {
    epoch: Instant,
    shards: Box<[Mutex<Shard>]>,
    per_shard_capacity: usize,
    seq: AtomicU64,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for EventSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventSink")
            .field("capacity", &(self.per_shard_capacity * self.shards.len()))
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

impl EventSink {
    /// Creates a sink retaining at most `capacity` events in total
    /// (split evenly across [`DEFAULT_SHARDS`] shards; at least one per
    /// shard). Older events are evicted, and counted, on overflow.
    pub fn new(capacity: usize) -> Self {
        let per_shard_capacity = capacity.div_ceil(DEFAULT_SHARDS).max(1);
        Self {
            epoch: Instant::now(),
            shards: (0..DEFAULT_SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        ring: VecDeque::with_capacity(per_shard_capacity.min(1024)),
                    })
                })
                .collect(),
            per_shard_capacity,
            seq: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Records `kind` stamped with the monotonic time since sink
    /// creation.
    pub fn record(&self, kind: EventKind) {
        let ts_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.record_at(ts_ns, kind);
    }

    /// Records `kind` with a caller-supplied timestamp (e.g. simulated
    /// time). Timestamps only need to be meaningful to the caller; the
    /// export sorts by `(ts_ns, seq)`.
    pub fn record_at(&self, ts_ns: u64, kind: EventKind) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let event = Event { ts_ns, seq, kind };
        let mut shard = self.shards[thread_slot() % self.shards.len()]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        if shard.ring.len() >= self.per_shard_capacity {
            shard.ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        shard.ring.push_back(event);
        drop(shard);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Total events ever recorded (including later-evicted ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Events evicted by the bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Events currently retained.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).ring.len())
            .sum()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the retained events, sorted by `(ts_ns, seq)`.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut events: Vec<Event> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let shard = shard.lock().unwrap_or_else(|poison| poison.into_inner());
            events.extend(shard.ring.iter().copied());
        }
        events.sort_by_key(|e| (e.ts_ns, e.seq));
        events
    }

    /// Moves the retained events out (sorted like
    /// [`snapshot`](Self::snapshot)), leaving the sink empty.
    pub fn drain(&self) -> Vec<Event> {
        let mut events: Vec<Event> = Vec::with_capacity(self.len());
        for shard in self.shards.iter() {
            let mut shard = shard.lock().unwrap_or_else(|poison| poison.into_inner());
            events.extend(shard.ring.drain(..));
        }
        events.sort_by_key(|e| (e.ts_ns, e.seq));
        events
    }

    /// Renders a slice of events as a JSON array.
    pub fn to_json(events: &[Event]) -> String {
        let items: Vec<String> = events.iter().map(Event::to_json).collect();
        format!("[{}]", items.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_sorted_and_typed() {
        let sink = EventSink::new(64);
        sink.record_at(30, EventKind::BreakerTrip);
        sink.record_at(
            10,
            EventKind::Admission {
                level: 2,
                queued: true,
            },
        );
        sink.record_at(
            20,
            EventKind::BatchDrain {
                size: 8,
                backlog: 3,
            },
        );
        let events = sink.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].ts_ns, 10);
        assert_eq!(events[0].kind.name(), "admission");
        assert_eq!(events[2].kind, EventKind::BreakerTrip);
        let json = EventSink::to_json(&events);
        assert!(json.starts_with('['));
        assert!(json.contains("\"type\":\"batch_drain\",\"size\":8,\"backlog\":3"));
        assert!(json.contains("\"level\":2,\"queued\":true"));
    }

    #[test]
    fn overflow_evicts_oldest_and_counts() {
        let sink = EventSink::new(8); // 1 slot per shard
        for i in 0..20u64 {
            sink.record_at(i, EventKind::Throttle);
        }
        assert_eq!(sink.recorded(), 20);
        assert_eq!(sink.dropped() as usize, 20 - sink.len());
        assert!(sink.len() <= 8);
        // The single-threaded recorder maps to one shard: it retains
        // exactly the newest event of that shard.
        assert!(sink.snapshot().last().unwrap().ts_ns == 19);
    }

    #[test]
    fn drain_empties_the_sink() {
        let sink = EventSink::new(16);
        sink.record(EventKind::ModelSwap);
        sink.record(EventKind::Shutdown);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert!(sink.is_empty());
        assert_eq!(sink.recorded(), 2, "drain does not reset the totals");
    }

    #[test]
    fn wall_clock_timestamps_are_monotone_per_thread() {
        let sink = EventSink::new(16);
        sink.record(EventKind::BreakerRecovered);
        sink.record(EventKind::BreakerTrip);
        let events = sink.snapshot();
        assert!(events[0].ts_ns <= events[1].ts_ns);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn fault_event_payloads_render() {
        // Capacity is split per shard; one thread records into a single
        // shard, so give that shard room for all three events.
        let sink = EventSink::new(64);
        sink.record_at(
            1,
            EventKind::FaultRevocation {
                kind: FaultClass::NodeLoss,
                executor: 4,
            },
        );
        sink.record_at(
            2,
            EventKind::FaultReap {
                executor: 4,
                tasks_lost: 3,
            },
        );
        sink.record_at(3, EventKind::FaultRetry { stage: 1, task: 7 });
        let json = EventSink::to_json(&sink.snapshot());
        assert!(json.contains("\"fault\":\"node_loss\",\"executor\":4"));
        assert!(json.contains("\"executor\":4,\"tasks_lost\":3"));
        assert!(json.contains("\"stage\":1,\"task\":7"));
    }

    #[test]
    fn resilience_payloads_render() {
        let sink = EventSink::new(64);
        sink.record_at(1, EventKind::ShardQuarantine { shard: 2 });
        sink.record_at(
            2,
            EventKind::BacklogEvacuation {
                from_shard: 2,
                count: 37,
            },
        );
        sink.record_at(
            3,
            EventKind::FailoverRetry {
                from_shard: 2,
                to_shard: 0,
            },
        );
        sink.record_at(4, EventKind::ShardRecover { shard: 2 });
        let events = sink.snapshot();
        assert_eq!(events[0].kind.name(), "shard_quarantine");
        assert_eq!(events[3].kind.name(), "shard_recover");
        let json = EventSink::to_json(&events);
        assert!(json.contains("\"type\":\"shard_quarantine\",\"shard\":2"));
        assert!(json.contains("\"type\":\"backlog_evacuation\",\"from_shard\":2,\"count\":37"));
        assert!(json.contains("\"type\":\"failover_retry\",\"from_shard\":2,\"to_shard\":0"));
        assert!(json.contains("\"type\":\"shard_recover\",\"shard\":2"));
    }

    #[test]
    fn work_steal_payload_renders() {
        let sink = EventSink::new(16);
        sink.record_at(
            1,
            EventKind::WorkSteal {
                from_shard: 3,
                to_shard: 0,
                count: 12,
            },
        );
        let events = sink.snapshot();
        assert_eq!(events[0].kind.name(), "work_steal");
        let json = EventSink::to_json(&events);
        assert!(
            json.contains("\"type\":\"work_steal\",\"from_shard\":3,\"to_shard\":0,\"count\":12")
        );
    }
}
