//! The sharded metrics registry: named counters, gauges, histograms,
//! and residual trackers.
//!
//! The registry exists so that *reading* telemetry is one call
//! ([`MetricsRegistry::snapshot`]) while *writing* it costs nothing
//! beyond the instrument itself: `counter()`/`histogram()`/`residual()`
//! hand back `Arc` handles at registration time (cold), and hot paths
//! only ever touch those handles — never the registry's locks. The name
//! map is additionally sharded by a name hash so even concurrent
//! registration bursts (e.g. many runtimes starting at once) do not
//! serialize on one lock.
//!
//! Components that already keep their own atomic counters (like the
//! serving runtime's `RuntimeStats`) plug in as a [`MetricSource`]: a
//! callback collected at snapshot time, so existing hot paths gain
//! observability without double-counting or extra writes.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::drift::{DriftSignal, ResidualTracker};
use crate::hist::{HistogramSnapshot, Ladder, ShardedHistogram};
use crate::{escape_json, json_f64};

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter. All operations are `Relaxed`
/// atomics: individually monotonic, cheap, and never a synchronization
/// point.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` gauge (stored as bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at 0.0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replaces the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One collected metric value in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotonic counter.
    Counter(u64),
    /// A last-write-wins gauge.
    Gauge(f64),
    /// A full histogram snapshot.
    Histogram(HistogramSnapshot),
    /// A drift-signal summary.
    Drift(DriftSignal),
}

/// A provider of externally-owned metrics, collected at snapshot time.
/// Implementors must not block; they are called under no registry lock.
pub trait MetricSource: Send + Sync {
    /// Appends `(name, value)` pairs to `out`.
    fn collect(&self, out: &mut Vec<(String, MetricValue)>);
}

#[derive(Clone)]
enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<ShardedHistogram>),
    Residual(Arc<ResidualTracker>),
}

const REGISTRY_SHARDS: usize = 8;

/// The process-wide (or per-deployment) metric namespace. Cheap to share
/// as an `Arc`; see the module docs for the locking contract.
pub struct MetricsRegistry {
    shards: [Mutex<BTreeMap<String, Instrument>>; REGISTRY_SHARDS],
    sources: Mutex<Vec<Box<dyn MetricSource>>>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let named: usize = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|p| p.into_inner()).len())
            .sum();
        f.debug_struct("MetricsRegistry")
            .field("instruments", &named)
            .finish()
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn name_shard(name: &str) -> usize {
    // FNV-1a over the name bytes.
    let mut hash = 0xcbf29ce484222325u64;
    for &b in name.as_bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    (hash % REGISTRY_SHARDS as u64) as usize
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(BTreeMap::new())),
            sources: Mutex::new(Vec::new()),
        }
    }

    fn instrument<F: FnOnce() -> Instrument>(&self, name: &str, make: F) -> Instrument {
        let mut shard = self.shards[name_shard(name)]
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        shard.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Returns (registering on first use) the counter named `name`.
    /// Re-registration under a different instrument kind panics — names
    /// are typed.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.instrument(name, || Instrument::Counter(Arc::new(Counter::new()))) {
            Instrument::Counter(c) => c,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.instrument(name, || Instrument::Gauge(Arc::new(Gauge::new()))) {
            Instrument::Gauge(g) => g,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the sharded histogram named
    /// `name` over `ladder`. The ladder only applies on first
    /// registration; later callers get the existing instrument.
    pub fn histogram(&self, name: &str, ladder: Ladder) -> Arc<ShardedHistogram> {
        match self.instrument(name, || {
            Instrument::Histogram(Arc::new(ShardedHistogram::new(ladder)))
        }) {
            Instrument::Histogram(h) => h,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Returns (registering on first use) the residual tracker named
    /// `name` — the observed-vs-predicted drift signal.
    pub fn residual(&self, name: &str) -> Arc<ResidualTracker> {
        match self.instrument(name, || {
            Instrument::Residual(Arc::new(ResidualTracker::new()))
        }) {
            Instrument::Residual(r) => r,
            _ => panic!("metric {name:?} already registered with a different kind"),
        }
    }

    /// Registers an externally-owned metric provider, polled on every
    /// [`snapshot`](Self::snapshot). Use a `Weak` inside the source when
    /// the provider also holds this registry, to avoid a reference cycle.
    pub fn register_source(&self, source: Box<dyn MetricSource>) {
        self.sources
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
            .push(source);
    }

    /// Collects every registered instrument and source into a sorted,
    /// immutable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut values: Vec<(String, MetricValue)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().unwrap_or_else(|poison| poison.into_inner());
            for (name, instrument) in shard.iter() {
                let value = match instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    Instrument::Residual(r) => MetricValue::Drift(r.signal()),
                };
                values.push((name.clone(), value));
            }
        }
        // Collect sources outside the shard locks.
        let sources = self
            .sources
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        for source in sources.iter() {
            source.collect(&mut values);
        }
        drop(sources);
        values.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot { values }
    }
}

/// A sorted point-in-time copy of every metric in a registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    values: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    /// All `(name, value)` pairs, sorted by name.
    pub fn values(&self) -> &[(String, MetricValue)] {
        &self.values
    }

    /// Looks up one metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|idx| &self.values[idx].1)
    }

    /// Convenience: the value of a counter metric, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// JSON object keyed by metric name. Counters and gauges are bare
    /// numbers; histograms and drift signals are nested objects.
    pub fn to_json(&self) -> String {
        let fields: Vec<String> = self
            .values
            .iter()
            .map(|(name, value)| {
                let rendered = match value {
                    MetricValue::Counter(v) => format!("{v}"),
                    MetricValue::Gauge(v) => json_f64(*v),
                    MetricValue::Histogram(h) => h.to_json(),
                    MetricValue::Drift(d) => d.to_json(),
                };
                format!("\"{}\":{}", escape_json(name), rendered)
            })
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_shared_and_typed() {
        let registry = MetricsRegistry::new();
        let a = registry.counter("requests");
        let b = registry.counter("requests");
        a.inc();
        b.add(2);
        assert_eq!(registry.snapshot().counter("requests"), Some(3));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted_and_queryable() {
        let registry = MetricsRegistry::new();
        registry.counter("z.last").inc();
        registry.gauge("a.first").set(2.5);
        registry.histogram("m.hist", Ladder::latency()).record(1000);
        registry.residual("m.drift").record(1.1, 1.0);
        let snap = registry.snapshot();
        let names: Vec<&str> = snap.values().iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert_eq!(snap.counter("z.last"), Some(1));
        assert!(matches!(snap.get("a.first"), Some(MetricValue::Gauge(v)) if *v == 2.5));
        assert!(matches!(snap.get("m.hist"), Some(MetricValue::Histogram(h)) if h.count() == 1));
        assert!(matches!(snap.get("m.drift"), Some(MetricValue::Drift(d)) if d.samples == 1));
        let json = snap.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"z.last\":1"));
    }

    #[test]
    fn sources_are_polled_at_snapshot_time() {
        struct Fixed;
        impl MetricSource for Fixed {
            fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
                out.push(("ext.requests".into(), MetricValue::Counter(7)));
            }
        }
        let registry = MetricsRegistry::new();
        registry.register_source(Box::new(Fixed));
        assert_eq!(registry.snapshot().counter("ext.requests"), Some(7));
    }
}
