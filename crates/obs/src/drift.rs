//! Observed-vs-predicted residual tracking — the drift signal.
//!
//! Every fulfilled request pairs a *predicted* runtime (from the served
//! PPM curve at the chosen executor count) with an *observed* runtime.
//! A [`ResidualTracker`] accumulates the relative residuals of those
//! pairs lock-free; its [`DriftSignal`] summarizes how far the model has
//! wandered from reality. Model-zoo style adaptation (ROADMAP) consumes
//! this signal to decide when to retrain or swap models: a persistent
//! `mean_abs_rel` above the fleet's tolerance, or a strongly one-sided
//! `mean_rel_bias`, is drift.
//!
//! The accumulators are `f64` values stored in `AtomicU64` bit-patterns
//! and updated with compare-exchange loops; contention is negligible at
//! one update per completed request, and the tracker never takes a lock.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::json_f64;

/// Lock-free accumulator of relative prediction residuals.
///
/// For each `(predicted, observed)` pair with `observed > 0`, the signed
/// relative residual is `(predicted - observed) / observed`: positive
/// means the model over-predicts (pessimistic), negative means it
/// under-predicts (optimistic — the dangerous direction for deadlines).
#[derive(Debug, Default)]
pub struct ResidualTracker {
    samples: AtomicU64,
    /// Σ |rel| as f64 bits.
    sum_abs: AtomicU64,
    /// Σ rel (signed) as f64 bits.
    sum_signed: AtomicU64,
    /// max |rel| as f64 bits.
    max_abs: AtomicU64,
}

fn atomic_f64_add(cell: &AtomicU64, delta: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(current) + delta).to_bits();
        match cell.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

fn atomic_f64_max(cell: &AtomicU64, candidate: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    while candidate > f64::from_bits(current) {
        match cell.compare_exchange_weak(
            current,
            candidate.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(actual) => current = actual,
        }
    }
}

impl ResidualTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one predicted/observed runtime pair. Pairs with a
    /// non-finite or non-positive `observed` are ignored (no residual is
    /// defined for them).
    pub fn record(&self, predicted: f64, observed: f64) {
        if !(observed.is_finite() && observed > 0.0 && predicted.is_finite()) {
            return;
        }
        let rel = (predicted - observed) / observed;
        self.samples.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.sum_abs, rel.abs());
        atomic_f64_add(&self.sum_signed, rel);
        atomic_f64_max(&self.max_abs, rel.abs());
    }

    /// Number of recorded pairs.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Summarizes the accumulated residuals.
    pub fn signal(&self) -> DriftSignal {
        let samples = self.samples.load(Ordering::Relaxed);
        let sum_abs = f64::from_bits(self.sum_abs.load(Ordering::Relaxed));
        let sum_signed = f64::from_bits(self.sum_signed.load(Ordering::Relaxed));
        let max_abs = f64::from_bits(self.max_abs.load(Ordering::Relaxed));
        if samples == 0 {
            DriftSignal::default()
        } else {
            DriftSignal {
                samples,
                mean_abs_rel: sum_abs / samples as f64,
                mean_rel_bias: sum_signed / samples as f64,
                max_abs_rel: max_abs,
            }
        }
    }
}

/// Point-in-time summary of a [`ResidualTracker`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DriftSignal {
    /// Number of predicted/observed pairs behind the summary.
    pub samples: u64,
    /// Mean |predicted − observed| / observed.
    pub mean_abs_rel: f64,
    /// Mean signed residual: positive = over-prediction (pessimistic),
    /// negative = under-prediction (optimistic).
    pub mean_rel_bias: f64,
    /// Worst single relative residual.
    pub max_abs_rel: f64,
}

impl DriftSignal {
    /// True when enough samples exist and the mean absolute relative
    /// residual exceeds `threshold` — the retrain/swap trigger.
    pub fn drifted(&self, threshold: f64) -> bool {
        self.samples > 0 && self.mean_abs_rel > threshold
    }

    /// JSON object with all four fields.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"samples\":{},\"mean_abs_rel\":{},\"mean_rel_bias\":{},\"max_abs_rel\":{}}}",
            self.samples,
            json_f64(self.mean_abs_rel),
            json_f64(self.mean_rel_bias),
            json_f64(self.max_abs_rel)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn residual_math() {
        let tracker = ResidualTracker::new();
        tracker.record(1.2, 1.0); // +0.2
        tracker.record(0.5, 1.0); // -0.5
        tracker.record(2.0, 0.0); // ignored: zero observed
        tracker.record(f64::NAN, 1.0); // ignored
        let signal = tracker.signal();
        assert_eq!(signal.samples, 2);
        assert!((signal.mean_abs_rel - 0.35).abs() < 1e-12);
        assert!((signal.mean_rel_bias - (-0.15)).abs() < 1e-12);
        assert!((signal.max_abs_rel - 0.5).abs() < 1e-12);
        assert!(signal.drifted(0.3));
        assert!(!signal.drifted(0.4));
    }

    #[test]
    fn empty_tracker_reports_no_drift() {
        let signal = ResidualTracker::new().signal();
        assert_eq!(signal.samples, 0);
        assert!(!signal.drifted(0.0));
        assert_eq!(signal.mean_abs_rel, 0.0);
    }

    #[test]
    fn concurrent_recording_keeps_every_sample() {
        let tracker = Arc::new(ResidualTracker::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let t = Arc::clone(&tracker);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        t.record(1.1, 1.0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let signal = tracker.signal();
        assert_eq!(signal.samples, 40_000);
        assert!((signal.mean_abs_rel - 0.1).abs() < 1e-9);
    }
}
