//! Configuration selection on top of a predicted or measured PPM curve.
//!
//! Section 5.3 evaluates two selection scenarios plus the default strategy
//! of the AutoExecutor rule:
//!
//! * **Bounded slowdown** — pick the smallest `n` whose run time is within a
//!   factor `H` of the minimum achievable time (`H = 1` is
//!   "fastest-with-fewest-executors").
//! * **Elbow point** — normalize both axes to `[0, 1]` and pick the smallest
//!   `n` at which the curve's slope crosses unit slope, balancing the rate
//!   of time decrease against the rate of resource increase (Equations 7–9).
//!
//! The serving tier's tiered service levels (PixelsDB-style SLAs) add a
//! third family of lookups on the same curve: **deadline selection**
//! ([`deadline_config`] — the smallest `n` meeting a run-time deadline)
//! and **pricing** ([`cost_at`], [`cheapest_config`],
//! [`price_for_deadline`] — the executor-seconds cost of an operating
//! point and the cheapest point honoring a deadline, which is what a
//! price multiplier for a deadline promise is derived from).

use serde::{Deserialize, Serialize};

/// A price-performance selection objective.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SelectionObjective {
    /// Smallest `n` achieving the minimum time (the paper's `H = 1`).
    MinTime,
    /// Smallest `n` within a slowdown factor `H ≥ 1` of the minimum time.
    BoundedSlowdown(f64),
    /// The normalized-slope elbow point.
    Elbow,
}

impl SelectionObjective {
    /// Applies the objective to a `(n, t)` curve and returns the selected `n`.
    pub fn select(&self, curve: &[(usize, f64)]) -> Option<usize> {
        match *self {
            SelectionObjective::MinTime => min_time_config(curve),
            SelectionObjective::BoundedSlowdown(h) => slowdown_config(curve, h),
            SelectionObjective::Elbow => elbow_point(curve),
        }
    }

    /// Applies the objective to many curves at once — the selection stage of
    /// the batched serving path, where one micro-batch of predicted curves
    /// is resolved to executor counts in a single call. Each result is
    /// exactly what [`select`](Self::select) returns for that curve.
    pub fn select_batch<C: AsRef<[(usize, f64)]>>(&self, curves: &[C]) -> Vec<Option<usize>> {
        curves.iter().map(|c| self.select(c.as_ref())).collect()
    }
}

use std::borrow::Cow;

/// True when the curve is already strictly increasing in `n` with finite
/// times — the shape every `predict_curve` / interpolation path produces.
fn is_clean(curve: &[(usize, f64)]) -> bool {
    curve.iter().all(|&(_, t)| t.is_finite()) && curve.windows(2).all(|w| w[0].0 < w[1].0)
}

/// Returns the curve sorted by `n`, deduplicated, with non-finite times
/// dropped. Selection objectives run inside the optimizer rule on every
/// query, so the common already-clean case **borrows** the input instead of
/// allocating and re-sorting a copy per call; only genuinely unsorted or
/// dirty curves pay for a normalising copy.
fn normalised(curve: &[(usize, f64)]) -> Cow<'_, [(usize, f64)]> {
    if is_clean(curve) {
        return Cow::Borrowed(curve);
    }
    let mut pts: Vec<(usize, f64)> = curve
        .iter()
        .copied()
        .filter(|&(_, t)| t.is_finite())
        .collect();
    pts.sort_by_key(|&(n, _)| n);
    pts.dedup_by_key(|&mut (n, _)| n);
    Cow::Owned(pts)
}

/// Smallest `n` whose time is within the `slowdown_config` tolerance of the
/// minimum time over the curve. This delegates to `slowdown_config(curve,
/// 1.0)`, whose threshold is `t_min · (1 + 1e-9)`: the 1e-9 slack is a
/// *relative* tolerance absorbing floating-point wobble in curves that
/// saturate to a constant floor, not an absolute one.
pub fn min_time_config(curve: &[(usize, f64)]) -> Option<usize> {
    slowdown_config(curve, 1.0)
}

/// Smallest `n` such that `t(n) ≤ H · t_min` where `t_min` is the minimum
/// time over the curve. Returns `None` on an empty curve; `H` below 1 is
/// treated as 1.
pub fn slowdown_config(curve: &[(usize, f64)], h: f64) -> Option<usize> {
    let pts = normalised(curve);
    if pts.is_empty() {
        return None;
    }
    let t_min = pts.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
    let h = h.max(1.0);
    let threshold = t_min * h * (1.0 + 1e-9);
    pts.iter().find(|&&(_, t)| t <= threshold).map(|&(n, _)| n)
}

/// The elbow point: both axes are range-normalized to `[0, 1]` and the elbow
/// is the smallest `n` at which the (descending) slope crosses unit slope —
/// i.e. `slope(u(n)) ≥ 1` and `slope(u(n+1)) ≤ 1` (Equations 7–9).
///
/// Degenerate cases: a flat curve returns the smallest `n`; a curve that is
/// still steep at its last point returns the largest `n`.
pub fn elbow_point(curve: &[(usize, f64)]) -> Option<usize> {
    let pts = normalised(curve);
    if pts.is_empty() {
        return None;
    }
    if pts.len() == 1 {
        return Some(pts[0].0);
    }
    let n_min = pts[0].0 as f64;
    let n_max = pts[pts.len() - 1].0 as f64;
    let t_min = pts.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
    let t_max = pts
        .iter()
        .map(|&(_, t)| t)
        .fold(f64::NEG_INFINITY, f64::max);
    if (n_max - n_min).abs() < 1e-12 || (t_max - t_min).abs() < 1e-12 {
        // Flat curve (or single n): any extra executor is wasted.
        return Some(pts[0].0);
    }
    let u = |n: f64| (n - n_min) / (n_max - n_min);
    let v = |t: f64| (t - t_min) / (t_max - t_min);

    // slope_i: normalized drop from point i-1 to point i.
    let slopes: Vec<f64> = pts
        .windows(2)
        .map(|w| {
            let du = u(w[1].0 as f64) - u(w[0].0 as f64);
            let dv = v(w[0].1) - v(w[1].1);
            if du.abs() < 1e-12 {
                0.0
            } else {
                dv / du
            }
        })
        .collect();

    // Find the first i where slope into point i is ≥ 1 and slope out of it is ≤ 1.
    for i in 0..slopes.len() {
        let slope_in = slopes[i];
        let slope_out = slopes.get(i + 1).copied().unwrap_or(0.0);
        if slope_in >= 1.0 && slope_out <= 1.0 {
            return Some(pts[i + 1].0);
        }
    }
    // No crossover: if the curve never reached unit steepness it is shallow
    // everywhere → pick the smallest n; otherwise it stays steep → largest n.
    if slopes.iter().all(|&s| s < 1.0) {
        Some(pts[0].0)
    } else {
        Some(pts[pts.len() - 1].0)
    }
}

/// Smallest `n` whose predicted run time meets `deadline`
/// (`t(n) ≤ deadline`). Returns `None` on an empty curve or when no point
/// meets the deadline — an *unattainable* promise, which callers must
/// surface rather than silently over-provision.
pub fn deadline_config(curve: &[(usize, f64)], deadline: f64) -> Option<usize> {
    let pts = normalised(curve);
    pts.iter().find(|&&(_, t)| t <= deadline).map(|&(n, _)| n)
}

/// The executor-seconds cost `n · t(n)` of running at the sampled point
/// `n`. Returns `None` when `n` is not a sampled point of the curve (the
/// serving path always asks about points it just evaluated).
pub fn cost_at(curve: &[(usize, f64)], n: usize) -> Option<f64> {
    let pts = normalised(curve);
    pts.iter()
        .find(|&&(m, _)| m == n)
        .map(|&(n, t)| n as f64 * t)
}

/// The cheapest operating point of the curve: the `(n, n · t(n))` pair
/// minimizing executor-seconds. Ties keep the smallest `n`. This is the
/// natural "best effort" price anchor: what the query costs when the only
/// promise is that it finishes.
pub fn cheapest_config(curve: &[(usize, f64)]) -> Option<(usize, f64)> {
    let pts = normalised(curve);
    pts.iter().map(|&(n, t)| (n, n as f64 * t)).fold(
        None,
        |best: Option<(usize, f64)>, (n, cost)| match best {
            Some((_, best_cost)) if best_cost <= cost => best,
            _ => Some((n, cost)),
        },
    )
}

/// Deadline-constrained pricing: the **cheapest** point meeting `deadline`
/// — the `(n, n · t(n))` pair minimizing executor-seconds over all sampled
/// counts with `t(n) ≤ deadline` — i.e. the point a serving tier should
/// buy to honor the deadline. On curves with a superlinear-speedup prefix
/// this can be a larger `n` than [`deadline_config`]'s smallest-feasible
/// choice (faster *and* cheaper). Ties keep the smallest `n`. `None` when
/// the curve is empty or the deadline is unattainable at any sampled
/// count.
pub fn price_for_deadline(curve: &[(usize, f64)], deadline: f64) -> Option<(usize, f64)> {
    let pts = normalised(curve);
    pts.iter()
        .filter(|&&(_, t)| t <= deadline)
        .map(|&(n, t)| (n, n as f64 * t))
        .fold(None, |best: Option<(usize, f64)>, cand| match best {
            Some((_, best_cost)) if best_cost <= cand.1 => best,
            _ => Some(cand),
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{AmdahlPpm, PowerLawPpm, Ppm};

    fn amdahl_curve() -> Vec<(usize, f64)> {
        let model = Ppm::Amdahl(AmdahlPpm::new(30.0, 470.0));
        model.predict_curve(&(1..=48).collect::<Vec<_>>())
    }

    #[test]
    fn min_time_picks_smallest_n_reaching_minimum() {
        // Saturating power law: times equal the floor beyond the saturation point.
        let model = Ppm::PowerLaw(PowerLawPpm::new(-1.0, 480.0, 20.0));
        let curve = model.predict_curve(&(1..=48).collect::<Vec<_>>());
        let n = min_time_config(&curve).unwrap();
        assert_eq!(n, 24); // 480/n = 20 → n = 24
    }

    #[test]
    fn slowdown_relaxation_reduces_selected_n() {
        let curve = amdahl_curve();
        let strict = slowdown_config(&curve, 1.0).unwrap();
        let relaxed = slowdown_config(&curve, 1.5).unwrap();
        let very_relaxed = slowdown_config(&curve, 2.0).unwrap();
        assert!(relaxed < strict);
        assert!(very_relaxed <= relaxed);
    }

    #[test]
    fn amdahl_without_saturation_selects_max_n_for_h1() {
        // AE_AL keeps decreasing, so H=1 forces the maximum candidate —
        // exactly the behaviour the paper reports for AE_AL in Figure 10b.
        let curve = amdahl_curve();
        assert_eq!(min_time_config(&curve).unwrap(), 48);
    }

    #[test]
    fn elbow_of_amdahl_curve_is_moderate() {
        let curve = amdahl_curve();
        let elbow = elbow_point(&curve).unwrap();
        assert!(
            (4..=12).contains(&elbow),
            "elbow {elbow} should sit in the knee region"
        );
    }

    #[test]
    fn elbow_of_flat_curve_is_smallest_n() {
        let curve: Vec<(usize, f64)> = (1..=48).map(|n| (n, 100.0)).collect();
        assert_eq!(elbow_point(&curve).unwrap(), 1);
    }

    #[test]
    fn elbow_of_linear_curve_is_interior_or_endpoint() {
        // A linearly decreasing curve has slope exactly 1 everywhere in
        // normalized space: the first crossover fires at the second point.
        let curve: Vec<(usize, f64)> = (1..=10).map(|n| (n, 100.0 - n as f64)).collect();
        let elbow = elbow_point(&curve).unwrap();
        assert!(elbow <= 3, "elbow {elbow}");
    }

    #[test]
    fn selection_objective_dispatches() {
        let curve = amdahl_curve();
        assert_eq!(
            SelectionObjective::MinTime.select(&curve),
            min_time_config(&curve)
        );
        assert_eq!(
            SelectionObjective::BoundedSlowdown(1.2).select(&curve),
            slowdown_config(&curve, 1.2)
        );
        assert_eq!(
            SelectionObjective::Elbow.select(&curve),
            elbow_point(&curve)
        );
    }

    #[test]
    fn select_batch_matches_per_curve_select() {
        let a = amdahl_curve();
        let b: Vec<(usize, f64)> = (1..=48).map(|n| (n, 100.0)).collect();
        let c: Vec<(usize, f64)> = Vec::new();
        for objective in [
            SelectionObjective::MinTime,
            SelectionObjective::BoundedSlowdown(1.2),
            SelectionObjective::Elbow,
        ] {
            let batch = objective.select_batch(&[a.clone(), b.clone(), c.clone()]);
            assert_eq!(
                batch,
                vec![
                    objective.select(&a),
                    objective.select(&b),
                    objective.select(&c)
                ]
            );
        }
    }

    #[test]
    fn empty_curves_return_none() {
        assert_eq!(min_time_config(&[]), None);
        assert_eq!(slowdown_config(&[], 1.5), None);
        assert_eq!(elbow_point(&[]), None);
    }

    #[test]
    fn h_below_one_is_clamped() {
        let curve = amdahl_curve();
        assert_eq!(slowdown_config(&curve, 0.5), slowdown_config(&curve, 1.0));
    }

    #[test]
    fn deadline_config_picks_smallest_n_meeting_the_deadline() {
        let curve = amdahl_curve();
        // Amdahl with s=30, p=470: t(n) = 30 + 470/n, strictly decreasing.
        let n = deadline_config(&curve, 100.0).unwrap();
        assert!(curve.iter().any(|&(m, t)| m == n && t <= 100.0));
        // Every smaller n misses the deadline.
        assert!(curve
            .iter()
            .filter(|&&(m, _)| m < n)
            .all(|&(_, t)| t > 100.0));
        // An unattainable deadline (below the serial fraction) is None.
        assert_eq!(deadline_config(&curve, 10.0), None);
        assert_eq!(deadline_config(&[], 10.0), None);
    }

    #[test]
    fn cost_and_cheapest_point() {
        let curve = vec![(1, 100.0), (2, 60.0), (4, 40.0), (8, 35.0)];
        assert!((cost_at(&curve, 2).unwrap() - 120.0).abs() < 1e-12);
        assert_eq!(cost_at(&curve, 3), None);
        // Costs: 100, 120, 160, 280 — n = 1 is cheapest.
        assert_eq!(cheapest_config(&curve).unwrap(), (1, 100.0));
        // A superlinear-speedup prefix makes a larger n cheapest.
        let curve = vec![(1, 100.0), (2, 40.0), (4, 30.0)];
        assert_eq!(cheapest_config(&curve).unwrap(), (2, 80.0));
        assert_eq!(cheapest_config(&[]), None);
    }

    #[test]
    fn price_for_deadline_picks_the_cheapest_feasible_point() {
        let curve = vec![(1, 100.0), (2, 60.0), (4, 40.0), (8, 35.0)];
        let (n, cost) = price_for_deadline(&curve, 50.0).unwrap();
        assert_eq!(n, 4);
        assert!((cost - 160.0).abs() < 1e-12);
        // Tighter deadlines cost at least as much.
        let (_, tighter) = price_for_deadline(&curve, 35.0).unwrap();
        assert!(tighter >= cost);
        assert_eq!(price_for_deadline(&curve, 1.0), None);
        // A superlinear-speedup prefix: n=2 meets the deadline cheaper AND
        // faster than the smallest feasible n=1 — pricing must not pick n=1.
        let superlinear = vec![(1, 100.0), (2, 40.0)];
        assert_eq!(price_for_deadline(&superlinear, 100.0).unwrap(), (2, 80.0));
        assert_eq!(deadline_config(&superlinear, 100.0), Some(1));
    }

    #[test]
    fn unsorted_input_is_handled() {
        let mut curve = amdahl_curve();
        curve.reverse();
        assert_eq!(slowdown_config(&curve, 1.1), {
            let sorted = amdahl_curve();
            slowdown_config(&sorted, 1.1)
        });
    }
}
