//! The total-cores view of the PPM and executor-size factorization.
//!
//! Section 3.3: instead of extending the PPM with a second input for the
//! cores-per-executor `ec`, the paper uses the *total* core count
//! `k = n × ec` as the single resource knob — run times for configurations
//! with the same `k` but different `ec` lie close to the `ec = 4` trend
//! line. Once an optimal `k` is chosen it must be factorized back into
//! `(n, ec)`; the paper picks the `ec` that minimizes stranded cores on a
//! node subject to the node memory constraint.

use serde::{Deserialize, Serialize};

use crate::curve::PerfCurve;

/// Interpolates the run time for a configuration `(n, ec)` from a reference
/// curve measured (or predicted) over *total cores* with a fixed reference
/// `ec` — the estimation procedure behind Figure 5c.
pub fn interpolate_by_cores(reference_curve_by_cores: &PerfCurve, n: usize, ec: usize) -> f64 {
    let total_cores = (n * ec) as f64;
    reference_curve_by_cores.evaluate(total_cores)
}

/// Constraints of the executor-size factorization problem (Section 3.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FactorizationConstraints {
    /// Cores per node (`C`).
    pub node_cores: usize,
    /// Memory per node in GB (`M`).
    pub node_memory_gb: f64,
    /// Memory per executor in GB as a function of its core count: modelled
    /// as `memory_gb_per_core × ec`.
    pub memory_gb_per_core: f64,
    /// Smallest executor size to consider (very small executors complicate
    /// overhead-memory sizing, §3.3).
    pub min_cores_per_executor: usize,
    /// Largest executor size to consider (very large executors suffer from
    /// garbage-collection overheads, §3.3).
    pub max_cores_per_executor: usize,
}

impl FactorizationConstraints {
    /// Constraints for the paper's medium node (8 cores, 64 GB) with 7 GB of
    /// executor memory per core and executor sizes between 1 and 8 cores.
    pub fn paper_default() -> Self {
        Self {
            node_cores: 8,
            node_memory_gb: 64.0,
            memory_gb_per_core: 7.0,
            min_cores_per_executor: 1,
            max_cores_per_executor: 8,
        }
    }
}

/// A chosen factorization of a total core count into executors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Factorization {
    /// Number of executors (`n`).
    pub executors: usize,
    /// Cores per executor (`ec`).
    pub cores_per_executor: usize,
    /// Cores left stranded on each (full) node: `C mod ec`.
    pub stranded_cores_per_node: usize,
}

/// Factorizes a total core count `k` into `(n, ec)`.
///
/// Among executor sizes that (a) divide `k` exactly, (b) fit the node memory
/// constraint `memory_per_executor × ⌊C/ec⌋ ≤ M`, and (c) respect the
/// configured size bounds, the function picks the one minimizing the
/// stranded cores per node `C mod ec`; ties are broken toward the *smaller*
/// executor size, which offers finer-grained cost-performance control
/// (Section 3.3). Returns `None` when `k` is zero or no candidate satisfies
/// the constraints.
pub fn factorize_total_cores(
    k: usize,
    constraints: &FactorizationConstraints,
) -> Option<Factorization> {
    if k == 0 {
        return None;
    }
    let lo = constraints.min_cores_per_executor.max(1);
    let hi = constraints
        .max_cores_per_executor
        .min(constraints.node_cores)
        .max(lo);
    let mut best: Option<Factorization> = None;
    for ec in lo..=hi {
        if !k.is_multiple_of(ec) {
            continue;
        }
        let per_node = constraints.node_cores / ec;
        if per_node == 0 {
            continue;
        }
        let memory_needed = constraints.memory_gb_per_core * ec as f64 * per_node as f64;
        if memory_needed > constraints.node_memory_gb + 1e-9 {
            continue;
        }
        let candidate = Factorization {
            executors: k / ec,
            cores_per_executor: ec,
            stranded_cores_per_node: constraints.node_cores % ec,
        };
        let better = match &best {
            None => true,
            Some(current) => {
                candidate.stranded_cores_per_node < current.stranded_cores_per_node
                    || (candidate.stranded_cores_per_node == current.stranded_cores_per_node
                        && candidate.cores_per_executor < current.cores_per_executor)
            }
        };
        if better {
            best = Some(candidate);
        }
    }
    best
}

/// The configuration grid of Table 1: `(ec, n, k)` triples used to study the
/// impact of total cores.
pub fn table1_configurations() -> Vec<(usize, usize, usize)> {
    let mut rows = vec![
        (2, 3, 6),
        (2, 16, 32),
        (4, 1, 4),
        (4, 3, 12),
        (4, 4, 16),
        (4, 8, 32),
        (4, 16, 64),
        (4, 32, 128),
        (4, 48, 192),
        (6, 3, 18),
        (6, 16, 96),
        (8, 3, 24),
        (8, 16, 128),
    ];
    rows.sort();
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_grid_is_consistent() {
        let rows = table1_configurations();
        assert_eq!(rows.len(), 13);
        for (ec, n, k) in rows {
            assert_eq!(ec * n, k, "({ec}, {n}, {k})");
        }
    }

    #[test]
    fn interpolation_matches_reference_at_equal_cores() {
        // Reference curve over total cores (measured with ec = 4).
        let reference =
            PerfCurve::from_samples(&[(4, 400.0), (16, 150.0), (64, 70.0), (192, 50.0)]);
        // A 2-core × 8-executor config has 16 total cores → same estimate as ec=4, n=4.
        let estimate = interpolate_by_cores(&reference, 8, 2);
        assert!((estimate - 150.0).abs() < 1e-9);
        // 3 executors × 6 cores = 18 cores → interpolated between 16 and 64.
        let estimate = interpolate_by_cores(&reference, 3, 6);
        assert!(estimate < 150.0 && estimate > 70.0);
    }

    #[test]
    fn factorization_prefers_zero_stranding() {
        let constraints = FactorizationConstraints::paper_default();
        // k = 32: ec ∈ {1, 2, 4, 8} all divide; all leave 0 stranded cores on
        // an 8-core node; memory allows at most 8 cores' worth (56 GB ≤ 64).
        let f = factorize_total_cores(32, &constraints).unwrap();
        assert_eq!(f.stranded_cores_per_node, 0);
        assert_eq!(f.executors * f.cores_per_executor, 32);
        // Tie-break toward the smaller executor.
        assert_eq!(f.cores_per_executor, 1);
    }

    #[test]
    fn factorization_respects_memory_constraint() {
        // Tight memory: only 28 GB per node ⇒ at most 4 cores' worth of
        // executor memory per node.
        let constraints = FactorizationConstraints {
            node_memory_gb: 28.0,
            min_cores_per_executor: 4,
            ..FactorizationConstraints::paper_default()
        };
        // ec = 4 → 2 executors/node → 56 GB needed > 28: infeasible.
        // ec = 8 → 1 executor/node → 56 GB needed > 28: infeasible.
        assert_eq!(factorize_total_cores(16, &constraints), None);
    }

    #[test]
    fn factorization_skips_non_divisors() {
        let constraints = FactorizationConstraints {
            min_cores_per_executor: 3,
            max_cores_per_executor: 5,
            ..FactorizationConstraints::paper_default()
        };
        // k = 20 is divisible by 4 and 5 but not 3.
        let f = factorize_total_cores(20, &constraints).unwrap();
        assert!(f.cores_per_executor == 4 || f.cores_per_executor == 5);
        // ec = 4 leaves 0 stranded on an 8-core node; ec = 5 leaves 3.
        assert_eq!(f.cores_per_executor, 4);
    }

    #[test]
    fn zero_total_cores_is_none() {
        assert_eq!(
            factorize_total_cores(0, &FactorizationConstraints::paper_default()),
            None
        );
    }
}
