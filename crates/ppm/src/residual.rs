//! Observed-vs-predicted runtime residuals as a model-drift signal.
//!
//! Serving returns a predicted performance curve with every answer; when
//! the query later finishes, its *observed* runtime at the chosen
//! executor count can be compared against that prediction. This module
//! turns those pairs into the retrain/swap trigger the ROADMAP's
//! model-zoo adaptation needs:
//!
//! * [`predicted_at`] reads a prediction for a specific executor count
//!   out of a sampled `(n, t)` curve (exact point, or linear
//!   interpolation between the bracketing samples).
//! * [`ResidualMonitor`] feeds `(predicted, observed)` pairs into a
//!   lock-free [`ae_obs::ResidualTracker`] and can publish the resulting
//!   [`ae_obs::DriftSignal`] into an [`ae_obs::MetricsRegistry`] as
//!   gauges (`{prefix}.mean_abs_rel`, `{prefix}.mean_rel_bias`,
//!   `{prefix}.max_abs_rel`, `{prefix}.drifted`) plus a sample counter,
//!   so a fleet dashboard sees drift without touching serving internals.
//!
//! The math is pure and synchronous; recording is a handful of relaxed
//! atomics (see `ae_obs::drift`), safe to call from the serving hot path.

use std::sync::Arc;

use ae_obs::{DriftSignal, MetricSource, MetricValue, MetricsRegistry, ResidualTracker};

/// Predicted runtime at `executors`, read from a sampled `(n, t)` curve.
///
/// Exact sample points are returned as-is; counts between two samples are
/// linearly interpolated; counts outside the sampled domain return the
/// nearest endpoint (curves are monotone, so clamping is conservative).
/// Empty curves and non-finite samples yield `None`.
pub fn predicted_at(curve: &[(usize, f64)], executors: usize) -> Option<f64> {
    let (first, last) = (curve.first()?, curve.last()?);
    let pick = |t: f64| t.is_finite().then_some(t);
    if executors <= first.0 {
        return pick(first.1);
    }
    if executors >= last.0 {
        return pick(last.1);
    }
    match curve.binary_search_by_key(&executors, |&(n, _)| n) {
        Ok(idx) => pick(curve[idx].1),
        Err(idx) => {
            let (n0, t0) = curve[idx - 1];
            let (n1, t1) = curve[idx];
            if n1 == n0 {
                return pick(t1);
            }
            let frac = (executors - n0) as f64 / (n1 - n0) as f64;
            pick(t0 + (t1 - t0) * frac)
        }
    }
}

/// Accumulates observed-vs-predicted residuals and exposes them as a
/// drift signal, optionally published into a metrics registry.
#[derive(Debug, Clone)]
pub struct ResidualMonitor {
    tracker: Arc<ResidualTracker>,
    threshold: f64,
}

impl ResidualMonitor {
    /// A monitor that reports drift once the mean absolute relative
    /// residual exceeds `threshold` (e.g. `0.25` for 25%).
    pub fn new(threshold: f64) -> Self {
        Self {
            tracker: Arc::new(ResidualTracker::new()),
            threshold,
        }
    }

    /// Records one completed query: the prediction is looked up on
    /// `curve` at the executor count actually used. Pairs the curve
    /// cannot price (empty curve, non-finite or non-positive observed)
    /// are ignored.
    pub fn observe_curve(&self, curve: &[(usize, f64)], executors: usize, observed_secs: f64) {
        if let Some(predicted) = predicted_at(curve, executors) {
            self.tracker.record(predicted, observed_secs);
        }
    }

    /// Records an already-paired prediction and observation.
    pub fn observe(&self, predicted_secs: f64, observed_secs: f64) {
        self.tracker.record(predicted_secs, observed_secs);
    }

    /// Point-in-time drift summary.
    pub fn signal(&self) -> DriftSignal {
        self.tracker.signal()
    }

    /// True when the accumulated residuals cross the monitor's threshold.
    pub fn drifted(&self) -> bool {
        self.signal().drifted(self.threshold)
    }

    /// The configured drift threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Publishes this monitor into `registry` under `prefix`: on every
    /// registry snapshot the current signal appears as
    /// `{prefix}.samples` (counter), `{prefix}.mean_abs_rel`,
    /// `{prefix}.mean_rel_bias`, `{prefix}.max_abs_rel`, and
    /// `{prefix}.drifted` (gauges; `drifted` is 0.0/1.0). The registry
    /// holds its own tracker handle, so the signal outlives the monitor.
    pub fn register(&self, registry: &MetricsRegistry, prefix: &str) {
        registry.register_source(Box::new(DriftSource {
            prefix: prefix.to_string(),
            tracker: Arc::clone(&self.tracker),
            threshold: self.threshold,
        }));
    }
}

struct DriftSource {
    prefix: String,
    tracker: Arc<ResidualTracker>,
    threshold: f64,
}

impl MetricSource for DriftSource {
    fn collect(&self, out: &mut Vec<(String, MetricValue)>) {
        let signal = self.tracker.signal();
        let p = &self.prefix;
        out.push((format!("{p}.samples"), MetricValue::Counter(signal.samples)));
        out.push((
            format!("{p}.mean_abs_rel"),
            MetricValue::Gauge(signal.mean_abs_rel),
        ));
        out.push((
            format!("{p}.mean_rel_bias"),
            MetricValue::Gauge(signal.mean_rel_bias),
        ));
        out.push((
            format!("{p}.max_abs_rel"),
            MetricValue::Gauge(signal.max_abs_rel),
        ));
        out.push((
            format!("{p}.drifted"),
            MetricValue::Gauge(if signal.drifted(self.threshold) {
                1.0
            } else {
                0.0
            }),
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CURVE: &[(usize, f64)] = &[(2, 100.0), (4, 60.0), (8, 40.0)];

    #[test]
    fn curve_lookup_interpolates_and_clamps() {
        assert_eq!(predicted_at(CURVE, 4), Some(60.0));
        assert_eq!(predicted_at(CURVE, 3), Some(80.0)); // midpoint 2..4
        assert_eq!(predicted_at(CURVE, 1), Some(100.0)); // clamp low
        assert_eq!(predicted_at(CURVE, 64), Some(40.0)); // clamp high
        assert_eq!(predicted_at(&[], 4), None);
        assert_eq!(predicted_at(&[(1, f64::NAN)], 1), None);
    }

    #[test]
    fn monitor_detects_one_sided_drift() {
        let monitor = ResidualMonitor::new(0.25);
        // Model predicts 60 s at n=4; reality takes twice as long.
        for _ in 0..10 {
            monitor.observe_curve(CURVE, 4, 120.0);
        }
        let signal = monitor.signal();
        assert_eq!(signal.samples, 10);
        assert!((signal.mean_rel_bias - (-0.5)).abs() < 1e-12);
        assert!(monitor.drifted());

        let calm = ResidualMonitor::new(0.25);
        calm.observe_curve(CURVE, 4, 61.0);
        assert!(!calm.drifted());
    }

    #[test]
    fn registered_signal_appears_in_snapshots() {
        let registry = MetricsRegistry::new();
        let monitor = ResidualMonitor::new(0.1);
        monitor.register(&registry, "ppm.drift");
        monitor.observe(50.0, 100.0);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("ppm.drift.samples"), Some(1));
        match snap.get("ppm.drift.mean_abs_rel") {
            Some(MetricValue::Gauge(v)) => assert!((v - 0.5).abs() < 1e-12),
            other => panic!("missing gauge: {other:?}"),
        }
        match snap.get("ppm.drift.drifted") {
            Some(MetricValue::Gauge(v)) => assert_eq!(*v, 1.0),
            other => panic!("missing gauge: {other:?}"),
        }
        // The signal survives the monitor itself.
        drop(monitor);
        assert_eq!(snap.counter("ppm.drift.samples"), Some(1));
        assert_eq!(registry.snapshot().counter("ppm.drift.samples"), Some(1));
    }
}
