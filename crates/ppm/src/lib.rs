//! # ae-ppm — price-performance models and configuration selection
//!
//! The heart of the paper's Section 3: a query's run time as a function of
//! its computational resources is represented by a small parametric function
//! (the *Price-Performance Model*, PPM), fitted per query, and then used to
//! select an operating point for a price-performance objective.
//!
//! * [`model`] — the two PPM families: `AE_PL` (power law with a saturation
//!   floor) and `AE_AL` (Amdahl's law), both monotone non-increasing in the
//!   resource count by construction.
//! * [`fit`] — fitting PPM parameters to observed or estimated `(n, t)`
//!   curves (log-space least squares for the power law, `1/n`-space least
//!   squares for Amdahl's law), as described in Section 3.4.
//! * [`curve`] — piecewise-linear performance curves used to interpolate
//!   "Actual" and Sparklens series over all candidate executor counts
//!   (Section 5.3).
//! * [`selection`] — configuration selection: minimum-time, bounded slowdown
//!   `H`, the normalized-slope "elbow point" (Section 5.3), and the
//!   deadline/pricing lookups the serving tier's service levels are built on
//!   (cheapest `n` meeting a deadline, executor-seconds cost of a point).
//! * [`cores`] — the total-cores view `k = n × ec` (Section 3.3) and the
//!   executor-size factorization that minimizes stranded node resources.
//! * [`risk`] — expected-runtime-under-preemption adjustment: selection on
//!   spot-priced capacity prices the risk that larger `n` means more
//!   exposure to revocation.
//! * [`residual`] — observed-vs-predicted runtime residuals as a
//!   model-drift signal, publishable into an `ae_obs` metrics registry.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cores;
pub mod curve;
pub mod fit;
pub mod model;
pub mod residual;
pub mod risk;
pub mod selection;

pub use cores::{factorize_total_cores, interpolate_by_cores, FactorizationConstraints};
pub use curve::PerfCurve;
pub use fit::{fit_amdahl, fit_power_law, FitError};
pub use model::{ppms_from_flat, AmdahlPpm, PowerLawPpm, Ppm, PpmKind};
pub use residual::{predicted_at, ResidualMonitor};
pub use risk::PreemptionRisk;
pub use selection::{
    cheapest_config, cost_at, deadline_config, elbow_point, min_time_config, price_for_deadline,
    slowdown_config, SelectionObjective,
};
