//! Fitting PPM parameters to observed or estimated run-time curves.
//!
//! Section 3.4 of the paper: for each training query the PPM parameters are
//! extracted from its `(n, t(n))` curve — obtained either from actual runs or
//! from Sparklens estimates — and those parameters become the targets of the
//! parameter model.
//!
//! * **AE_PL**: the floor `m` is the minimum observed time; `a` and `b` come
//!   from a least-squares fit of `log t = log b + a·log n` over the
//!   non-saturating region `n ∈ [1, n_m]`.
//! * **AE_AL**: `s` and `p` come from a least-squares fit of `t` against
//!   `1/n`.

use ae_ml::linreg::SimpleLinearFit;

use crate::model::{AmdahlPpm, PowerLawPpm};

/// Errors produced when fitting a PPM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FitError {
    /// Fewer than two observations were provided.
    NotEnoughPoints,
    /// An observation had a non-positive resource count or run time.
    InvalidObservation,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NotEnoughPoints => write!(f, "need at least two (n, t) observations"),
            FitError::InvalidObservation => {
                write!(f, "observations must have positive n and t")
            }
        }
    }
}

impl std::error::Error for FitError {}

fn validate(observations: &[(usize, f64)]) -> Result<(), FitError> {
    if observations.len() < 2 {
        return Err(FitError::NotEnoughPoints);
    }
    if observations
        .iter()
        .any(|&(n, t)| n == 0 || !t.is_finite() || t <= 0.0)
    {
        return Err(FitError::InvalidObservation);
    }
    Ok(())
}

/// Fits the power-law-with-saturation PPM (`AE_PL`) to `(n, t)` observations.
pub fn fit_power_law(observations: &[(usize, f64)]) -> Result<PowerLawPpm, FitError> {
    validate(observations)?;
    let mut sorted: Vec<(usize, f64)> = observations.to_vec();
    sorted.sort_by_key(|&(n, _)| n);

    // The floor is the minimum observed time.
    let m = sorted.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);

    // Non-saturating region: points whose time is still above the floor,
    // plus the first point that reaches it (so the fit sees the knee).
    let mut region: Vec<(usize, f64)> = Vec::new();
    for &(n, t) in &sorted {
        region.push((n, t));
        if (t - m).abs() <= m * 1e-6 {
            break;
        }
    }
    if region.len() < 2 {
        // The curve is flat from the start: a constant model.
        return Ok(PowerLawPpm::new(0.0, m, m));
    }

    let xs: Vec<f64> = region.iter().map(|&(n, _)| (n as f64).ln()).collect();
    let ys: Vec<f64> = region.iter().map(|&(_, t)| t.ln()).collect();
    let fit = SimpleLinearFit::fit(&xs, &ys).map_err(|_| FitError::NotEnoughPoints)?;
    let a = fit.slope;
    let b = fit.intercept.exp();
    Ok(PowerLawPpm::new(a, b, m))
}

/// Fits the Amdahl's-law PPM (`AE_AL`) to `(n, t)` observations.
pub fn fit_amdahl(observations: &[(usize, f64)]) -> Result<AmdahlPpm, FitError> {
    validate(observations)?;
    let xs: Vec<f64> = observations.iter().map(|&(n, _)| 1.0 / n as f64).collect();
    let ys: Vec<f64> = observations.iter().map(|&(_, t)| t).collect();
    let fit = SimpleLinearFit::fit(&xs, &ys).map_err(|_| FitError::NotEnoughPoints)?;
    Ok(AmdahlPpm::new(fit.intercept, fit.slope))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve_from_amdahl(s: f64, p: f64, counts: &[usize]) -> Vec<(usize, f64)> {
        counts.iter().map(|&n| (n, s + p / n as f64)).collect()
    }

    #[test]
    fn amdahl_fit_recovers_exact_parameters() {
        let obs = curve_from_amdahl(25.0, 500.0, &[1, 3, 8, 16, 32, 48]);
        let fit = fit_amdahl(&obs).unwrap();
        assert!((fit.s - 25.0).abs() < 1e-6);
        assert!((fit.p - 500.0).abs() < 1e-6);
    }

    #[test]
    fn power_law_fit_recovers_exact_parameters_before_saturation() {
        // t = 400 * n^-0.7, floored at 40 (saturation near n ≈ 26.8).
        let obs: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16, 32, 48]
            .iter()
            .map(|&n| (n, (400.0 * (n as f64).powf(-0.7)).max(40.0)))
            .collect();
        let fit = fit_power_law(&obs).unwrap();
        assert!((fit.m - 40.0).abs() < 1e-9);
        assert!((fit.a + 0.7).abs() < 0.1, "a = {}", fit.a);
        assert!((fit.b - 400.0).abs() / 400.0 < 0.15, "b = {}", fit.b);
        // The fitted curve reproduces the observations closely.
        for &(n, t) in &obs {
            let p = fit.predict(n as f64);
            assert!((p - t).abs() / t < 0.12, "n={n}: {p} vs {t}");
        }
    }

    #[test]
    fn power_law_fit_on_flat_curve_is_constant() {
        let obs = vec![(1usize, 55.0), (8, 55.0), (32, 55.0)];
        let fit = fit_power_law(&obs).unwrap();
        assert!((fit.predict(1.0) - 55.0).abs() < 1e-9);
        assert!((fit.predict(48.0) - 55.0).abs() < 1e-9);
    }

    #[test]
    fn amdahl_fit_on_sparklens_like_monotone_curve_is_monotone() {
        // A curve with saturation that Amdahl can only approximate.
        let obs: Vec<(usize, f64)> = (1..=48)
            .map(|n| (n, (300.0 / n as f64).max(20.0) + 30.0))
            .collect();
        let fit = fit_amdahl(&obs).unwrap();
        let mut last = f64::INFINITY;
        for n in 1..=48 {
            let t = fit.predict(n as f64);
            assert!(t <= last + 1e-9);
            last = t;
        }
    }

    #[test]
    fn fit_rejects_insufficient_or_invalid_data() {
        assert_eq!(fit_amdahl(&[(4, 10.0)]), Err(FitError::NotEnoughPoints));
        assert_eq!(
            fit_power_law(&[(0, 10.0), (4, 5.0)]),
            Err(FitError::InvalidObservation)
        );
        assert_eq!(
            fit_amdahl(&[(1, -3.0), (4, 5.0)]),
            Err(FitError::InvalidObservation)
        );
    }

    #[test]
    fn unsorted_observations_are_handled() {
        let mut obs = curve_from_amdahl(10.0, 100.0, &[16, 1, 8, 48, 3, 32]);
        obs.reverse();
        let al = fit_amdahl(&obs).unwrap();
        assert!((al.s - 10.0).abs() < 1e-6);
        let pl = fit_power_law(&obs).unwrap();
        assert!(pl.predict(1.0) > pl.predict(48.0));
    }
}
