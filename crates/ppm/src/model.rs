//! The two parametric price-performance model families.
//!
//! Both express the run time `t(n)` of a query as a function of its resource
//! allocation `n` (executors, or total cores in the Section 3.3 variant):
//!
//! * **AE_PL** — power law with saturation: `t(n) = max(b·n^a, m)`, with
//!   query-specific parameters `{a, b, m}` (Equation 3). For a sensible
//!   query `a ≤ 0` (more resources never hurt) and `m > 0` is the floor.
//! * **AE_AL** — Amdahl's law: `t(n) = s + p/n`, with parameters `{s, p}`
//!   (Equation 4): a serial component `s` and a perfectly scalable
//!   component `p`.
//!
//! Both are monotone non-increasing in `n` (for `a ≤ 0`, `p ≥ 0`), which the
//! constructors enforce by clamping — the monotonicity condition the paper
//! imposes in Section 3.1.

use serde::{Deserialize, Serialize};

/// Which PPM family a model belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PpmKind {
    /// Power law with saturation (`AE_PL`).
    PowerLaw,
    /// Amdahl's law (`AE_AL`).
    Amdahl,
}

impl PpmKind {
    /// Short label used in reports ("AE_PL" / "AE_AL", as in the paper).
    pub fn label(&self) -> &'static str {
        match self {
            PpmKind::PowerLaw => "AE_PL",
            PpmKind::Amdahl => "AE_AL",
        }
    }

    /// Names of the model's parameters, in the order used by
    /// [`Ppm::parameters`] and the parameter-model targets.
    pub fn parameter_names(&self) -> &'static [&'static str] {
        match self {
            PpmKind::PowerLaw => &["a", "b", "m"],
            PpmKind::Amdahl => &["s", "p"],
        }
    }
}

/// Power-law-with-saturation PPM: `t(n) = max(b·n^a, m)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawPpm {
    /// Exponent (≤ 0 for monotone non-increasing curves).
    pub a: f64,
    /// Scale factor (time at `n = 1` before the floor applies).
    pub b: f64,
    /// Saturation floor: the minimum achievable run time.
    pub m: f64,
}

impl PowerLawPpm {
    /// Creates a power-law PPM, clamping parameters so the curve is
    /// monotone non-increasing and non-negative.
    pub fn new(a: f64, b: f64, m: f64) -> Self {
        Self {
            a: a.min(0.0),
            b: b.max(0.0),
            m: m.max(0.0),
        }
    }

    /// Evaluates `t(n)`.
    pub fn predict(&self, n: f64) -> f64 {
        let n = n.max(1.0);
        (self.b * n.powf(self.a)).max(self.m)
    }

    /// The resource count at which the power-law part reaches the floor `m`
    /// (the saturation point), or `None` when the curve never saturates
    /// (e.g. `m = 0` or `a = 0`).
    pub fn saturation_point(&self) -> Option<f64> {
        if self.m <= 0.0 || self.b <= 0.0 || self.a >= 0.0 {
            return None;
        }
        // b·n^a = m  →  n = (m/b)^(1/a)
        let n = (self.m / self.b).powf(1.0 / self.a);
        n.is_finite().then_some(n.max(1.0))
    }
}

/// Amdahl's-law PPM: `t(n) = s + p/n`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AmdahlPpm {
    /// Serial (resource-invariant) component.
    pub s: f64,
    /// Scalable component (time at one unit of resource beyond `s`).
    pub p: f64,
}

impl AmdahlPpm {
    /// Creates an Amdahl PPM, clamping both components to be non-negative so
    /// the curve is monotone non-increasing.
    pub fn new(s: f64, p: f64) -> Self {
        Self {
            s: s.max(0.0),
            p: p.max(0.0),
        }
    }

    /// Evaluates `t(n)`.
    pub fn predict(&self, n: f64) -> f64 {
        let n = n.max(1.0);
        self.s + self.p / n
    }
}

/// A fitted PPM of either family.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Ppm {
    /// Power law with saturation.
    PowerLaw(PowerLawPpm),
    /// Amdahl's law.
    Amdahl(AmdahlPpm),
}

impl Ppm {
    /// The model family.
    pub fn kind(&self) -> PpmKind {
        match self {
            Ppm::PowerLaw(_) => PpmKind::PowerLaw,
            Ppm::Amdahl(_) => PpmKind::Amdahl,
        }
    }

    /// Evaluates `t(n)` for a resource count `n` (executors or cores).
    pub fn predict(&self, n: f64) -> f64 {
        match self {
            Ppm::PowerLaw(m) => m.predict(n),
            Ppm::Amdahl(m) => m.predict(n),
        }
    }

    /// Evaluates the model at each integer resource count in `counts`.
    pub fn predict_curve(&self, counts: &[usize]) -> Vec<(usize, f64)> {
        counts
            .iter()
            .map(|&n| (n, self.predict(n as f64)))
            .collect()
    }

    /// The parameter vector, ordered as in [`PpmKind::parameter_names`].
    pub fn parameters(&self) -> Vec<f64> {
        match self {
            Ppm::PowerLaw(m) => vec![m.a, m.b, m.m],
            Ppm::Amdahl(m) => vec![m.s, m.p],
        }
    }

    /// Reconstructs a model from a parameter vector produced by a parameter
    /// model (the inverse of [`Ppm::parameters`]). Extra entries are ignored;
    /// missing entries are treated as zero.
    pub fn from_parameters(kind: PpmKind, params: &[f64]) -> Self {
        let get = |i: usize| params.get(i).copied().unwrap_or(0.0);
        match kind {
            PpmKind::PowerLaw => Ppm::PowerLaw(PowerLawPpm::new(get(0), get(1), get(2))),
            PpmKind::Amdahl => Ppm::Amdahl(AmdahlPpm::new(get(0), get(1))),
        }
    }
}

/// Builds one PPM per row from a flat row-major parameter matrix —
/// `params_per_row` values per model, the shape the compiled forest's
/// batch-major kernel writes. The batched serving path hands the flat
/// output slice straight here without materialising per-row vectors; each
/// model equals [`Ppm::from_parameters`] on the corresponding chunk.
///
/// A trailing partial chunk (fewer than `params_per_row` values) is
/// ignored, matching `chunks_exact` semantics; `params_per_row == 0`
/// yields no models.
pub fn ppms_from_flat(kind: PpmKind, flat: &[f64], params_per_row: usize) -> Vec<Ppm> {
    if params_per_row == 0 {
        return Vec::new();
    }
    flat.chunks_exact(params_per_row)
        .map(|chunk| Ppm::from_parameters(kind, chunk))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_predicts_and_saturates() {
        let ppm = PowerLawPpm::new(-0.8, 400.0, 60.0);
        assert!((ppm.predict(1.0) - 400.0).abs() < 1e-9);
        assert!(ppm.predict(8.0) < ppm.predict(2.0));
        // Far out the floor applies.
        assert_eq!(ppm.predict(1e6), 60.0);
        let sat = ppm.saturation_point().unwrap();
        assert!((ppm.predict(sat) - 60.0).abs() < 1e-6);
    }

    #[test]
    fn power_law_clamps_positive_exponent() {
        let ppm = PowerLawPpm::new(0.5, 100.0, 10.0);
        assert_eq!(ppm.a, 0.0);
        // Constant curve, never increasing.
        assert_eq!(ppm.predict(1.0), ppm.predict(50.0));
    }

    #[test]
    fn amdahl_predicts_serial_plus_scalable() {
        let ppm = AmdahlPpm::new(30.0, 300.0);
        assert!((ppm.predict(1.0) - 330.0).abs() < 1e-9);
        assert!((ppm.predict(10.0) - 60.0).abs() < 1e-9);
        // Approaches s asymptotically.
        assert!((ppm.predict(1e9) - 30.0).abs() < 1e-3);
    }

    #[test]
    fn amdahl_clamps_negative_components() {
        let ppm = AmdahlPpm::new(-5.0, -10.0);
        assert_eq!(ppm.predict(1.0), 0.0);
        assert_eq!(ppm.predict(100.0), 0.0);
    }

    #[test]
    fn both_models_are_monotone_non_increasing() {
        let models = [
            Ppm::PowerLaw(PowerLawPpm::new(-0.6, 500.0, 40.0)),
            Ppm::Amdahl(AmdahlPpm::new(20.0, 480.0)),
        ];
        for model in models {
            let mut last = f64::INFINITY;
            for n in 1..=64 {
                let t = model.predict(n as f64);
                assert!(t <= last + 1e-12, "{model:?} increased at n={n}");
                last = t;
            }
        }
    }

    #[test]
    fn parameter_roundtrip() {
        let pl = Ppm::PowerLaw(PowerLawPpm::new(-0.7, 321.0, 45.0));
        let back = Ppm::from_parameters(PpmKind::PowerLaw, &pl.parameters());
        assert_eq!(pl, back);
        let al = Ppm::Amdahl(AmdahlPpm::new(12.0, 200.0));
        let back = Ppm::from_parameters(PpmKind::Amdahl, &al.parameters());
        assert_eq!(al, back);
    }

    #[test]
    fn from_parameters_handles_short_vectors() {
        let model = Ppm::from_parameters(PpmKind::PowerLaw, &[-0.5]);
        assert_eq!(model.parameters(), vec![-0.5, 0.0, 0.0]);
    }

    #[test]
    fn predictions_below_n_one_clamp_to_n_one() {
        let ppm = Ppm::Amdahl(AmdahlPpm::new(10.0, 100.0));
        assert_eq!(ppm.predict(0.0), ppm.predict(1.0));
        assert_eq!(ppm.predict(-3.0), ppm.predict(1.0));
    }

    #[test]
    fn flat_parameter_matrix_builds_one_ppm_per_row() {
        let flat = [-0.5, 100.0, 10.0, -0.2, 80.0, 5.0];
        let ppms = ppms_from_flat(PpmKind::PowerLaw, &flat, 3);
        assert_eq!(ppms.len(), 2);
        assert_eq!(ppms[0], Ppm::from_parameters(PpmKind::PowerLaw, &flat[..3]));
        assert_eq!(ppms[1], Ppm::from_parameters(PpmKind::PowerLaw, &flat[3..]));
        // Degenerate shapes: zero-width rows yield nothing, a trailing
        // partial chunk is dropped.
        assert!(ppms_from_flat(PpmKind::Amdahl, &flat, 0).is_empty());
        assert_eq!(ppms_from_flat(PpmKind::Amdahl, &flat[..5], 2).len(), 2);
    }

    #[test]
    fn kind_labels_match_paper_names() {
        assert_eq!(PpmKind::PowerLaw.label(), "AE_PL");
        assert_eq!(PpmKind::Amdahl.label(), "AE_AL");
        assert_eq!(PpmKind::PowerLaw.parameter_names(), &["a", "b", "m"]);
        assert_eq!(PpmKind::Amdahl.parameter_names(), &["s", "p"]);
    }
}
