//! Piecewise-linear performance curves.
//!
//! Section 5.3 interpolates the "Actual" and Sparklens series
//! piecewise-linearly over all `n ∈ [1, 48]` to expand the set of candidate
//! configurations. [`PerfCurve`] is that interpolation plus the small
//! queries the selection logic needs (minimum time, evaluation at arbitrary
//! points, slowdown relative to the minimum).

use serde::{Deserialize, Serialize};

/// A piecewise-linear curve `resource count → run time`, built from sampled
/// points and queried at arbitrary (fractional or integer) counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerfCurve {
    /// Sample points sorted by resource count, deduplicated.
    points: Vec<(f64, f64)>,
}

impl PerfCurve {
    /// Builds a curve from `(n, t)` samples. Panics if no samples are given.
    /// Duplicate `n` values keep the last sample.
    pub fn from_samples(samples: &[(usize, f64)]) -> Self {
        assert!(
            !samples.is_empty(),
            "a performance curve needs at least one sample"
        );
        let mut points: Vec<(f64, f64)> = samples.iter().map(|&(n, t)| (n as f64, t)).collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        points.dedup_by(|a, b| {
            if (a.0 - b.0).abs() < 1e-12 {
                b.1 = a.1;
                true
            } else {
                false
            }
        });
        Self { points }
    }

    /// The sampled points (sorted by resource count).
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// The smallest and largest sampled resource counts.
    pub fn domain(&self) -> (f64, f64) {
        (self.points[0].0, self.points[self.points.len() - 1].0)
    }

    /// Evaluates the curve at `n` with piecewise-linear interpolation;
    /// values outside the sampled domain clamp to the nearest endpoint.
    ///
    /// The containing segment is found by binary search (the points are
    /// sorted by construction), which keeps dense-range expansion —
    /// 48 evaluations per query in the selection path — O(log points) per
    /// point instead of a linear window scan.
    pub fn evaluate(&self, n: f64) -> f64 {
        let (lo, hi) = self.domain();
        if n <= lo {
            return self.points[0].1;
        }
        if n >= hi {
            return self.points[self.points.len() - 1].1;
        }
        // First point with x >= n; its predecessor starts the containing
        // segment (the same segment a first-match window scan selects).
        let idx = self.points.partition_point(|p| p.0 < n);
        let (x0, y0) = self.points[idx - 1];
        let (x1, y1) = self.points[idx];
        if (x1 - x0).abs() < 1e-12 {
            return y0;
        }
        let frac = (n - x0) / (x1 - x0);
        y0 + frac * (y1 - y0)
    }

    /// Evaluates the curve at every integer count in `[lo, hi]`.
    pub fn evaluate_integer_range(&self, lo: usize, hi: usize) -> Vec<(usize, f64)> {
        (lo..=hi).map(|n| (n, self.evaluate(n as f64))).collect()
    }

    /// The minimum run time over the sampled points.
    pub fn min_time(&self) -> f64 {
        self.points
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min)
    }

    /// Slowdown of the curve at `n` relative to its minimum time.
    pub fn slowdown_at(&self, n: f64) -> f64 {
        let min = self.min_time();
        if min <= 0.0 {
            return 1.0;
        }
        self.evaluate(n) / min
    }

    /// The expected-runtime-under-preemption view of this curve: every
    /// point `(n, t)` becomes `(n, t / (1 − λ·n·R))` under the given risk
    /// model (see [`crate::risk::PreemptionRisk`]). An inactive risk model
    /// returns the curve unchanged.
    pub fn under_preemption(&self, risk: &crate::risk::PreemptionRisk) -> PerfCurve {
        risk.adjust_curve(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_curve() -> PerfCurve {
        PerfCurve::from_samples(&[(1, 500.0), (3, 250.0), (8, 140.0), (16, 110.0), (48, 100.0)])
    }

    #[test]
    fn interpolation_between_samples() {
        let curve = sample_curve();
        // Midpoint between n=1 (500) and n=3 (250) is 375 at n=2.
        assert!((curve.evaluate(2.0) - 375.0).abs() < 1e-9);
        // Exact sample points are reproduced.
        assert!((curve.evaluate(8.0) - 140.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_domain_clamps() {
        let curve = sample_curve();
        assert_eq!(curve.evaluate(0.5), 500.0);
        assert_eq!(curve.evaluate(100.0), 100.0);
    }

    #[test]
    fn integer_range_has_one_point_per_count() {
        let curve = sample_curve();
        let range = curve.evaluate_integer_range(1, 48);
        assert_eq!(range.len(), 48);
        assert_eq!(range[0].0, 1);
        assert_eq!(range[47].0, 48);
        // Monotone for this monotone input.
        for w in range.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }

    #[test]
    fn min_time_and_slowdown() {
        let curve = sample_curve();
        assert_eq!(curve.min_time(), 100.0);
        assert!((curve.slowdown_at(1.0) - 5.0).abs() < 1e-9);
        assert!((curve.slowdown_at(48.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_and_unsorted_samples_are_normalised() {
        let curve = PerfCurve::from_samples(&[(8, 100.0), (1, 300.0), (8, 90.0)]);
        assert_eq!(curve.points().len(), 2);
        assert!((curve.evaluate(8.0) - 90.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn empty_samples_panic() {
        let _ = PerfCurve::from_samples(&[]);
    }
}
