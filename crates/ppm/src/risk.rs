//! Preemption-risk adjustment of performance curves.
//!
//! A PPM predicts run time on a reliable cluster, but on spot-priced or
//! serverless capacity every additional executor is another revocation
//! lottery ticket: scaling out shortens the fault-free run time while
//! increasing the expected number of preemptions the run must absorb.
//! Selection that ignores this systematically over-scales.
//!
//! The adjustment here is the standard renewal-style expectation. Let
//! `λ` be the revocation rate per executor-second and `R` the expected
//! recovery cost (re-acquisition through the allocation lag plus lost
//! work) per revocation, in seconds. Over a run of expected length `E`,
//! `n` executors suffer `λ·n·E` revocations costing `λ·n·E·R` seconds, so
//!
//! ```text
//! E(n) = t(n) + λ·n·E(n)·R   ⇒   E(n) = t(n) / (1 − λ·n·R)
//! ```
//!
//! valid while the *hazard* `λ·n·R < 1`; beyond that the system spends
//! more than all of its time recovering and the expected runtime diverges
//! ([`PreemptionRisk::adjust`] returns infinity, which selection treats as
//! an excluded configuration). The denominator makes the penalty grow with
//! `n`, which is exactly the risk the ISSUE calls out: larger `n` means
//! more exposure.

use serde::{Deserialize, Serialize};

use crate::curve::PerfCurve;

/// Expected-runtime-under-preemption model: a revocation rate and the
/// expected per-revocation recovery cost. `Copy`, so it can ride along in
/// configuration structs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreemptionRisk {
    /// Revocation rate per executor-minute (matching the engine's
    /// `FaultPlan::preemption_rate_per_executor_min`).
    pub rate_per_executor_min: f64,
    /// Expected recovery cost per revocation, in seconds: replacement
    /// re-acquisition through the allocation lag plus the expected re-run
    /// of lost work.
    pub recovery_secs: f64,
}

impl PreemptionRisk {
    /// A risk model from a rate and recovery cost.
    pub fn new(rate_per_executor_min: f64, recovery_secs: f64) -> Self {
        Self {
            rate_per_executor_min,
            recovery_secs,
        }
    }

    /// The zero-risk model (adjustments are the identity).
    pub fn none() -> Self {
        Self {
            rate_per_executor_min: 0.0,
            recovery_secs: 0.0,
        }
    }

    /// True when the model changes anything.
    pub fn is_active(&self) -> bool {
        self.rate_per_executor_min > 0.0 && self.recovery_secs > 0.0
    }

    /// The hazard `λ·n·R`: the expected fraction of wall-clock time spent
    /// recovering at `n` executors.
    pub fn hazard(&self, n: usize) -> f64 {
        (self.rate_per_executor_min / 60.0) * n as f64 * self.recovery_secs
    }

    /// Expected runtime under preemption: `t / (1 − λ·n·R)`, or infinity
    /// once the hazard reaches 1 (the configuration cannot be expected to
    /// finish). Inactive models return `t` unchanged, bit for bit.
    pub fn adjust(&self, n: usize, t: f64) -> f64 {
        if !self.is_active() {
            return t;
        }
        let hazard = self.hazard(n);
        if hazard >= 1.0 {
            f64::INFINITY
        } else {
            t / (1.0 - hazard)
        }
    }

    /// Applies [`PreemptionRisk::adjust`] to every point of a sampled
    /// curve. Inactive models return the input unchanged.
    pub fn adjust_samples(&self, samples: &[(usize, f64)]) -> Vec<(usize, f64)> {
        samples
            .iter()
            .map(|&(n, t)| (n, self.adjust(n, t)))
            .collect()
    }

    /// Applies the adjustment to a [`PerfCurve`], re-sampling each stored
    /// point. Fractional point positions are rounded to the nearest count
    /// for the exposure term (curves built from integer samples, the only
    /// kind the pipeline produces, are unaffected by the rounding).
    pub fn adjust_curve(&self, curve: &PerfCurve) -> PerfCurve {
        if !self.is_active() {
            return curve.clone();
        }
        let samples: Vec<(usize, f64)> = curve
            .points()
            .iter()
            .map(|&(n, t)| {
                let count = n.round().max(0.0) as usize;
                (count, self.adjust(count, t))
            })
            .collect();
        PerfCurve::from_samples(&samples)
    }
}

impl Default for PreemptionRisk {
    fn default() -> Self {
        Self::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_risk_is_identity() {
        let risk = PreemptionRisk::none();
        assert!(!risk.is_active());
        assert_eq!(risk.adjust(48, 123.456).to_bits(), 123.456f64.to_bits());
        let samples = [(1usize, 500.0), (8, 140.0)];
        assert_eq!(risk.adjust_samples(&samples), samples.to_vec());
    }

    #[test]
    fn penalty_grows_with_executor_count() {
        let risk = PreemptionRisk::new(0.1, 30.0);
        let t = 100.0;
        let mut last = 0.0;
        for n in [1usize, 4, 16, 48] {
            let adjusted = risk.adjust(n, t);
            assert!(adjusted > t, "n={n}: {adjusted} should exceed {t}");
            let penalty = adjusted - t;
            assert!(penalty > last, "penalty must grow with n");
            last = penalty;
        }
    }

    #[test]
    fn hazard_at_or_past_one_diverges() {
        // λ = 1/min = 1/60 s⁻¹; n=60, R=60 s → hazard 60 ≥ 1.
        let risk = PreemptionRisk::new(1.0, 60.0);
        assert!(risk.hazard(60) >= 1.0);
        assert!(risk.adjust(60, 100.0).is_infinite());
    }

    #[test]
    fn adjust_curve_reshapes_minimum() {
        // Fault-free the curve keeps improving to n=48; with risk, the big
        // configuration pays so much expected recovery that a smaller n
        // wins.
        let curve = PerfCurve::from_samples(&[(1, 500.0), (8, 140.0), (48, 100.0)]);
        let risk = PreemptionRisk::new(0.02, 30.0);
        let adjusted = risk.adjust_curve(&curve);
        let t8 = adjusted.evaluate(8.0);
        let t48 = adjusted.evaluate(48.0);
        assert!(t8.is_finite() && t48.is_finite());
        assert!(
            t8 < t48,
            "risk should flip the ordering: E(8)={t8} E(48)={t48}"
        );
    }

    #[test]
    fn expected_runtime_formula_matches_by_hand() {
        let risk = PreemptionRisk::new(0.1, 30.0); // λ·R = 0.05/min = 1/1200 per sec·exec
                                                   // hazard(8) = (0.1/60)·8·30 = 0.4 → E = 100 / 0.6
        let expected = 100.0 / (1.0 - 0.4);
        assert!((risk.adjust(8, 100.0) - expected).abs() < 1e-9);
    }
}
