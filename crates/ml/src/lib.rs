//! # ae-ml — machine-learning substrate for the AutoExecutor reproduction
//!
//! The paper trains its *parameter model* with scikit-learn's
//! `RandomForestRegressor` and ships it to the query optimizer as an ONNX
//! model. Neither scikit-learn nor an ONNX runtime is available to this
//! reproduction, so this crate provides the pieces from scratch:
//!
//! * [`dataset`] — feature matrices, train/test splits, k-fold and repeated
//!   k-fold cross-validation.
//! * [`linreg`] — ordinary-least-squares linear regression (used to fit the
//!   PPM parameters in log space / `1/n` space).
//! * [`tree`] — CART regression trees with multi-output targets.
//! * [`forest`] — bagged random forests over those trees (the parameter
//!   model), mirroring scikit-learn's defaults (100 estimators).
//! * [`compiled`] — the fitted forest compiled into flat struct-of-arrays
//!   tree arenas with a pooled leaf table and a batch-major scoring kernel
//!   (the serving-path inference representation; bit-identical to the
//!   interpreter).
//! * [`importance`] — permutation feature importance (Figure 15).
//! * [`matrix`] — flat row-major feature matrices for the batched serving
//!   path (one contiguous buffer per batch instead of a `Vec` per request).
//! * [`portable`] — a compact, serialisable model format plus an in-process
//!   scoring runtime, standing in for the ONNX export/score path.
//! * [`metrics`] — the error metrics used throughout the evaluation.
//!
//! Everything is deterministic given a seed so experiments are reproducible.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod compiled;
pub mod dataset;
pub mod forest;
pub mod importance;
pub mod json;
pub mod linreg;
pub mod matrix;
pub mod metrics;
pub mod portable;
pub mod tree;

pub use compiled::CompiledForest;
pub use dataset::{Dataset, FoldSplit, KFold, RepeatedKFold};
pub use forest::{RandomForestConfig, RandomForestRegressor};
pub use importance::{permutation_importance, ImportanceReport};
pub use linreg::{LinearRegression, SimpleLinearFit};
pub use matrix::FeatureMatrix;
pub use portable::{PortableModel, ScoringRuntime};
pub use tree::{DecisionTreeConfig, DecisionTreeRegressor};

/// Errors produced by the ML substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// The dataset is empty or otherwise unusable for the requested operation.
    EmptyDataset,
    /// The shapes of features and targets disagree.
    ShapeMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A model was asked to predict before being fitted.
    NotFitted,
    /// (De)serialisation of a portable model failed.
    Serialization(String),
    /// Numerical failure (singular system, non-finite value, ...).
    Numerical(String),
}

impl std::fmt::Display for MlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlError::EmptyDataset => write!(f, "dataset is empty"),
            MlError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            MlError::NotFitted => write!(f, "model has not been fitted"),
            MlError::Serialization(s) => write!(f, "serialization error: {s}"),
            MlError::Numerical(s) => write!(f, "numerical error: {s}"),
        }
    }
}

impl std::error::Error for MlError {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, MlError>;
