//! Bagged random-forest regression over CART trees.
//!
//! This is the *parameter model* of the paper (Section 3.4): scikit-learn's
//! `RandomForestRegressor` with its default 100 estimators, trained once per
//! workload on one row per query, predicting the PPM parameter vector.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{derive_stream_seed, Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::json::Value;
use crate::matrix::FeatureMatrix;
use crate::tree::{DecisionTreeConfig, DecisionTreeRegressor};
use crate::{MlError, Result};

/// Hyper-parameters for the random forest.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees (scikit-learn default: 100).
    pub n_estimators: usize,
    /// Per-tree configuration.
    pub tree: DecisionTreeConfig,
    /// Fraction of features considered at each split (1.0 = all, the
    /// scikit-learn default for regression).
    pub max_features_fraction: f64,
    /// Whether each tree is trained on a bootstrap sample of the rows.
    pub bootstrap: bool,
    /// RNG seed for bootstrapping and feature subsampling.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        Self {
            n_estimators: 100,
            tree: DecisionTreeConfig::default(),
            max_features_fraction: 1.0,
            bootstrap: true,
            seed: 0,
        }
    }
}

impl RandomForestConfig {
    /// The configuration used throughout the paper's evaluation: 100
    /// estimators with otherwise default settings (Section 5.6).
    pub fn paper_default(seed: u64) -> Self {
        Self {
            seed,
            ..Default::default()
        }
    }
}

/// A fitted (or to-be-fitted) random-forest regressor with vector outputs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForestRegressor {
    config: RandomForestConfig,
    trees: Vec<DecisionTreeRegressor>,
    feature_names: Vec<String>,
    target_names: Vec<String>,
}

impl RandomForestRegressor {
    /// Creates an unfitted forest.
    pub fn new(config: RandomForestConfig) -> Self {
        Self {
            config,
            trees: Vec::new(),
            feature_names: Vec::new(),
            target_names: Vec::new(),
        }
    }

    /// The configuration the forest was created with.
    pub fn config(&self) -> &RandomForestConfig {
        &self.config
    }

    /// Whether the forest has been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.trees.is_empty()
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Feature names captured from the training dataset.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Target names captured from the training dataset.
    pub fn target_names(&self) -> &[String] {
        &self.target_names
    }

    /// Total number of tree nodes; proxies the serialized model size the
    /// paper reports (~1 MB for 103 queries).
    pub fn total_nodes(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }

    /// Fits the forest on a [`Dataset`].
    ///
    /// Trees are trained in parallel (rayon) with one RNG per tree, seeded
    /// by `derive_stream_seed(config.seed, tree_index)`. Because no random
    /// state is shared across trees, the fitted forest is bit-identical for
    /// any worker-thread count, including 1.
    pub fn fit(&mut self, data: &Dataset) -> Result<()> {
        if data.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if self.config.n_estimators == 0 {
            return Err(MlError::ShapeMismatch {
                detail: "n_estimators must be at least 1".into(),
            });
        }
        self.feature_names = data.feature_names().to_vec();
        self.target_names = data.target_names().to_vec();
        let rows = data.rows();
        let targets = data.targets();
        let n = rows.len();
        let d = data.num_features();
        let max_features = ((d as f64) * self.config.max_features_fraction)
            .round()
            .clamp(1.0, d as f64) as usize;

        let config = self.config;
        self.trees = (0..config.n_estimators)
            .into_par_iter()
            .map(|tree_idx| {
                let mut rng =
                    StdRng::seed_from_u64(derive_stream_seed(config.seed, tree_idx as u64));
                let sample: Vec<usize> = if config.bootstrap {
                    (0..n).map(|_| rng.gen_range(0..n)).collect()
                } else {
                    (0..n).collect()
                };
                // Each split draws a fresh random subset of feature columns.
                let mut picker = move |num_features: usize| {
                    if max_features >= num_features {
                        (0..num_features).collect::<Vec<_>>()
                    } else {
                        let mut cols: Vec<usize> = (0..num_features).collect();
                        cols.shuffle(&mut rng);
                        cols.truncate(max_features);
                        cols
                    }
                };
                let mut tree = DecisionTreeRegressor::new(config.tree);
                tree.fit_with(rows, targets, &sample, &mut picker)?;
                Ok(tree)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(())
    }

    /// Predicts the mean target vector over all trees for one feature row.
    pub fn predict(&self, row: &[f64]) -> Result<Vec<f64>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let mut acc = vec![0.0; self.trees[0].num_outputs()];
        self.predict_into(row, &mut acc)?;
        Ok(acc)
    }

    /// Predicts one row into a caller-provided output buffer (`out.len()`
    /// must equal the number of targets). This is the shared scoring core:
    /// [`predict`](Self::predict) and the batched entry points all funnel
    /// through it, so single-row and batched inference accumulate tree
    /// outputs in exactly the same order and are bit-identical.
    pub fn predict_into(&self, row: &[f64], out: &mut [f64]) -> Result<()> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let k = self.trees[0].num_outputs();
        if out.len() != k {
            return Err(MlError::ShapeMismatch {
                detail: format!("output buffer has {} slots, forest predicts {k}", out.len()),
            });
        }
        out.fill(0.0);
        for tree in &self.trees {
            let p = tree.predict_ref(row)?;
            for (a, v) in out.iter_mut().zip(p) {
                *a += v;
            }
        }
        let nt = self.trees.len() as f64;
        for a in out.iter_mut() {
            *a /= nt;
        }
        Ok(())
    }

    /// Predicts every row of a [`FeatureMatrix`] (output order matches row
    /// order), returning one `Vec<f64>` per row. Results are bit-identical
    /// to calling [`predict`](Self::predict) row by row.
    ///
    /// This is the interpreted batch walk; hot callers use
    /// [`predict_matrix_into`](Self::predict_matrix_into) (flat output, no
    /// per-row allocation) or compile the forest
    /// ([`compile`](Self::compile)) once and run the batch-major kernel.
    pub fn predict_matrix(&self, matrix: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let k = self.trees[0].num_outputs();
        let mut flat = Vec::new();
        self.predict_matrix_into(matrix, &mut flat)?;
        Ok(flat.chunks(k.max(1)).map(<[f64]>::to_vec).collect())
    }

    /// Flat-output batch prediction: fills `out` with
    /// `matrix.len() × num_outputs` values, row-major, reusing the buffer's
    /// allocation across batches. Bit-identical to
    /// [`predict`](Self::predict) per row.
    pub fn predict_matrix_into(&self, matrix: &FeatureMatrix, out: &mut Vec<f64>) -> Result<()> {
        if self.trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let k = self.trees[0].num_outputs();
        out.clear();
        out.resize(matrix.len() * k, 0.0);
        for (row, slot) in matrix.rows().zip(out.chunks_mut(k.max(1))) {
            self.predict_into(row, slot)?;
        }
        Ok(())
    }

    /// Compiles the fitted forest into the flat struct-of-arrays inference
    /// representation (see [`crate::compiled::CompiledForest`]).
    pub fn compile(&self) -> Result<crate::compiled::CompiledForest> {
        crate::compiled::CompiledForest::compile(self)
    }

    /// The fitted trees (compiled-forest construction walks them).
    pub(crate) fn trees(&self) -> &[DecisionTreeRegressor] {
        &self.trees
    }

    /// Predicts target vectors for many rows (output order matches input
    /// order). Rows are scored in parallel **chunks** — a single row's tree
    /// walk is microseconds, so per-row task dispatch would cost more than
    /// the work; one contiguous chunk per worker keeps dispatch overhead
    /// off the scoring path.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        let workers = rayon::current_num_threads().max(1);
        if workers <= 1 || rows.len() < 2 * workers {
            return rows.iter().map(|r| self.predict(r)).collect();
        }
        let chunk_size = rows.len().div_ceil(workers);
        let chunks: Vec<&[Vec<f64>]> = rows.chunks(chunk_size).collect();
        let nested: Vec<Vec<Vec<f64>>> = chunks
            .into_par_iter()
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|r| self.predict(r))
                    .collect::<Result<Vec<_>>>()
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(nested.into_iter().flatten().collect())
    }

    /// Maximum depth across the fitted trees (0 before fitting).
    pub fn max_tree_depth(&self) -> usize {
        self.trees.iter().map(|t| t.depth()).max().unwrap_or(0)
    }

    /// Encodes the forest for the portable-model JSON format.
    pub(crate) fn to_json_value(&self) -> Value {
        Value::object([
            ("config", forest_config_to_json(&self.config)),
            (
                "trees",
                Value::Array(self.trees.iter().map(|t| t.to_json_value()).collect()),
            ),
            ("feature_names", Value::strings(&self.feature_names)),
            ("target_names", Value::strings(&self.target_names)),
        ])
    }

    /// Decodes a forest from the portable-model JSON format.
    pub(crate) fn from_json_value(value: &Value) -> Result<Self> {
        let config = forest_config_from_json(value.field("config")?)?;
        let trees = value
            .field("trees")?
            .as_array()?
            .iter()
            .map(DecisionTreeRegressor::from_json_value)
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            config,
            trees,
            feature_names: value.field("feature_names")?.as_string_vec()?,
            target_names: value.field("target_names")?.as_string_vec()?,
        })
    }
}

fn forest_config_to_json(config: &RandomForestConfig) -> Value {
    Value::object([
        ("n_estimators", Value::Number(config.n_estimators as f64)),
        ("tree", config.tree.to_json_value()),
        (
            "max_features_fraction",
            Value::Number(config.max_features_fraction),
        ),
        ("bootstrap", Value::Bool(config.bootstrap)),
        ("seed", Value::Number(config.seed as f64)),
    ])
}

fn forest_config_from_json(value: &Value) -> Result<RandomForestConfig> {
    Ok(RandomForestConfig {
        n_estimators: value.field("n_estimators")?.as_usize()?,
        tree: crate::tree::DecisionTreeConfig::from_json_value(value.field("tree")?)?,
        max_features_fraction: value.field("max_features_fraction")?.as_f64()?,
        bootstrap: value.field("bootstrap")?.as_bool()?,
        seed: value.field("seed")?.as_u64()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_dataset(n: usize) -> Dataset {
        // Two outputs with different dependence on the two features.
        let mut d = Dataset::new(
            vec!["x0".into(), "x1".into()],
            vec!["y0".into(), "y1".into()],
        );
        for i in 0..n {
            let x0 = (i % 17) as f64;
            let x1 = (i % 5) as f64;
            let y0 = 3.0 * x0 + 0.5 * x1;
            let y1 = if x1 > 2.0 { 50.0 } else { 10.0 };
            d.push_row(format!("q{i}"), vec![x0, x1], vec![y0, y1])
                .unwrap();
        }
        d
    }

    fn small_forest(seed: u64) -> RandomForestConfig {
        RandomForestConfig {
            n_estimators: 25,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn forest_fits_and_predicts_reasonably() {
        let data = synthetic_dataset(120);
        let mut rf = RandomForestRegressor::new(small_forest(3));
        rf.fit(&data).unwrap();
        assert!(rf.is_fitted());
        assert_eq!(rf.num_trees(), 25);
        let p = rf.predict(&[8.0, 4.0]).unwrap();
        // y0 = 26, y1 = 50 for this input.
        assert!((p[0] - 26.0).abs() < 6.0, "y0 prediction too far: {}", p[0]);
        assert!(
            (p[1] - 50.0).abs() < 10.0,
            "y1 prediction too far: {}",
            p[1]
        );
    }

    #[test]
    fn forest_is_deterministic_for_a_seed() {
        let data = synthetic_dataset(60);
        let mut a = RandomForestRegressor::new(small_forest(9));
        let mut b = RandomForestRegressor::new(small_forest(9));
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        let row = vec![5.0, 1.0];
        assert_eq!(a.predict(&row).unwrap(), b.predict(&row).unwrap());
    }

    #[test]
    fn different_seeds_give_different_forests() {
        let data = synthetic_dataset(60);
        let mut a = RandomForestRegressor::new(small_forest(1));
        let mut b = RandomForestRegressor::new(small_forest(2));
        a.fit(&data).unwrap();
        b.fit(&data).unwrap();
        // Not a strict requirement per-row, but the node structure should differ.
        assert_ne!(a.total_nodes(), 0);
        assert!(
            a.total_nodes() != b.total_nodes()
                || a.predict(&[3.0, 3.0]).unwrap() != b.predict(&[3.0, 3.0]).unwrap()
        );
    }

    #[test]
    fn predict_before_fit_errors() {
        let rf = RandomForestRegressor::new(RandomForestConfig::default());
        assert!(matches!(rf.predict(&[1.0]), Err(MlError::NotFitted)));
    }

    #[test]
    fn fit_on_empty_dataset_errors() {
        let empty = Dataset::new(vec!["x".into()], vec!["y".into()]);
        let mut rf = RandomForestRegressor::new(RandomForestConfig::default());
        assert!(matches!(rf.fit(&empty), Err(MlError::EmptyDataset)));
    }

    #[test]
    fn zero_estimators_is_rejected() {
        let data = synthetic_dataset(10);
        let mut rf = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 0,
            ..Default::default()
        });
        assert!(rf.fit(&data).is_err());
    }

    #[test]
    fn feature_subsampling_still_produces_valid_model() {
        let data = synthetic_dataset(80);
        let mut rf = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 15,
            max_features_fraction: 0.5,
            seed: 4,
            ..Default::default()
        });
        rf.fit(&data).unwrap();
        let p = rf.predict(&[2.0, 4.0]).unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn batch_prediction_matches_individual_calls() {
        let data = synthetic_dataset(50);
        let mut rf = RandomForestRegressor::new(small_forest(7));
        rf.fit(&data).unwrap();
        let rows = vec![vec![1.0, 1.0], vec![10.0, 4.0]];
        let batch = rf.predict_batch(&rows).unwrap();
        assert_eq!(batch[0], rf.predict(&rows[0]).unwrap());
        assert_eq!(batch[1], rf.predict(&rows[1]).unwrap());
    }

    #[test]
    fn matrix_prediction_is_bit_identical_to_per_row_calls() {
        let data = synthetic_dataset(50);
        let mut rf = RandomForestRegressor::new(small_forest(11));
        rf.fit(&data).unwrap();
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, (i % 5) as f64]).collect();
        let matrix = FeatureMatrix::from_rows(&rows).unwrap();
        let batched = rf.predict_matrix(&matrix).unwrap();
        assert_eq!(batched.len(), rows.len());
        for (row, out) in rows.iter().zip(&batched) {
            let single = rf.predict(row).unwrap();
            let single_bits: Vec<u64> = single.iter().map(|v| v.to_bits()).collect();
            let out_bits: Vec<u64> = out.iter().map(|v| v.to_bits()).collect();
            assert_eq!(single_bits, out_bits);
        }
    }

    #[test]
    fn predict_into_validates_buffer_width() {
        let data = synthetic_dataset(30);
        let mut rf = RandomForestRegressor::new(small_forest(2));
        rf.fit(&data).unwrap();
        let mut too_small = vec![0.0; 1];
        assert!(rf.predict_into(&[1.0, 1.0], &mut too_small).is_err());
        let unfitted = RandomForestRegressor::new(RandomForestConfig::default());
        assert!(matches!(
            unfitted.predict_matrix(&FeatureMatrix::new(2)),
            Err(MlError::NotFitted)
        ));
    }
}
