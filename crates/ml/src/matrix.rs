//! Flat row-major feature matrices for batched inference.
//!
//! The serving path scores many concurrently submitted queries per forest
//! call. Collecting their feature rows into one contiguous buffer — instead
//! of a `Vec<Vec<f64>>` with one heap allocation per request — amortizes the
//! featurized-matrix layout across the whole batch, and the buffer is
//! reusable (`clear` keeps the allocation) so a long-lived batching worker
//! allocates only when a batch outgrows every previous one.

use crate::{MlError, Result};

/// A dense row-major matrix of feature rows with a fixed column count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FeatureMatrix {
    width: usize,
    data: Vec<f64>,
}

impl FeatureMatrix {
    /// Creates an empty matrix whose rows will have `width` columns.
    pub fn new(width: usize) -> Self {
        Self {
            width,
            data: Vec::new(),
        }
    }

    /// Creates an empty matrix with capacity reserved for `rows` rows.
    pub fn with_capacity(width: usize, rows: usize) -> Self {
        Self {
            width,
            data: Vec::with_capacity(width * rows),
        }
    }

    /// Number of columns per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of rows currently stored.
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.width).unwrap_or(0)
    }

    /// True when no rows have been pushed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one feature row. The row length must match the matrix width.
    pub fn push_row(&mut self, row: &[f64]) -> Result<()> {
        if row.len() != self.width {
            return Err(MlError::ShapeMismatch {
                detail: format!(
                    "feature row has {} columns, matrix expects {}",
                    row.len(),
                    self.width
                ),
            });
        }
        self.data.extend_from_slice(row);
        Ok(())
    }

    /// Appends one feature row from an iterator (avoids an intermediate
    /// `Vec` when the row is produced by a projection). The iterator must
    /// yield exactly `width` values.
    pub fn push_row_from(&mut self, row: impl IntoIterator<Item = f64>) -> Result<()> {
        let before = self.data.len();
        self.data.extend(row);
        let pushed = self.data.len() - before;
        if pushed != self.width {
            self.data.truncate(before);
            return Err(MlError::ShapeMismatch {
                detail: format!(
                    "feature row iterator yielded {pushed} columns, matrix expects {}",
                    self.width
                ),
            });
        }
        Ok(())
    }

    /// The `i`-th row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.width..(i + 1) * self.width]
    }

    /// Iterates over the rows in insertion order.
    pub fn rows(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.width.max(1))
    }

    /// Removes all rows, keeping the allocation (and optionally adopting a
    /// new width for the next batch).
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Clears the matrix and sets a new column count for subsequent rows.
    pub fn reset(&mut self, width: usize) {
        self.data.clear();
        self.width = width;
    }

    /// Builds a matrix by copying a slice of row vectors (all must share one
    /// length).
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self> {
        let width = rows.first().map_or(0, Vec::len);
        let mut m = Self::with_capacity(width, rows.len());
        for row in rows {
            m.push_row(row)?;
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_rows() {
        let mut m = FeatureMatrix::new(3);
        assert!(m.is_empty());
        m.push_row(&[1.0, 2.0, 3.0]).unwrap();
        m.push_row(&[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        let collected: Vec<&[f64]> = m.rows().collect();
        assert_eq!(collected.len(), 2);
        assert_eq!(collected[0], &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn width_mismatch_is_rejected() {
        let mut m = FeatureMatrix::new(2);
        assert!(m.push_row(&[1.0]).is_err());
        assert!(m.push_row_from([1.0, 2.0, 3.0]).is_err());
        // A failed push leaves the matrix unchanged.
        assert!(m.is_empty());
        m.push_row_from([7.0, 8.0]).unwrap();
        assert_eq!(m.row(0), &[7.0, 8.0]);
    }

    #[test]
    fn clear_keeps_allocation_reset_changes_width() {
        let mut m = FeatureMatrix::with_capacity(2, 4);
        m.push_row(&[1.0, 2.0]).unwrap();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.width(), 2);
        m.reset(3);
        m.push_row(&[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn from_rows_roundtrip() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let m = FeatureMatrix::from_rows(&rows).unwrap();
        assert_eq!(m.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(m.row(i), row.as_slice());
        }
        let ragged = vec![vec![1.0], vec![2.0, 3.0]];
        assert!(FeatureMatrix::from_rows(&ragged).is_err());
    }

    #[test]
    fn empty_width_zero_matrix_is_sane() {
        let m = FeatureMatrix::new(0);
        assert_eq!(m.len(), 0);
        assert!(m.rows().next().is_none());
    }
}
