//! Permutation feature importance (Figure 15 and the Section 5.7 ablation).
//!
//! Importance of a feature is the increase in prediction error when that
//! feature's column is randomly permuted across the evaluation rows,
//! averaged over a number of repetitions — the same procedure as
//! scikit-learn's `permutation_importance` that the paper cites.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{derive_stream_seed, SeedableRng};
use rayon::prelude::*;

use crate::compiled::CompiledForest;
use crate::dataset::Dataset;
use crate::forest::RandomForestRegressor;
use crate::matrix::FeatureMatrix;
use crate::metrics::mean_absolute_error;
use crate::{MlError, Result};

/// Importance scores for every feature of a model, in dataset column order.
#[derive(Debug, Clone)]
pub struct ImportanceReport {
    /// Feature names, aligned with `scores`.
    pub feature_names: Vec<String>,
    /// Mean increase in MAE caused by permuting each feature.
    pub scores: Vec<f64>,
    /// Standard deviation of the increase across permutation repeats.
    pub score_stds: Vec<f64>,
}

impl ImportanceReport {
    /// Returns `(name, score)` pairs sorted by decreasing score.
    pub fn ranked(&self) -> Vec<(String, f64)> {
        let mut pairs: Vec<(String, f64)> = self
            .feature_names
            .iter()
            .cloned()
            .zip(self.scores.iter().copied())
            .collect();
        pairs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        pairs
    }

    /// The top-`k` features by score.
    pub fn top_k(&self, k: usize) -> Vec<(String, f64)> {
        self.ranked().into_iter().take(k).collect()
    }

    /// Merges another report (e.g. from another CV fold or another model) by
    /// summing scores feature-wise, matching the paper's "sum of average
    /// importance scores" ranking. Features missing from either side keep
    /// their existing score.
    pub fn merge_sum(&mut self, other: &ImportanceReport) {
        for (name, score) in other.feature_names.iter().zip(&other.scores) {
            if let Some(pos) = self.feature_names.iter().position(|n| n == name) {
                self.scores[pos] += *score;
            } else {
                self.feature_names.push(name.clone());
                self.scores.push(*score);
                self.score_stds.push(0.0);
            }
        }
    }
}

/// Computes permutation importance of `model` on the evaluation `data`.
///
/// The baseline error is the MAE over all outputs (summed per row); each
/// feature column is permuted `repeats` times and the mean/std of the error
/// increase is reported. The paper uses 100 repeats per fold.
///
/// Columns are scored in parallel. Each `(column, repeat)` pair draws from
/// its own seed stream (`derive_stream_seed(seed, column * repeats +
/// repeat)`), so the report is bit-identical at any worker-thread count.
pub fn permutation_importance(
    model: &RandomForestRegressor,
    data: &Dataset,
    repeats: usize,
    seed: u64,
) -> Result<ImportanceReport> {
    if data.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    if repeats == 0 {
        return Err(MlError::ShapeMismatch {
            detail: "repeats must be at least 1".into(),
        });
    }
    let rows = data.rows().to_vec();
    // The error loop scores every row once per (column, repeat) pair, so it
    // runs on the compiled batch kernel over flat buffers; predictions (and
    // therefore scores) are bit-identical to the interpreted walk.
    let compiled = model.compile()?;
    let actual_flat: Vec<f64> = data
        .targets()
        .iter()
        .flat_map(|t| t.iter().copied())
        .collect();
    let baseline = model_error(&compiled, &rows, &actual_flat)?;

    let stats: Vec<(f64, f64)> = (0..data.num_features())
        .into_par_iter()
        .map(|col| {
            let mut deltas = Vec::with_capacity(repeats);
            let mut permuted = rows.clone();
            let mut column: Vec<f64> = Vec::with_capacity(rows.len());
            for repeat in 0..repeats {
                let stream = (col * repeats + repeat) as u64;
                let mut rng = StdRng::seed_from_u64(derive_stream_seed(seed, stream));
                // Restore the column, then shuffle it afresh.
                column.clear();
                column.extend(rows.iter().map(|r| r[col]));
                column.shuffle(&mut rng);
                for (row, v) in permuted.iter_mut().zip(&column) {
                    row[col] = *v;
                }
                let err = model_error(&compiled, &permuted, &actual_flat)?;
                deltas.push(err - baseline);
            }
            Ok(crate::metrics::mean_and_std(&deltas))
        })
        .collect::<Result<Vec<_>>>()?;

    let (scores, stds) = stats.into_iter().unzip();
    Ok(ImportanceReport {
        feature_names: data.feature_names().to_vec(),
        scores,
        score_stds: stds,
    })
}

/// MAE over all outputs for the compiled model on the given feature rows,
/// against the row-major flattened ground-truth targets.
fn model_error(compiled: &CompiledForest, rows: &[Vec<f64>], actual_flat: &[f64]) -> Result<f64> {
    let matrix = FeatureMatrix::from_rows(rows)?;
    let mut predicted = vec![0.0; rows.len() * compiled.num_outputs()];
    compiled.predict_batch_into(&matrix, &mut predicted)?;
    Ok(mean_absolute_error(&predicted, actual_flat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest::RandomForestConfig;

    /// A dataset where the target depends strongly on feature 0 and not at
    /// all on feature 1 (pure noise column).
    fn skewed_dataset(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["signal".into(), "noise".into()], vec!["y".into()]);
        for i in 0..n {
            let signal = (i % 13) as f64;
            let noise = ((i * 7919) % 11) as f64;
            d.push_row(format!("r{i}"), vec![signal, noise], vec![10.0 * signal])
                .unwrap();
        }
        d
    }

    #[test]
    fn signal_feature_outranks_noise_feature() {
        let data = skewed_dataset(150);
        let mut rf = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 20,
            seed: 11,
            ..Default::default()
        });
        rf.fit(&data).unwrap();
        let report = permutation_importance(&rf, &data, 10, 5).unwrap();
        let ranked = report.ranked();
        assert_eq!(ranked[0].0, "signal");
        assert!(
            ranked[0].1 > ranked[1].1 * 3.0,
            "signal should dominate: {ranked:?}"
        );
    }

    #[test]
    fn importance_is_deterministic_for_a_seed() {
        let data = skewed_dataset(80);
        let mut rf = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 10,
            seed: 2,
            ..Default::default()
        });
        rf.fit(&data).unwrap();
        let a = permutation_importance(&rf, &data, 5, 99).unwrap();
        let b = permutation_importance(&rf, &data, 5, 99).unwrap();
        assert_eq!(a.scores, b.scores);
    }

    #[test]
    fn top_k_truncates() {
        let report = ImportanceReport {
            feature_names: vec!["a".into(), "b".into(), "c".into()],
            scores: vec![0.1, 0.5, 0.3],
            score_stds: vec![0.0; 3],
        };
        let top = report.top_k(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, "b");
        assert_eq!(top[1].0, "c");
    }

    #[test]
    fn merge_sum_adds_scores_by_name() {
        let mut a = ImportanceReport {
            feature_names: vec!["x".into(), "y".into()],
            scores: vec![1.0, 2.0],
            score_stds: vec![0.0; 2],
        };
        let b = ImportanceReport {
            feature_names: vec!["y".into(), "z".into()],
            scores: vec![3.0, 4.0],
            score_stds: vec![0.0; 2],
        };
        a.merge_sum(&b);
        let ranked = a.ranked();
        assert_eq!(ranked[0], ("y".to_string(), 5.0));
        assert_eq!(ranked[1], ("z".to_string(), 4.0));
    }

    #[test]
    fn zero_repeats_is_rejected() {
        let data = skewed_dataset(20);
        let mut rf = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 5,
            seed: 1,
            ..Default::default()
        });
        rf.fit(&data).unwrap();
        assert!(permutation_importance(&rf, &data, 0, 1).is_err());
    }
}
