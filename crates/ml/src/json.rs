//! Minimal JSON reader/writer for the portable model format.
//!
//! The real project serializes models with `serde_json`; that crate is not
//! available offline, so this module provides the small subset the portable
//! format needs: objects, arrays, strings, f64 numbers, and booleans.
//! Numbers are written with Rust's shortest-roundtrip float formatting, so
//! `f64` values survive a write→parse cycle bit-exactly.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::{MlError, Result};

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; key order is preserved via `BTreeMap` (sorted).
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key`, or an error naming the missing field.
    pub fn field<'a>(&'a self, key: &str) -> Result<&'a Value> {
        match self {
            Value::Object(map) => map
                .get(key)
                .ok_or_else(|| MlError::Serialization(format!("missing field '{key}'"))),
            _ => Err(MlError::Serialization(format!(
                "expected object while reading field '{key}'"
            ))),
        }
    }

    /// This value as a float.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::Number(n) => Ok(*n),
            _ => Err(MlError::Serialization("expected number".into())),
        }
    }

    /// This value as a non-negative integer.
    pub fn as_usize(&self) -> Result<usize> {
        let n = self.as_f64()?;
        if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
            return Err(MlError::Serialization(format!("expected integer, got {n}")));
        }
        Ok(n as usize)
    }

    /// This value as a `u64`.
    pub fn as_u64(&self) -> Result<u64> {
        Ok(self.as_usize()? as u64)
    }

    /// This value as a bool.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(MlError::Serialization("expected bool".into())),
        }
    }

    /// This value as a string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err(MlError::Serialization("expected string".into())),
        }
    }

    /// This value as an array slice.
    pub fn as_array(&self) -> Result<&[Value]> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(MlError::Serialization("expected array".into())),
        }
    }

    /// Convenience: decodes an array of strings.
    pub fn as_string_vec(&self) -> Result<Vec<String>> {
        self.as_array()?
            .iter()
            .map(|v| v.as_str().map(str::to_string))
            .collect()
    }

    /// Convenience: decodes an array of floats.
    pub fn as_f64_vec(&self) -> Result<Vec<f64>> {
        self.as_array()?.iter().map(Value::as_f64).collect()
    }

    /// Builds an object value from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, Value)>) -> Value {
        Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of strings.
    pub fn strings(items: &[String]) -> Value {
        Value::Array(items.iter().map(|s| Value::String(s.clone())).collect())
    }

    /// Builds an array of numbers.
    pub fn numbers(items: &[f64]) -> Value {
        Value::Array(items.iter().map(|&n| Value::Number(n)).collect())
    }

    /// Serialises the value to a compact JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    // Shortest-roundtrip formatting; force a trailing `.0`
                    // marker-free integer form to stay valid JSON.
                    let _ = write!(out, "{n}");
                } else {
                    // JSON has no infinities; encode as null (the portable
                    // format never produces non-finite values).
                    out.push_str("null");
                }
            }
            Value::String(s) => write_json_string(s, out),
            Value::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Object(map) => {
                out.push('{');
                for (i, (key, value)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_json_string(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    pub fn parse(input: &str) -> Result<Value> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_whitespace();
        let value = parser.parse_value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(MlError::Serialization(format!(
                "trailing characters at byte {}",
                parser.pos
            )));
        }
        Ok(value)
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, msg: &str) -> MlError {
        MlError::Serialization(format!("{msg} at byte {}", self.pos))
    }

    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'{' => self.parse_object(),
            b'[' => self.parse_array(),
            b'"' => Ok(Value::String(self.parse_string()?)),
            b't' => self.parse_literal("true", Value::Bool(true)),
            b'f' => self.parse_literal("false", Value::Bool(false)),
            b'n' => self.parse_literal("null", Value::Null),
            _ => self.parse_number(),
        }
    }

    fn parse_literal(&mut self, literal: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected '{literal}'")))
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| self.error("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate must
                                // follow (`\uXXXX\uXXXX` pair) — produced
                                // by ASCII-escaping encoders for non-BMP
                                // characters.
                                if self.bytes.get(self.pos) != Some(&b'\\')
                                    || self.bytes.get(self.pos + 1) != Some(&b'u')
                                {
                                    return Err(self.error("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.error("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return Err(self.error("truncated UTF-8"));
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected number"));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.error("invalid number"))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_structure_and_floats() {
        let value = Value::object([
            ("name", Value::String("q\"94\"\n".into())),
            ("pi", Value::Number(std::f64::consts::PI)),
            ("tiny", Value::Number(5e-324)),
            ("flag", Value::Bool(true)),
            (
                "curve",
                Value::Array(vec![Value::Number(1.0), Value::Number(0.1 + 0.2)]),
            ),
        ]);
        let text = value.to_json();
        let parsed = Value::parse(&text).unwrap();
        assert_eq!(parsed, value);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("not json at all").is_err());
        assert!(Value::parse("{\"a\": }").is_err());
        assert!(Value::parse("[1, 2").is_err());
        assert!(Value::parse("{} trailing").is_err());
    }

    #[test]
    fn field_accessors_report_missing_keys() {
        let v = Value::parse("{\"a\": 3}").unwrap();
        assert_eq!(v.field("a").unwrap().as_usize().unwrap(), 3);
        assert!(v.field("b").is_err());
        assert!(v.field("a").unwrap().as_str().is_err());
    }

    #[test]
    fn surrogate_pairs_decode_to_non_bmp_chars() {
        // ASCII-escaping encoders (serde_json with escape_ascii, Python
        // json.dumps) write non-BMP characters as surrogate pairs.
        let v = Value::parse("\"q-\\ud83d\\ude00\"").unwrap();
        assert_eq!(v.as_str().unwrap(), "q-\u{1F600}");
        assert!(Value::parse("\"\\ud83d\"").is_err()); // unpaired high
        assert!(Value::parse("\"\\ude00\"").is_err()); // lone low
        assert!(Value::parse("\"\\ud83d\\u0041\"").is_err()); // bad pair
    }

    #[test]
    fn parses_nested_documents() {
        let text = "{\"trees\": [{\"nodes\": [1.5, -2e3]}, {\"nodes\": []}], \"n\": 2}";
        let v = Value::parse(text).unwrap();
        assert_eq!(v.field("n").unwrap().as_usize().unwrap(), 2);
        let trees = v.field("trees").unwrap().as_array().unwrap();
        assert_eq!(trees.len(), 2);
        assert_eq!(
            trees[0].field("nodes").unwrap().as_f64_vec().unwrap(),
            vec![1.5, -2000.0]
        );
    }
}
