//! Portable model format and in-process scoring runtime.
//!
//! The paper exports the scikit-learn parameter model to ONNX so that the
//! JVM-resident Spark optimizer can score it in-process with millisecond
//! latency (Section 4.3). This module plays the same role: a fitted
//! [`RandomForestRegressor`] is serialised into a compact, self-describing
//! [`PortableModel`] (JSON on disk, extension `.aex`), and a
//! [`ScoringRuntime`] loads, validates, and caches it for repeated scoring
//! inside the query optimizer.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use crate::compiled::CompiledForest;
use crate::forest::RandomForestRegressor;
use crate::json::Value;
use crate::matrix::FeatureMatrix;
use crate::{MlError, Result};

/// Current on-disk format version.
pub const PORTABLE_FORMAT_VERSION: u32 = 1;

/// A serialisable snapshot of a fitted parameter model plus the metadata the
/// optimizer rule needs to validate it (feature and target names).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortableModel {
    /// Format version, for forward-compatibility checks at load time.
    pub version: u32,
    /// Human-readable model name, e.g. `"ae_pl/sf100"`.
    pub name: String,
    /// Names of the features, in the column order the model expects.
    pub feature_names: Vec<String>,
    /// Names of the outputs (PPM parameters) the model predicts.
    pub target_names: Vec<String>,
    /// The underlying forest.
    forest: RandomForestRegressor,
    /// The forest compiled for inference. Derived (never serialized):
    /// rebuilt once at construction and at deserialization, so every loaded
    /// model scores through the flat kernel. Shared via `Arc` so decoded
    /// consumers (e.g. `ParameterModel`) reference the same arena instead
    /// of cloning hundreds of KB of node storage per model.
    compiled: Arc<CompiledForest>,
}

impl PortableModel {
    /// Wraps a fitted forest for export. Fails if the forest is not fitted.
    pub fn from_forest(name: impl Into<String>, forest: RandomForestRegressor) -> Result<Self> {
        if !forest.is_fitted() {
            return Err(MlError::NotFitted);
        }
        let compiled = Arc::new(forest.compile()?);
        Ok(Self {
            version: PORTABLE_FORMAT_VERSION,
            name: name.into(),
            feature_names: forest.feature_names().to_vec(),
            target_names: forest.target_names().to_vec(),
            forest,
            compiled,
        })
    }

    /// Access to the wrapped forest (the interpreted representation —
    /// training-time tooling such as permutation importance walks it).
    pub fn forest(&self) -> &RandomForestRegressor {
        &self.forest
    }

    /// The compiled inference representation of the forest.
    pub fn compiled(&self) -> &CompiledForest {
        &self.compiled
    }

    /// A shared handle to the compiled representation (consumers that
    /// outlive this model clone the `Arc`, not the arena).
    pub fn compiled_handle(&self) -> Arc<CompiledForest> {
        Arc::clone(&self.compiled)
    }

    /// Serialises the model to a JSON byte buffer.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let value = Value::object([
            ("version", Value::Number(self.version as f64)),
            ("name", Value::String(self.name.clone())),
            ("feature_names", Value::strings(&self.feature_names)),
            ("target_names", Value::strings(&self.target_names)),
            ("forest", self.forest.to_json_value()),
        ]);
        Ok(value.to_json().into_bytes())
    }

    /// Deserialises a model from bytes, checking the format version.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let text = std::str::from_utf8(bytes)
            .map_err(|e| MlError::Serialization(format!("invalid UTF-8: {e}")))?;
        let value = Value::parse(text)?;
        let version = value.field("version")?.as_usize()? as u32;
        if version != PORTABLE_FORMAT_VERSION {
            return Err(MlError::Serialization(format!(
                "unsupported portable-model version {version} (expected {PORTABLE_FORMAT_VERSION})"
            )));
        }
        let forest = RandomForestRegressor::from_json_value(value.field("forest")?)?;
        let compiled = Arc::new(forest.compile()?);
        Ok(Self {
            version,
            name: value.field("name")?.as_str()?.to_string(),
            feature_names: value.field("feature_names")?.as_string_vec()?,
            target_names: value.field("target_names")?.as_string_vec()?,
            forest,
            compiled,
        })
    }

    /// Writes the model to a file (conventionally `*.aex`).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let bytes = self.to_bytes()?;
        let mut file = std::fs::File::create(path.as_ref())
            .map_err(|e| MlError::Serialization(e.to_string()))?;
        file.write_all(&bytes)
            .map_err(|e| MlError::Serialization(e.to_string()))
    }

    /// Reads a model from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let mut file = std::fs::File::open(path.as_ref())
            .map_err(|e| MlError::Serialization(e.to_string()))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| MlError::Serialization(e.to_string()))?;
        Self::from_bytes(&bytes)
    }

    /// Serialized size in bytes (the paper reports ~1 MB for 103 queries).
    pub fn serialized_size(&self) -> Result<usize> {
        Ok(self.to_bytes()?.len())
    }

    /// Scores one feature row through the compiled forest (bit-identical to
    /// the interpreted [`RandomForestRegressor::predict`]).
    pub fn predict(&self, row: &[f64]) -> Result<Vec<f64>> {
        self.compiled.predict(row)
    }

    /// Scores every row of a feature matrix through the compiled
    /// batch-major kernel; bit-identical to calling
    /// [`predict`](Self::predict) per row.
    pub fn predict_matrix(&self, matrix: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        let k = self.compiled.num_outputs();
        let mut flat = Vec::new();
        self.compiled.predict_batch(matrix, &mut flat)?;
        Ok(flat.chunks(k.max(1)).map(<[f64]>::to_vec).collect())
    }

    /// Flat-output batched scoring: fills `out` with
    /// `matrix.len() × num_outputs` values, row-major, through the compiled
    /// batch-major kernel.
    pub fn predict_matrix_into(&self, matrix: &FeatureMatrix, out: &mut Vec<f64>) -> Result<()> {
        self.compiled.predict_batch(matrix, out)
    }
}

/// Timing breakdown collected by the scoring runtime, mirroring the
/// overheads of Section 5.6 (model load, session setup, per-query inference).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ScoringStats {
    /// Time spent deserialising the model.
    pub load_time: Duration,
    /// Time spent building the in-memory session (validation + warm-up).
    pub setup_time: Duration,
    /// Cumulative inference time across all `score` calls.
    pub total_inference_time: Duration,
    /// Number of `score` calls served.
    pub inferences: u64,
}

impl ScoringStats {
    /// Mean per-call inference latency.
    pub fn mean_inference_time(&self) -> Duration {
        if self.inferences == 0 {
            Duration::ZERO
        } else {
            self.total_inference_time / self.inferences as u32
        }
    }
}

/// An in-process scoring session over a loaded [`PortableModel`].
///
/// The optimizer keeps one `ScoringRuntime` per model and reuses it across
/// queries, so the load/setup costs are paid once (the "model load and cache"
/// step of the AutoExecutor rule).
#[derive(Debug, Clone)]
pub struct ScoringRuntime {
    model: PortableModel,
    stats: ScoringStats,
}

impl ScoringRuntime {
    /// Builds a runtime from serialized bytes, recording the load time.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let load_start = Instant::now();
        let model = PortableModel::from_bytes(bytes)?;
        let load_time = load_start.elapsed();

        let setup_start = Instant::now();
        // Session setup: validate widths by scoring a zero vector once.
        let warmup = vec![0.0; model.feature_names.len()];
        model.predict(&warmup)?;
        let setup_time = setup_start.elapsed();

        Ok(Self {
            model,
            stats: ScoringStats {
                load_time,
                setup_time,
                ..Default::default()
            },
        })
    }

    /// Builds a runtime directly from an in-memory model (no deserialisation).
    pub fn from_model(model: PortableModel) -> Result<Self> {
        let setup_start = Instant::now();
        let warmup = vec![0.0; model.feature_names.len()];
        model.predict(&warmup)?;
        let setup_time = setup_start.elapsed();
        Ok(Self {
            model,
            stats: ScoringStats {
                setup_time,
                ..Default::default()
            },
        })
    }

    /// Builds a runtime by loading a model file.
    pub fn from_file(path: impl AsRef<Path>) -> Result<Self> {
        let load_start = Instant::now();
        let model = PortableModel::load(path)?;
        let load_time = load_start.elapsed();
        let mut rt = Self::from_model(model)?;
        rt.stats.load_time = load_time;
        Ok(rt)
    }

    /// The model metadata (name, feature/target names).
    pub fn model(&self) -> &PortableModel {
        &self.model
    }

    /// Scores one feature row, accumulating inference-time statistics.
    pub fn score(&mut self, row: &[f64]) -> Result<Vec<f64>> {
        let start = Instant::now();
        let out = self.model.predict(row)?;
        self.stats.total_inference_time += start.elapsed();
        self.stats.inferences += 1;
        Ok(out)
    }

    /// Scores a whole feature matrix in one call, counting each row as one
    /// inference in the statistics.
    pub fn score_matrix(&mut self, matrix: &FeatureMatrix) -> Result<Vec<Vec<f64>>> {
        let start = Instant::now();
        let out = self.model.predict_matrix(matrix)?;
        self.stats.total_inference_time += start.elapsed();
        self.stats.inferences += matrix.len() as u64;
        Ok(out)
    }

    /// The accumulated timing statistics.
    pub fn stats(&self) -> ScoringStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::{RandomForestConfig, RandomForestRegressor};

    fn fitted_forest() -> RandomForestRegressor {
        let mut d = Dataset::new(vec!["x".into()], vec!["y".into(), "z".into()]);
        for i in 0..40 {
            let x = i as f64;
            d.push_row(format!("r{i}"), vec![x], vec![2.0 * x, 100.0 - x])
                .unwrap();
        }
        let mut rf = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 10,
            seed: 3,
            ..Default::default()
        });
        rf.fit(&d).unwrap();
        rf
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let rf = fitted_forest();
        let direct = rf.predict(&[17.0]).unwrap();
        let portable = PortableModel::from_forest("test", rf).unwrap();
        let bytes = portable.to_bytes().unwrap();
        let restored = PortableModel::from_bytes(&bytes).unwrap();
        assert_eq!(restored.predict(&[17.0]).unwrap(), direct);
        assert_eq!(restored.feature_names, vec!["x".to_string()]);
        assert_eq!(
            restored.target_names,
            vec!["y".to_string(), "z".to_string()]
        );
    }

    #[test]
    fn unfitted_forest_cannot_be_exported() {
        let rf = RandomForestRegressor::new(RandomForestConfig::default());
        assert!(matches!(
            PortableModel::from_forest("x", rf),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let rf = fitted_forest();
        let portable = PortableModel::from_forest("test", rf).unwrap();
        let text = String::from_utf8(portable.to_bytes().unwrap()).unwrap();
        assert!(text.contains("\"version\":1"));
        let tampered = text.replace("\"version\":1", "\"version\":999");
        assert!(PortableModel::from_bytes(tampered.as_bytes()).is_err());
    }

    #[test]
    fn garbage_bytes_are_rejected() {
        assert!(PortableModel::from_bytes(b"not json at all").is_err());
    }

    #[test]
    fn scoring_runtime_counts_inferences() {
        let rf = fitted_forest();
        let portable = PortableModel::from_forest("test", rf).unwrap();
        let bytes = portable.to_bytes().unwrap();
        let mut rt = ScoringRuntime::from_bytes(&bytes).unwrap();
        for i in 0..5 {
            rt.score(&[i as f64]).unwrap();
        }
        assert_eq!(rt.stats().inferences, 5);
        assert!(rt.stats().mean_inference_time() <= rt.stats().total_inference_time);
    }

    #[test]
    fn score_matrix_matches_per_row_scoring() {
        let rf = fitted_forest();
        let portable = PortableModel::from_forest("batch", rf).unwrap();
        let mut rt = ScoringRuntime::from_model(portable.clone()).unwrap();
        let rows = vec![vec![3.0], vec![7.0], vec![21.0]];
        let matrix = FeatureMatrix::from_rows(&rows).unwrap();
        let batched = rt.score_matrix(&matrix).unwrap();
        assert_eq!(rt.stats().inferences, 3);
        for (row, out) in rows.iter().zip(&batched) {
            assert_eq!(out, &portable.predict(row).unwrap());
        }
    }

    #[test]
    fn file_roundtrip_works() {
        let rf = fitted_forest();
        let portable = PortableModel::from_forest("file-test", rf).unwrap();
        let dir = std::env::temp_dir().join("ae_ml_portable_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.aex");
        portable.save(&path).unwrap();
        let rt = ScoringRuntime::from_file(&path).unwrap();
        assert_eq!(rt.model().name, "file-test");
        assert!(portable.serialized_size().unwrap() > 0);
        std::fs::remove_file(&path).ok();
    }
}
