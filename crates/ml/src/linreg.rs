//! Ordinary-least-squares linear regression.
//!
//! Two flavours are provided:
//!
//! * [`SimpleLinearFit`] — one-dimensional `y = intercept + slope·x`, used by
//!   the PPM fitting procedures of Section 3.4 (log-space fit for the power
//!   law, `1/n`-space fit for Amdahl's law).
//! * [`LinearRegression`] — multi-feature OLS via normal equations with
//!   Gaussian elimination and a small ridge fallback for near-singular
//!   systems. Used as a cheap baseline parameter model in tests and benches.

use serde::{Deserialize, Serialize};

use crate::{MlError, Result};

/// Result of a one-dimensional least-squares fit `y ≈ intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimpleLinearFit {
    /// Intercept term.
    pub intercept: f64,
    /// Slope term.
    pub slope: f64,
}

impl SimpleLinearFit {
    /// Fits `y ≈ intercept + slope·x` by least squares.
    ///
    /// Requires at least two points; with exactly two points the line passes
    /// through both. If all `x` are identical the slope is zero and the
    /// intercept is the mean of `y`.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(MlError::ShapeMismatch {
                detail: format!("xs has {} points, ys has {}", xs.len(), ys.len()),
            });
        }
        if xs.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if xs.len() == 1 {
            return Ok(Self {
                intercept: ys[0],
                slope: 0.0,
            });
        }
        let n = xs.len() as f64;
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            sxx += (x - mean_x) * (x - mean_x);
            sxy += (x - mean_x) * (y - mean_y);
        }
        let slope = if sxx.abs() < f64::EPSILON {
            0.0
        } else {
            sxy / sxx
        };
        let intercept = mean_y - slope * mean_x;
        if !slope.is_finite() || !intercept.is_finite() {
            return Err(MlError::Numerical("non-finite linear fit".into()));
        }
        Ok(Self { intercept, slope })
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Multi-feature ordinary least squares with an intercept column.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinearRegression {
    coefficients: Vec<f64>,
    intercept: f64,
    fitted: bool,
}

impl LinearRegression {
    /// Creates an unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fitted coefficients (one per feature), empty before fitting.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Fits the model on `rows` (each a feature vector) against scalar `ys`.
    pub fn fit(&mut self, rows: &[Vec<f64>], ys: &[f64]) -> Result<()> {
        if rows.is_empty() || ys.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if rows.len() != ys.len() {
            return Err(MlError::ShapeMismatch {
                detail: format!("{} rows but {} targets", rows.len(), ys.len()),
            });
        }
        let d = rows[0].len();
        if rows.iter().any(|r| r.len() != d) {
            return Err(MlError::ShapeMismatch {
                detail: "ragged feature rows".into(),
            });
        }
        // Build the (d+1)x(d+1) normal-equation system including an intercept.
        let dim = d + 1;
        let mut xtx = vec![vec![0.0f64; dim]; dim];
        let mut xty = vec![0.0f64; dim];
        for (row, &y) in rows.iter().zip(ys) {
            let mut aug = Vec::with_capacity(dim);
            aug.push(1.0);
            aug.extend_from_slice(row);
            for i in 0..dim {
                xty[i] += aug[i] * y;
                for j in 0..dim {
                    xtx[i][j] += aug[i] * aug[j];
                }
            }
        }
        // Small ridge term keeps near-singular systems solvable; it is far
        // below the scale of any real feature in this workspace.
        let solution = match solve_gaussian(xtx.clone(), xty.clone()) {
            Ok(sol) => sol,
            Err(_) => {
                for (i, row) in xtx.iter_mut().enumerate() {
                    row[i] += 1e-8;
                }
                solve_gaussian(xtx, xty)?
            }
        };
        self.intercept = solution[0];
        self.coefficients = solution[1..].to_vec();
        self.fitted = true;
        Ok(())
    }

    /// Predicts the target for one feature row.
    pub fn predict(&self, row: &[f64]) -> Result<f64> {
        if !self.fitted {
            return Err(MlError::NotFitted);
        }
        if row.len() != self.coefficients.len() {
            return Err(MlError::ShapeMismatch {
                detail: format!(
                    "row has {} features, model has {}",
                    row.len(),
                    self.coefficients.len()
                ),
            });
        }
        Ok(self.intercept
            + self
                .coefficients
                .iter()
                .zip(row)
                .map(|(c, x)| c * x)
                .sum::<f64>())
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
fn solve_gaussian(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Partial pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-12 {
            return Err(MlError::Numerical("singular normal-equation system".into()));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below, working from a copy of the pivot row so the
        // mutable row update does not alias it.
        let pivot_row = a[col].clone();
        for row in col + 1..n {
            let factor = a[row][col] / pivot_row[col];
            for (cell, pivot_cell) in a[row].iter_mut().zip(&pivot_row).skip(col) {
                *cell -= factor * pivot_cell;
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut sum = b[col];
        for (k, xk) in x.iter().enumerate().take(n).skip(col + 1) {
            sum -= a[col][k] * xk;
        }
        x[col] = sum / a[col][col];
        if !x[col].is_finite() {
            return Err(MlError::Numerical("non-finite OLS solution".into()));
        }
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let fit = SimpleLinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.intercept - 3.0).abs() < 1e-9);
        assert!((fit.slope - 2.0).abs() < 1e-9);
        assert!((fit.predict(10.0) - 23.0).abs() < 1e-9);
    }

    #[test]
    fn simple_fit_constant_x_degrades_gracefully() {
        let fit = SimpleLinearFit::fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(fit.slope, 0.0);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
    }

    #[test]
    fn simple_fit_single_point_is_flat() {
        let fit = SimpleLinearFit::fit(&[5.0], &[9.0]).unwrap();
        assert_eq!(fit.predict(100.0), 9.0);
    }

    #[test]
    fn simple_fit_rejects_mismatched_lengths() {
        assert!(SimpleLinearFit::fit(&[1.0], &[1.0, 2.0]).is_err());
        assert!(SimpleLinearFit::fit(&[], &[]).is_err());
    }

    #[test]
    fn multivariate_ols_recovers_plane() {
        let rows: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i) as f64 % 7.0])
            .collect();
        let ys: Vec<f64> = rows.iter().map(|r| 1.5 + 2.0 * r[0] - 0.5 * r[1]).collect();
        let mut lr = LinearRegression::new();
        lr.fit(&rows, &ys).unwrap();
        assert!((lr.intercept() - 1.5).abs() < 1e-6);
        assert!((lr.coefficients()[0] - 2.0).abs() < 1e-6);
        assert!((lr.coefficients()[1] + 0.5).abs() < 1e-6);
        let p = lr.predict(&[3.0, 2.0]).unwrap();
        assert!((p - (1.5 + 6.0 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn ols_handles_collinear_features_via_ridge_fallback() {
        // Second feature is an exact copy of the first — singular without ridge.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = rows.iter().map(|r| 4.0 * r[0]).collect();
        let mut lr = LinearRegression::new();
        lr.fit(&rows, &ys).unwrap();
        let p = lr.predict(&[5.0, 5.0]).unwrap();
        assert!((p - 20.0).abs() < 1e-3);
    }

    #[test]
    fn predict_before_fit_errors() {
        let lr = LinearRegression::new();
        assert!(matches!(lr.predict(&[1.0]), Err(MlError::NotFitted)));
    }

    #[test]
    fn predict_validates_width() {
        let mut lr = LinearRegression::new();
        lr.fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0]).unwrap();
        assert!(lr.predict(&[1.0, 2.0]).is_err());
    }
}
