//! Compiled forest inference: flat SoA tree arenas, a pooled leaf table,
//! and a batch-major scoring kernel.
//!
//! The interpreted [`RandomForestRegressor`] walks a `Vec<Node>` of enum
//! variants whose leaves each own a heap-allocated `Vec<f64>`. That is fine
//! for training-time use, but every scored serving request bottoms out in
//! that traversal, so the serving tier wants a representation built for the
//! walk alone:
//!
//! * **Struct-of-arrays node storage** — one arena across *all* trees:
//!   `feature: Vec<u32>`, `threshold: Vec<f64>`, `right: Vec<u32>`. Nodes
//!   are re-emitted in preorder DFS at compile time, so the **left child is
//!   implicit** (always the next arena slot) and needs no storage at all:
//!   traversal is a tight loop with no enum matching, 16 bytes of node
//!   state, and a sequential access pattern on the ≤-branch.
//! * **Pooled leaf table** — every leaf's output vector lives in one
//!   contiguous `leaf_values` buffer, indexed by `leaf_id × num_outputs`.
//!   A leaf node stores its `leaf_id` in the `right` array and is marked by
//!   `feature == LEAF`.
//! * **Batch-major kernel** — [`predict_batch_into`] iterates trees-outer /
//!   rows-inner over the flat [`FeatureMatrix`] row storage and accumulates
//!   into a caller-owned flat output slice (zero per-row allocation). Row
//!   blocks run in parallel on the rayon shim; each row's accumulator still
//!   receives tree contributions in tree order, so the result is
//!   **bit-identical** to the interpreter at any worker-thread count.
//!
//! Bit-identity with [`RandomForestRegressor::predict`] is a structural
//! property, not a coincidence: both paths zero an accumulator, add each
//! tree's leaf vector in tree order, and divide by the tree count — the
//! same f64 operations in the same order on the same values.
//!
//! [`predict_batch_into`]: CompiledForest::predict_batch_into

use rayon::prelude::*;

use crate::forest::RandomForestRegressor;
use crate::matrix::FeatureMatrix;
use crate::tree::CompiledNodes;
use crate::{MlError, Result};

/// Marker in the `feature` array identifying a leaf node.
const LEAF: u32 = u32::MAX;

/// A fitted forest compiled into flat struct-of-arrays storage for fast
/// inference. Build one with [`CompiledForest::compile`]; predictions are
/// bit-identical to the source [`RandomForestRegressor`].
#[derive(Debug, Clone)]
pub struct CompiledForest {
    num_features: usize,
    num_outputs: usize,
    num_trees: usize,
    /// Arena index of each tree's root node.
    roots: Vec<u32>,
    /// Split feature per node ([`LEAF`] marks a leaf).
    feature: Vec<u32>,
    /// Split threshold per node (unused for leaves).
    threshold: Vec<f64>,
    /// Right child arena index for splits; the leaf id for leaves. The
    /// left child needs no storage: preorder emission makes it `idx + 1`.
    right: Vec<u32>,
    /// Pooled leaf outputs, `num_outputs` values per leaf id.
    leaf_values: Vec<f64>,
}

impl CompiledForest {
    /// Compiles a fitted forest into the flat representation. Fails with
    /// [`MlError::NotFitted`] on an unfitted forest.
    pub fn compile(forest: &RandomForestRegressor) -> Result<Self> {
        let trees = forest.trees();
        if trees.is_empty() {
            return Err(MlError::NotFitted);
        }
        let num_features = trees[0].num_features();
        let num_outputs = trees[0].num_outputs();
        if num_outputs == 0 {
            return Err(MlError::ShapeMismatch {
                detail: "fitted forest has zero outputs".into(),
            });
        }
        let total_nodes: usize = trees.iter().map(|t| t.node_count()).sum();
        if total_nodes >= LEAF as usize {
            return Err(MlError::Numerical(format!(
                "forest has {total_nodes} nodes, exceeding the u32 arena limit"
            )));
        }

        let mut compiled = Self {
            num_features,
            num_outputs,
            num_trees: trees.len(),
            roots: Vec::with_capacity(trees.len()),
            feature: Vec::with_capacity(total_nodes),
            threshold: Vec::with_capacity(total_nodes),
            right: Vec::with_capacity(total_nodes),
            leaf_values: Vec::new(),
        };
        for tree in trees {
            compiled.roots.push(compiled.feature.len() as u32);
            tree.emit_compiled_nodes(&mut CompiledNodes {
                leaf_marker: LEAF,
                feature: &mut compiled.feature,
                threshold: &mut compiled.threshold,
                right: &mut compiled.right,
                leaf_values: &mut compiled.leaf_values,
                num_outputs,
            });
        }
        Ok(compiled)
    }

    /// Number of input features per row.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of outputs per prediction.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of compiled trees.
    pub fn num_trees(&self) -> usize {
        self.num_trees
    }

    /// Total nodes in the arena (equals the source forest's `total_nodes`).
    pub fn num_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Number of pooled leaves across all trees.
    pub fn num_leaves(&self) -> usize {
        self.leaf_values
            .len()
            .checked_div(self.num_outputs)
            .unwrap_or(0)
    }

    /// Walks one tree from `idx` and returns the leaf id the row lands in.
    #[inline]
    fn leaf_of(&self, mut idx: usize, row: &[f64]) -> usize {
        loop {
            let feature = self.feature[idx];
            if feature == LEAF {
                return self.right[idx] as usize;
            }
            idx = if row[feature as usize] <= self.threshold[idx] {
                idx + 1 // left child is the next arena slot by construction
            } else {
                self.right[idx] as usize
            };
        }
    }

    fn check_row_width(&self, width: usize) -> Result<()> {
        if width != self.num_features {
            return Err(MlError::ShapeMismatch {
                detail: format!(
                    "row has {width} features, compiled forest expects {}",
                    self.num_features
                ),
            });
        }
        Ok(())
    }

    /// Predicts one row into a caller-provided buffer of `num_outputs`
    /// slots. Bit-identical to [`RandomForestRegressor::predict_into`].
    pub fn predict_into(&self, row: &[f64], out: &mut [f64]) -> Result<()> {
        self.check_row_width(row.len())?;
        if out.len() != self.num_outputs {
            return Err(MlError::ShapeMismatch {
                detail: format!(
                    "output buffer has {} slots, compiled forest predicts {}",
                    out.len(),
                    self.num_outputs
                ),
            });
        }
        out.fill(0.0);
        let k = self.num_outputs;
        for &root in &self.roots {
            let leaf = self.leaf_of(root as usize, row);
            let src = &self.leaf_values[leaf * k..(leaf + 1) * k];
            for (acc, v) in out.iter_mut().zip(src) {
                *acc += *v;
            }
        }
        let nt = self.num_trees as f64;
        for acc in out.iter_mut() {
            *acc /= nt;
        }
        Ok(())
    }

    /// Predicts one row, allocating the output vector.
    pub fn predict(&self, row: &[f64]) -> Result<Vec<f64>> {
        let mut out = vec![0.0; self.num_outputs];
        self.predict_into(row, &mut out)?;
        Ok(out)
    }

    /// The batch-major scoring kernel: predicts every row of `matrix` into
    /// the caller-owned flat output slice `out` (row-major,
    /// `matrix.len() × num_outputs` values, zero per-row allocation).
    ///
    /// Iteration is trees-outer / rows-inner per row block, so the node
    /// arrays stream through cache once per tree instead of once per row.
    /// Blocks of rows run in parallel (rayon shim); each row's accumulator
    /// receives tree contributions in tree order regardless of blocking, so
    /// the output is bit-identical to [`predict_into`](Self::predict_into)
    /// per row at any worker-thread count.
    pub fn predict_batch_into(&self, matrix: &FeatureMatrix, out: &mut [f64]) -> Result<()> {
        let rows = matrix.len();
        let k = self.num_outputs;
        if out.len() != rows * k {
            return Err(MlError::ShapeMismatch {
                detail: format!(
                    "output buffer has {} slots, batch of {rows} rows needs {}",
                    out.len(),
                    rows * k
                ),
            });
        }
        if rows == 0 {
            return Ok(());
        }
        self.check_row_width(matrix.width())?;
        out.fill(0.0);

        let workers = rayon::current_num_threads().max(1);
        if workers <= 1 || rows < 2 * workers {
            self.accumulate_rows(matrix, 0, out);
        } else {
            // One contiguous row block per worker: a single row's walk is
            // sub-microsecond, so per-row dispatch would dominate the work.
            let block_rows = rows.div_ceil(workers);
            let blocks: Vec<(usize, &mut [f64])> = out
                .chunks_mut(block_rows * k)
                .enumerate()
                .map(|(block, chunk)| (block * block_rows, chunk))
                .collect();
            blocks.into_par_iter().for_each(|(first_row, chunk)| {
                self.accumulate_rows(matrix, first_row, chunk);
            });
        }

        let nt = self.num_trees as f64;
        for acc in out.iter_mut() {
            *acc /= nt;
        }
        Ok(())
    }

    /// Convenience wrapper over [`predict_batch_into`]: resizes and fills a
    /// reusable flat buffer (kept allocation across batches).
    ///
    /// [`predict_batch_into`]: Self::predict_batch_into
    pub fn predict_batch(&self, matrix: &FeatureMatrix, out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.resize(matrix.len() * self.num_outputs, 0.0);
        self.predict_batch_into(matrix, out)
    }

    /// Accumulates (un-normalized) tree sums for the rows
    /// `first_row .. first_row + out.len()/k` into `out`, trees-outer /
    /// rows-inner. `out` must be zeroed by the caller.
    fn accumulate_rows(&self, matrix: &FeatureMatrix, first_row: usize, out: &mut [f64]) {
        let k = self.num_outputs;
        let n_rows = out.len() / k;
        for &root in &self.roots {
            for r in 0..n_rows {
                let row = matrix.row(first_row + r);
                let leaf = self.leaf_of(root as usize, row);
                let src = &self.leaf_values[leaf * k..(leaf + 1) * k];
                let dst = &mut out[r * k..(r + 1) * k];
                for (acc, v) in dst.iter_mut().zip(src) {
                    *acc += *v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::forest::{RandomForestConfig, RandomForestRegressor};

    fn fitted(seed: u64, n: usize) -> RandomForestRegressor {
        let mut d = Dataset::new(
            vec!["x0".into(), "x1".into()],
            vec!["y0".into(), "y1".into()],
        );
        for i in 0..n {
            let x0 = (i % 13) as f64;
            let x1 = (i % 7) as f64;
            d.push_row(
                format!("q{i}"),
                vec![x0, x1],
                vec![2.0 * x0 + x1, 50.0 - x1],
            )
            .unwrap();
        }
        let mut rf = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 12,
            seed,
            ..Default::default()
        });
        rf.fit(&d).unwrap();
        rf
    }

    fn bits(values: &[f64]) -> Vec<u64> {
        values.iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn compiled_matches_interpreter_bit_for_bit() {
        let rf = fitted(5, 90);
        let compiled = CompiledForest::compile(&rf).unwrap();
        assert_eq!(compiled.num_trees(), rf.num_trees());
        assert_eq!(compiled.num_nodes(), rf.total_nodes());
        for i in 0..30 {
            let row = vec![(i % 13) as f64 + 0.25, (i % 7) as f64];
            assert_eq!(
                bits(&compiled.predict(&row).unwrap()),
                bits(&rf.predict(&row).unwrap()),
                "row {i}"
            );
        }
    }

    #[test]
    fn batch_kernel_matches_single_row_path() {
        let rf = fitted(9, 70);
        let compiled = CompiledForest::compile(&rf).unwrap();
        let rows: Vec<Vec<f64>> = (0..25)
            .map(|i| vec![i as f64 * 0.5, (i % 5) as f64])
            .collect();
        let matrix = FeatureMatrix::from_rows(&rows).unwrap();
        let mut flat = vec![0.0; rows.len() * compiled.num_outputs()];
        compiled.predict_batch_into(&matrix, &mut flat).unwrap();
        for (i, row) in rows.iter().enumerate() {
            let single = compiled.predict(row).unwrap();
            let k = compiled.num_outputs();
            assert_eq!(bits(&single), bits(&flat[i * k..(i + 1) * k]), "row {i}");
        }
    }

    #[test]
    fn unfitted_forest_does_not_compile() {
        let rf = RandomForestRegressor::new(RandomForestConfig::default());
        assert!(matches!(
            CompiledForest::compile(&rf),
            Err(MlError::NotFitted)
        ));
    }

    #[test]
    fn width_and_buffer_mismatches_are_rejected() {
        let rf = fitted(2, 40);
        let compiled = CompiledForest::compile(&rf).unwrap();
        assert!(compiled.predict(&[1.0]).is_err());
        let mut short = vec![0.0; 1];
        assert!(compiled.predict_into(&[1.0, 2.0], &mut short).is_err());
        let matrix = FeatureMatrix::from_rows(&[vec![1.0, 2.0]]).unwrap();
        let mut wrong = vec![0.0; 5];
        assert!(compiled.predict_batch_into(&matrix, &mut wrong).is_err());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let rf = fitted(3, 40);
        let compiled = CompiledForest::compile(&rf).unwrap();
        let matrix = FeatureMatrix::new(2);
        let mut out: Vec<f64> = Vec::new();
        compiled.predict_batch_into(&matrix, &mut out).unwrap();
        assert!(out.is_empty());
    }
}
