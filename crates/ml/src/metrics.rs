//! Error metrics used by the evaluation.
//!
//! The central metric is the paper's `E(n)` (Equation 6): the ratio of the
//! summed absolute time errors to the summed actual run times over all test
//! queries at a given executor count. The generic building blocks live here;
//! the per-`n` aggregation is assembled by `autoexecutor::evaluation`.

/// Mean absolute error between predictions and actuals.
///
/// Returns 0.0 for empty input.
pub fn mean_absolute_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch in MAE");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Mean squared error between predictions and actuals.
pub fn mean_squared_error(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch in MSE");
    if predicted.is_empty() {
        return 0.0;
    }
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a) * (p - a))
        .sum::<f64>()
        / predicted.len() as f64
}

/// The paper's `E(n)` metric (Equation 6): `Σ|t̂ - t| / Σ t`.
///
/// Both sums run over the provided query-level values; the caller groups by
/// executor count. Returns 0.0 when the denominator is zero.
pub fn total_absolute_error_ratio(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(
        predicted.len(),
        actual.len(),
        "length mismatch in total_absolute_error_ratio"
    );
    let num: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum();
    let den: f64 = actual.iter().sum();
    if den.abs() < f64::EPSILON {
        0.0
    } else {
        num / den
    }
}

/// Coefficient of determination R².
///
/// Returns 1.0 when the actuals are constant and perfectly predicted, and can
/// be negative for predictions worse than the mean.
pub fn r_squared(predicted: &[f64], actual: &[f64]) -> f64 {
    assert_eq!(predicted.len(), actual.len(), "length mismatch in R²");
    if actual.is_empty() {
        return 0.0;
    }
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let ss_tot: f64 = actual.iter().map(|a| (a - mean) * (a - mean)).sum();
    let ss_res: f64 = predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (a - p) * (a - p))
        .sum();
    if ss_tot.abs() < f64::EPSILON {
        if ss_res.abs() < f64::EPSILON {
            1.0
        } else {
            0.0
        }
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Mean and (population) standard deviation of a sample.
///
/// Used for the ±1 standard-deviation error bars across CV folds.
pub fn mean_and_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let n = values.len() as f64;
    let mean = values.iter().sum::<f64>() / n;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Coefficient of variation in percent (std / mean × 100), as used for the
/// production-workload variation analysis (Figure 2b).
pub fn coefficient_of_variation_pct(values: &[f64]) -> f64 {
    let (mean, std) = mean_and_std(values);
    if mean.abs() < f64::EPSILON {
        0.0
    } else {
        std / mean * 100.0
    }
}

/// Empirical CDF evaluation points: returns `(value, cumulative_percent)`
/// pairs sorted by value, one per input sample.
///
/// Used to reproduce the many cumulative-distribution figures (2, 3, 5c, 11).
pub fn empirical_cdf(values: &[f64]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v, (i + 1) as f64 / n * 100.0))
        .collect()
}

/// Discards outliers lying outside `±1.5 × IQR` and returns the mean of the
/// remainder — the paper's procedure for averaging repeated runs (Section 5.1).
pub fn iqr_filtered_mean(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    if samples.len() < 4 {
        return samples.iter().sum::<f64>() / samples.len() as f64;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q1 = percentile_sorted(&sorted, 25.0);
    let q3 = percentile_sorted(&sorted, 75.0);
    let iqr = q3 - q1;
    let lo = q1 - 1.5 * iqr;
    let hi = q3 + 1.5 * iqr;
    let kept: Vec<f64> = sorted.into_iter().filter(|&v| v >= lo && v <= hi).collect();
    if kept.is_empty() {
        samples.iter().sum::<f64>() / samples.len() as f64
    } else {
        kept.iter().sum::<f64>() / kept.len() as f64
    }
}

/// Linear-interpolated percentile of an already-sorted slice (0..=100).
pub fn percentile_sorted(sorted: &[f64], pct: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mae_and_mse_basic_values() {
        let p = [1.0, 2.0, 3.0];
        let a = [1.0, 4.0, 2.0];
        assert!((mean_absolute_error(&p, &a) - 1.0).abs() < 1e-12);
        assert!((mean_squared_error(&p, &a) - (0.0 + 4.0 + 1.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn e_metric_matches_hand_computation() {
        // Σ|err| = 10 + 5 = 15, Σactual = 100 + 50 = 150 → 0.1
        let predicted = [110.0, 45.0];
        let actual = [100.0, 50.0];
        assert!((total_absolute_error_ratio(&predicted, &actual) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn e_metric_perfect_prediction_is_zero() {
        let a = [3.0, 7.0, 11.0];
        assert_eq!(total_absolute_error_ratio(&a, &a), 0.0);
    }

    #[test]
    fn r_squared_perfect_and_mean_predictor() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((r_squared(&a, &a) - 1.0).abs() < 1e-12);
        let mean_pred = [2.5; 4];
        assert!(r_squared(&mean_pred, &a).abs() < 1e-12);
    }

    #[test]
    fn cov_of_constant_series_is_zero() {
        assert_eq!(coefficient_of_variation_pct(&[5.0, 5.0, 5.0]), 0.0);
    }

    #[test]
    fn cov_matches_manual_value() {
        // mean 10, std sqrt(8/3)... use simpler: [8, 12] mean 10, pop std 2 → 20%
        let cov = coefficient_of_variation_pct(&[8.0, 12.0]);
        assert!((cov - 20.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_cdf_is_monotone_and_ends_at_100() {
        let cdf = empirical_cdf(&[3.0, 1.0, 2.0, 2.0]);
        assert_eq!(cdf.len(), 4);
        assert!((cdf.last().unwrap().1 - 100.0).abs() < 1e-9);
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn iqr_filter_drops_extreme_outlier() {
        let with_outlier = [10.0, 10.5, 9.8, 10.2, 10.1, 100.0];
        let m = iqr_filtered_mean(&with_outlier);
        assert!(m < 11.0, "outlier should be excluded, got {m}");
    }

    #[test]
    fn iqr_filter_small_samples_plain_mean() {
        assert!((iqr_filtered_mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(iqr_filtered_mean(&[]), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0, 20.0, 30.0];
        assert!((percentile_sorted(&sorted, 50.0) - 15.0).abs() < 1e-9);
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 30.0);
    }

    #[test]
    fn mean_and_std_handles_empty() {
        assert_eq!(mean_and_std(&[]), (0.0, 0.0));
    }
}
