//! Feature-matrix container, train/test splits and cross-validation folds.
//!
//! The parameter model of the paper is trained on *one row per query*
//! (Section 3.4): the features are the compile-time plan characteristics of
//! Table 2 and the targets are the fitted PPM parameters. The evaluation
//! (Section 5) uses 10-repeated 5-fold cross-validation over query templates,
//! which [`RepeatedKFold`] reproduces.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::{MlError, Result};

/// A dense dataset: `rows × features` plus `rows × outputs` targets.
///
/// Rows carry an optional string identifier (the query name) so that
/// evaluation code can map fold membership back to queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    feature_names: Vec<String>,
    target_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    targets: Vec<Vec<f64>>,
    ids: Vec<String>,
}

impl Dataset {
    /// Creates an empty dataset with the given feature and target names.
    pub fn new(feature_names: Vec<String>, target_names: Vec<String>) -> Self {
        Self {
            feature_names,
            target_names,
            rows: Vec::new(),
            targets: Vec::new(),
            ids: Vec::new(),
        }
    }

    /// Adds one labelled row. Returns an error if the widths do not match the
    /// declared feature/target names.
    pub fn push_row(
        &mut self,
        id: impl Into<String>,
        features: Vec<f64>,
        targets: Vec<f64>,
    ) -> Result<()> {
        if features.len() != self.feature_names.len() {
            return Err(MlError::ShapeMismatch {
                detail: format!(
                    "row has {} features, dataset declares {}",
                    features.len(),
                    self.feature_names.len()
                ),
            });
        }
        if targets.len() != self.target_names.len() {
            return Err(MlError::ShapeMismatch {
                detail: format!(
                    "row has {} targets, dataset declares {}",
                    targets.len(),
                    self.target_names.len()
                ),
            });
        }
        self.ids.push(id.into());
        self.rows.push(features);
        self.targets.push(targets);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features per row.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of target outputs per row.
    pub fn num_targets(&self) -> usize {
        self.target_names.len()
    }

    /// Feature names in column order.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Target names in column order.
    pub fn target_names(&self) -> &[String] {
        &self.target_names
    }

    /// Row identifiers (typically query names).
    pub fn ids(&self) -> &[String] {
        &self.ids
    }

    /// Feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// Target rows.
    pub fn targets(&self) -> &[Vec<f64>] {
        &self.targets
    }

    /// Returns the feature row at `idx`.
    pub fn row(&self, idx: usize) -> &[f64] {
        &self.rows[idx]
    }

    /// Returns the target row at `idx`.
    pub fn target(&self, idx: usize) -> &[f64] {
        &self.targets[idx]
    }

    /// Builds a new dataset restricted to the given row indices (used to
    /// materialise cross-validation folds).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::new(self.feature_names.clone(), self.target_names.clone());
        for &i in indices {
            out.ids.push(self.ids[i].clone());
            out.rows.push(self.rows[i].clone());
            out.targets.push(self.targets[i].clone());
        }
        out
    }

    /// Builds a new dataset keeping only the feature columns whose names are
    /// listed in `keep` (order follows `keep`). Unknown names are ignored.
    /// Used by the Section 5.7 feature-set ablation (F0–F3).
    pub fn select_features(&self, keep: &[&str]) -> Dataset {
        let col_indices: Vec<usize> = keep
            .iter()
            .filter_map(|name| self.feature_names.iter().position(|f| f == name))
            .collect();
        let feature_names = col_indices
            .iter()
            .map(|&c| self.feature_names[c].clone())
            .collect();
        let mut out = Dataset::new(feature_names, self.target_names.clone());
        for i in 0..self.len() {
            out.ids.push(self.ids[i].clone());
            out.rows
                .push(col_indices.iter().map(|&c| self.rows[i][c]).collect());
            out.targets.push(self.targets[i].clone());
        }
        out
    }

    /// Single-column view of a target, useful for fitting per-parameter models.
    pub fn target_column(&self, col: usize) -> Vec<f64> {
        self.targets.iter().map(|t| t[col]).collect()
    }
}

/// One train/test split: indices into the parent dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldSplit {
    /// Row indices forming the training set.
    pub train: Vec<usize>,
    /// Row indices forming the held-out test set.
    pub test: Vec<usize>,
}

/// K-fold cross-validation over row indices, with shuffling.
#[derive(Debug, Clone)]
pub struct KFold {
    /// Number of folds (the paper uses 5, i.e. an 80:20 split).
    pub k: usize,
    /// Seed for the shuffle, so folds are reproducible.
    pub seed: u64,
}

impl KFold {
    /// Creates a k-fold splitter.
    pub fn new(k: usize, seed: u64) -> Self {
        Self { k, seed }
    }

    /// Produces the `k` train/test splits for a dataset of `n` rows.
    ///
    /// Every row appears in exactly one test fold; folds differ in size by at
    /// most one row.
    pub fn splits(&self, n: usize) -> Result<Vec<FoldSplit>> {
        if n == 0 {
            return Err(MlError::EmptyDataset);
        }
        if self.k < 2 || self.k > n {
            return Err(MlError::ShapeMismatch {
                detail: format!("k={} invalid for n={}", self.k, n),
            });
        }
        let mut indices: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(self.seed);
        indices.shuffle(&mut rng);

        let base = n / self.k;
        let extra = n % self.k;
        let mut splits = Vec::with_capacity(self.k);
        let mut start = 0usize;
        for fold in 0..self.k {
            let size = base + usize::from(fold < extra);
            let test: Vec<usize> = indices[start..start + size].to_vec();
            let train: Vec<usize> = indices[..start]
                .iter()
                .chain(indices[start + size..].iter())
                .copied()
                .collect();
            splits.push(FoldSplit { train, test });
            start += size;
        }
        Ok(splits)
    }
}

/// Repeated k-fold cross-validation: `repeats` independent shuffles of
/// [`KFold`], as in the paper's "10-repeated, 5-fold cross validations".
#[derive(Debug, Clone)]
pub struct RepeatedKFold {
    /// Number of folds per repeat.
    pub k: usize,
    /// Number of independent repeats.
    pub repeats: usize,
    /// Base seed; repeat `r` uses `seed + r`.
    pub seed: u64,
}

impl RepeatedKFold {
    /// Creates a repeated k-fold splitter.
    pub fn new(k: usize, repeats: usize, seed: u64) -> Self {
        Self { k, repeats, seed }
    }

    /// The paper's evaluation protocol: 5 folds, 10 repeats.
    pub fn paper_protocol(seed: u64) -> Self {
        Self::new(5, 10, seed)
    }

    /// Produces all `k × repeats` splits, grouped by repeat.
    pub fn splits(&self, n: usize) -> Result<Vec<Vec<FoldSplit>>> {
        (0..self.repeats)
            .map(|r| KFold::new(self.k, self.seed.wrapping_add(r as u64)).splits(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset(n: usize) -> Dataset {
        let mut d = Dataset::new(vec!["x".into(), "y".into()], vec!["t".into()]);
        for i in 0..n {
            d.push_row(
                format!("row{i}"),
                vec![i as f64, (i * 2) as f64],
                vec![i as f64 * 0.5],
            )
            .unwrap();
        }
        d
    }

    #[test]
    fn push_row_validates_shapes() {
        let mut d = Dataset::new(vec!["a".into()], vec!["t".into()]);
        assert!(d.push_row("ok", vec![1.0], vec![2.0]).is_ok());
        assert!(matches!(
            d.push_row("bad", vec![1.0, 2.0], vec![2.0]),
            Err(MlError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            d.push_row("bad", vec![1.0], vec![]),
            Err(MlError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn subset_preserves_rows_and_ids() {
        let d = toy_dataset(5);
        let s = d.subset(&[1, 3]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.ids(), &["row1".to_string(), "row3".to_string()]);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.target(1), &[1.5]);
    }

    #[test]
    fn select_features_projects_columns() {
        let d = toy_dataset(3);
        let s = d.select_features(&["y"]);
        assert_eq!(s.num_features(), 1);
        assert_eq!(s.row(2), &[4.0]);
        // Unknown names are ignored rather than erroring.
        let s2 = d.select_features(&["y", "nope", "x"]);
        assert_eq!(s2.feature_names(), &["y".to_string(), "x".to_string()]);
    }

    #[test]
    fn kfold_covers_all_rows_exactly_once() {
        let splits = KFold::new(5, 42).splits(103).unwrap();
        assert_eq!(splits.len(), 5);
        let mut seen = vec![0usize; 103];
        for s in &splits {
            assert_eq!(s.train.len() + s.test.len(), 103);
            for &i in &s.test {
                seen[i] += 1;
            }
            // train and test are disjoint
            for &i in &s.test {
                assert!(!s.train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn kfold_is_deterministic_for_a_seed() {
        let a = KFold::new(5, 7).splits(50).unwrap();
        let b = KFold::new(5, 7).splits(50).unwrap();
        assert_eq!(a, b);
        let c = KFold::new(5, 8).splits(50).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn kfold_rejects_degenerate_parameters() {
        assert!(KFold::new(1, 0).splits(10).is_err());
        assert!(KFold::new(11, 0).splits(10).is_err());
        assert!(KFold::new(5, 0).splits(0).is_err());
    }

    #[test]
    fn repeated_kfold_produces_distinct_repeats() {
        let r = RepeatedKFold::paper_protocol(1);
        let all = r.splits(103).unwrap();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].len(), 5);
        assert_ne!(all[0], all[1]);
    }

    #[test]
    fn target_column_extracts_single_output() {
        let d = toy_dataset(4);
        assert_eq!(d.target_column(0), vec![0.0, 0.5, 1.0, 1.5]);
    }
}
