//! CART regression trees with multi-output targets.
//!
//! The parameter model maps a feature vector to *several* PPM parameters at
//! once ({a, b, m} for the power law, {s, p} for Amdahl's law), so the tree
//! supports vector-valued leaves: splits minimise the summed per-output
//! variance, and a leaf predicts the per-output mean of its samples — the
//! same behaviour as scikit-learn's multi-output `DecisionTreeRegressor`.

use serde::{Deserialize, Serialize};

use crate::json::Value;
use crate::{MlError, Result};

/// Hyper-parameters for a regression tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecisionTreeConfig {
    /// Maximum tree depth (root = depth 0). `None` grows until pure/minimum.
    pub max_depth: Option<usize>,
    /// Minimum number of samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum number of samples in each child of a split.
    pub min_samples_leaf: usize,
    /// Number of candidate features examined per split; `None` = all.
    pub max_features: Option<usize>,
}

impl Default for DecisionTreeConfig {
    fn default() -> Self {
        Self {
            max_depth: None,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: None,
        }
    }
}

/// A node in the fitted tree. Stored in a flat arena indexed by `usize`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum Node {
    /// Internal split node: rows with `feature <= threshold` go left.
    Split {
        /// Index of the feature column used by this split.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Arena index of the left child.
        left: usize,
        /// Arena index of the right child.
        right: usize,
    },
    /// Leaf node with the mean target vector of its samples.
    Leaf {
        /// Per-output mean prediction.
        value: Vec<f64>,
        /// Number of training samples that reached the leaf.
        samples: usize,
    },
}

/// A fitted (or to-be-fitted) CART regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTreeRegressor {
    config: DecisionTreeConfig,
    nodes: Vec<Node>,
    num_features: usize,
    num_outputs: usize,
}

impl DecisionTreeRegressor {
    /// Creates an unfitted tree with the given configuration.
    pub fn new(config: DecisionTreeConfig) -> Self {
        Self {
            config,
            nodes: Vec::new(),
            num_features: 0,
            num_outputs: 0,
        }
    }

    /// Whether the tree has been fitted.
    pub fn is_fitted(&self) -> bool {
        !self.nodes.is_empty()
    }

    /// Number of nodes in the fitted tree (0 before fitting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> usize {
        if self.nodes.is_empty() {
            return 0;
        }
        self.node_depth(0)
    }

    /// Depth of the subtree rooted at `idx`, with an explicit stack: an
    /// unpruned tree's depth can reach the sample count (a chain tree), and
    /// diagnostics call this on whatever the forest grew — recursion here
    /// would put worst-case tree depth on the call stack.
    fn node_depth(&self, idx: usize) -> usize {
        let mut max_depth = 0;
        let mut stack = vec![(idx, 0usize)];
        while let Some((node, depth)) = stack.pop() {
            match &self.nodes[node] {
                Node::Leaf { .. } => max_depth = max_depth.max(depth),
                Node::Split { left, right, .. } => {
                    stack.push((*left, depth + 1));
                    stack.push((*right, depth + 1));
                }
            }
        }
        max_depth
    }

    /// Fits the tree on `rows`/`targets`, optionally restricted to the sample
    /// indices in `sample_indices` (used for bootstrap bagging) and drawing
    /// candidate split features with `feature_picker`.
    ///
    /// `feature_picker` is called once per split attempt with the number of
    /// features and must return the candidate column indices; the forest uses
    /// it for per-split feature subsampling. Passing a picker that returns all
    /// columns reproduces a plain CART tree.
    pub fn fit_with(
        &mut self,
        rows: &[Vec<f64>],
        targets: &[Vec<f64>],
        sample_indices: &[usize],
        feature_picker: &mut dyn FnMut(usize) -> Vec<usize>,
    ) -> Result<()> {
        if rows.is_empty() || targets.is_empty() || sample_indices.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if rows.len() != targets.len() {
            return Err(MlError::ShapeMismatch {
                detail: format!("{} rows vs {} targets", rows.len(), targets.len()),
            });
        }
        self.num_features = rows[0].len();
        self.num_outputs = targets[0].len();
        if self.num_outputs == 0 {
            return Err(MlError::ShapeMismatch {
                detail: "targets have zero outputs".into(),
            });
        }
        self.nodes.clear();
        let indices: Vec<usize> = sample_indices.to_vec();
        self.build_node(rows, targets, indices, 0, feature_picker);
        Ok(())
    }

    /// Fits the tree on the full dataset with no feature subsampling.
    pub fn fit(&mut self, rows: &[Vec<f64>], targets: &[Vec<f64>]) -> Result<()> {
        let all: Vec<usize> = (0..rows.len()).collect();
        let mut picker = |d: usize| (0..d).collect::<Vec<_>>();
        self.fit_with(rows, targets, &all, &mut picker)
    }

    fn build_node(
        &mut self,
        rows: &[Vec<f64>],
        targets: &[Vec<f64>],
        indices: Vec<usize>,
        depth: usize,
        feature_picker: &mut dyn FnMut(usize) -> Vec<usize>,
    ) -> usize {
        let leaf_value = mean_target(targets, &indices, self.num_outputs);
        let node_idx = self.nodes.len();
        // Push a placeholder leaf; it is replaced by a split if one is found.
        self.nodes.push(Node::Leaf {
            value: leaf_value.clone(),
            samples: indices.len(),
        });

        let depth_ok = self.config.max_depth.is_none_or(|d| depth < d);
        if !depth_ok || indices.len() < self.config.min_samples_split {
            return node_idx;
        }
        let parent_impurity = sse(targets, &indices, &leaf_value);
        if parent_impurity <= 1e-12 {
            return node_idx;
        }

        let candidates = feature_picker(self.num_features);
        let Some(best) = self.find_best_split(rows, targets, &indices, &candidates) else {
            return node_idx;
        };
        if best.gain <= 1e-12 {
            return node_idx;
        }

        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
            .iter()
            .partition(|&&i| rows[i][best.feature] <= best.threshold);
        if left_idx.len() < self.config.min_samples_leaf
            || right_idx.len() < self.config.min_samples_leaf
        {
            return node_idx;
        }

        let left = self.build_node(rows, targets, left_idx, depth + 1, feature_picker);
        let right = self.build_node(rows, targets, right_idx, depth + 1, feature_picker);
        self.nodes[node_idx] = Node::Split {
            feature: best.feature,
            threshold: best.threshold,
            left,
            right,
        };
        node_idx
    }

    fn find_best_split(
        &self,
        rows: &[Vec<f64>],
        targets: &[Vec<f64>],
        indices: &[usize],
        candidate_features: &[usize],
    ) -> Option<BestSplit> {
        let parent_value = mean_target(targets, indices, self.num_outputs);
        let parent_sse = sse(targets, indices, &parent_value);
        let mut best: Option<BestSplit> = None;

        // Buffers reused across candidate features (the split search is the
        // hot loop of forest training; per-feature allocations dominate the
        // profile otherwise).
        let n = indices.len();
        let k = self.num_outputs;
        let mut keyed: Vec<(f64, usize)> = Vec::with_capacity(n);
        let mut prefix_sum = vec![0.0f64; k];
        let mut prefix_sumsq = vec![0.0f64; k];
        let mut total_sum = vec![0.0f64; k];
        let mut total_sumsq = vec![0.0f64; k];

        for &feature in candidate_features {
            // Sort sample indices by this feature's value and scan split
            // points. Keys are materialised once so the (stable) sort does
            // not chase two levels of indirection per comparison; stability
            // preserves the historical tie order of `indices`.
            keyed.clear();
            keyed.extend(indices.iter().map(|&i| (rows[i][feature], i)));
            keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let order = &keyed;
            // Prefix sums over outputs allow O(1) SSE-decomposition per split.
            prefix_sum.fill(0.0);
            prefix_sumsq.fill(0.0);
            total_sum.fill(0.0);
            total_sumsq.fill(0.0);
            for &(_, i) in order {
                for o in 0..k {
                    total_sum[o] += targets[i][o];
                    total_sumsq[o] += targets[i][o] * targets[i][o];
                }
            }
            for (pos, &(this_v, i)) in order.iter().enumerate().take(n - 1) {
                for o in 0..k {
                    prefix_sum[o] += targets[i][o];
                    prefix_sumsq[o] += targets[i][o] * targets[i][o];
                }
                let left_n = (pos + 1) as f64;
                let right_n = (n - pos - 1) as f64;
                let next_v = order[pos + 1].0;
                if (next_v - this_v).abs() < 1e-15 {
                    continue; // cannot split between equal values
                }
                let mut child_sse = 0.0;
                for o in 0..k {
                    let ls = prefix_sum[o];
                    let lss = prefix_sumsq[o];
                    let rs = total_sum[o] - ls;
                    let rss = total_sumsq[o] - lss;
                    child_sse += lss - ls * ls / left_n;
                    child_sse += rss - rs * rs / right_n;
                }
                let gain = parent_sse - child_sse;
                let threshold = 0.5 * (this_v + next_v);
                if best.as_ref().is_none_or(|b| gain > b.gain) {
                    best = Some(BestSplit {
                        feature,
                        threshold,
                        gain,
                    });
                }
            }
        }
        best
    }

    /// Predicts the target vector for one feature row.
    pub fn predict(&self, row: &[f64]) -> Result<Vec<f64>> {
        self.predict_ref(row).map(<[f64]>::to_vec)
    }

    /// Borrow-returning prediction: walks to the leaf and hands back its
    /// value slice without allocating. The forest's scoring path averages
    /// over many trees per call, so avoiding one `Vec` clone per tree
    /// matters for in-optimizer latency.
    pub fn predict_ref(&self, row: &[f64]) -> Result<&[f64]> {
        if self.nodes.is_empty() {
            return Err(MlError::NotFitted);
        }
        if row.len() != self.num_features {
            return Err(MlError::ShapeMismatch {
                detail: format!(
                    "row has {} features, tree expects {}",
                    row.len(),
                    self.num_features
                ),
            });
        }
        let mut idx = 0usize;
        loop {
            match &self.nodes[idx] {
                Node::Leaf { value, .. } => return Ok(value),
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    idx = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Appends this tree's nodes to the compiled forest's struct-of-arrays
    /// arena (see [`crate::compiled::CompiledForest`]) in preorder
    /// (left-subtree-first) DFS, re-emitted with an explicit stack so the
    /// invariant *left child = parent + 1* holds by construction — the
    /// compiled walk stores no left-child index at all. Split nodes record
    /// their right child in `dst.right`; each leaf's value vector is pooled
    /// into `dst.leaf_values` and the leaf node stores its leaf id in the
    /// `right` slot, marked by `dst.leaf_marker` in `feature`.
    pub(crate) fn emit_compiled_nodes(&self, dst: &mut CompiledNodes<'_>) {
        // (tree node to emit, arena position whose `right` slot should be
        // patched to this node's arena position — the parent split, for
        // right children).
        let mut stack: Vec<(usize, Option<usize>)> = vec![(0, None)];
        while let Some((node_idx, patch)) = stack.pop() {
            let pos = dst.feature.len();
            if let Some(parent_pos) = patch {
                dst.right[parent_pos] = pos as u32;
            }
            match &self.nodes[node_idx] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    dst.feature.push(*feature as u32);
                    dst.threshold.push(*threshold);
                    dst.right.push(0); // patched when the right child is emitted
                    stack.push((*right, Some(pos)));
                    stack.push((*left, None)); // emitted next: left = pos + 1
                }
                Node::Leaf { value, .. } => {
                    let leaf_id = (dst.leaf_values.len() / dst.num_outputs.max(1)) as u32;
                    dst.leaf_values.extend_from_slice(value);
                    dst.feature.push(dst.leaf_marker);
                    dst.threshold.push(0.0);
                    dst.right.push(leaf_id);
                }
            }
        }
    }

    /// Number of output dimensions the tree was fitted on.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of input features the tree was fitted on.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Encodes the fitted tree for the portable-model JSON format.
    pub(crate) fn to_json_value(&self) -> Value {
        let nodes = self
            .nodes
            .iter()
            .map(|node| match node {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => Value::object([
                    ("feature", Value::Number(*feature as f64)),
                    ("threshold", Value::Number(*threshold)),
                    ("left", Value::Number(*left as f64)),
                    ("right", Value::Number(*right as f64)),
                ]),
                Node::Leaf { value, samples } => Value::object([
                    ("value", Value::numbers(value)),
                    ("samples", Value::Number(*samples as f64)),
                ]),
            })
            .collect();
        Value::object([
            ("config", self.config.to_json_value()),
            ("nodes", Value::Array(nodes)),
            ("num_features", Value::Number(self.num_features as f64)),
            ("num_outputs", Value::Number(self.num_outputs as f64)),
        ])
    }

    /// Decodes a tree from the portable-model JSON format.
    pub(crate) fn from_json_value(value: &Value) -> Result<Self> {
        let config = DecisionTreeConfig::from_json_value(value.field("config")?)?;
        let nodes = value
            .field("nodes")?
            .as_array()?
            .iter()
            .map(|node| {
                if let Ok(value_field) = node.field("value") {
                    Ok(Node::Leaf {
                        value: value_field.as_f64_vec()?,
                        samples: node.field("samples")?.as_usize()?,
                    })
                } else {
                    Ok(Node::Split {
                        feature: node.field("feature")?.as_usize()?,
                        threshold: node.field("threshold")?.as_f64()?,
                        left: node.field("left")?.as_usize()?,
                        right: node.field("right")?.as_usize()?,
                    })
                }
            })
            .collect::<Result<Vec<Node>>>()?;
        Ok(Self {
            config,
            nodes,
            num_features: value.field("num_features")?.as_usize()?,
            num_outputs: value.field("num_outputs")?.as_usize()?,
        })
    }
}

impl DecisionTreeConfig {
    /// Encodes the configuration for the portable-model JSON format.
    pub(crate) fn to_json_value(self) -> Value {
        Value::object([
            (
                "max_depth",
                self.max_depth
                    .map_or(Value::Null, |d| Value::Number(d as f64)),
            ),
            (
                "min_samples_split",
                Value::Number(self.min_samples_split as f64),
            ),
            (
                "min_samples_leaf",
                Value::Number(self.min_samples_leaf as f64),
            ),
            (
                "max_features",
                self.max_features
                    .map_or(Value::Null, |d| Value::Number(d as f64)),
            ),
        ])
    }

    /// Decodes the configuration from the portable-model JSON format.
    pub(crate) fn from_json_value(value: &Value) -> Result<Self> {
        let optional = |field: &Value| -> Result<Option<usize>> {
            match field {
                Value::Null => Ok(None),
                other => Ok(Some(other.as_usize()?)),
            }
        };
        Ok(DecisionTreeConfig {
            max_depth: optional(value.field("max_depth")?)?,
            min_samples_split: value.field("min_samples_split")?.as_usize()?,
            min_samples_leaf: value.field("min_samples_leaf")?.as_usize()?,
            max_features: optional(value.field("max_features")?)?,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

/// Destination buffers for [`DecisionTreeRegressor::emit_compiled_nodes`]:
/// the compiled forest's shared struct-of-arrays arena plus the pooled leaf
/// table. The left child is implicit (always the next arena slot), so the
/// arena carries three arrays, not four.
pub(crate) struct CompiledNodes<'a> {
    /// The `feature` value marking a leaf node.
    pub leaf_marker: u32,
    /// Split feature per node (or `leaf_marker`).
    pub feature: &'a mut Vec<u32>,
    /// Split threshold per node (0.0 for leaves).
    pub threshold: &'a mut Vec<f64>,
    /// Right child arena index for splits; leaf id for leaves.
    pub right: &'a mut Vec<u32>,
    /// Pooled leaf outputs, `num_outputs` values per leaf id.
    pub leaf_values: &'a mut Vec<f64>,
    /// Output width of the forest being compiled.
    pub num_outputs: usize,
}

fn mean_target(targets: &[Vec<f64>], indices: &[usize], k: usize) -> Vec<f64> {
    let mut mean = vec![0.0; k];
    for &i in indices {
        for o in 0..k {
            mean[o] += targets[i][o];
        }
    }
    let n = indices.len().max(1) as f64;
    for m in &mut mean {
        *m /= n;
    }
    mean
}

fn sse(targets: &[Vec<f64>], indices: &[usize], mean: &[f64]) -> f64 {
    let mut total = 0.0;
    for &i in indices {
        for (o, &m) in mean.iter().enumerate() {
            let d = targets[i][o] - m;
            total += d * d;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data() -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        // y = 10 for x < 5, y = 20 for x >= 5 — a single split should nail it.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let targets: Vec<Vec<f64>> = (0..10)
            .map(|i| vec![if i < 5 { 10.0 } else { 20.0 }])
            .collect();
        (rows, targets)
    }

    #[test]
    fn learns_a_step_function_exactly() {
        let (rows, targets) = step_data();
        let mut tree = DecisionTreeRegressor::new(DecisionTreeConfig::default());
        tree.fit(&rows, &targets).unwrap();
        assert!((tree.predict(&[2.0]).unwrap()[0] - 10.0).abs() < 1e-9);
        assert!((tree.predict(&[7.0]).unwrap()[0] - 20.0).abs() < 1e-9);
    }

    #[test]
    fn respects_max_depth_zero() {
        let (rows, targets) = step_data();
        let mut tree = DecisionTreeRegressor::new(DecisionTreeConfig {
            max_depth: Some(0),
            ..Default::default()
        });
        tree.fit(&rows, &targets).unwrap();
        assert_eq!(tree.node_count(), 1);
        // Single leaf predicts the global mean.
        assert!((tree.predict(&[0.0]).unwrap()[0] - 15.0).abs() < 1e-9);
    }

    #[test]
    fn multi_output_leaves_predict_vectors() {
        let rows: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let targets: Vec<Vec<f64>> = (0..8)
            .map(|i| {
                if i < 4 {
                    vec![1.0, 100.0]
                } else {
                    vec![2.0, 200.0]
                }
            })
            .collect();
        let mut tree = DecisionTreeRegressor::new(DecisionTreeConfig::default());
        tree.fit(&rows, &targets).unwrap();
        let p = tree.predict(&[6.0]).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p[0] - 2.0).abs() < 1e-9);
        assert!((p[1] - 200.0).abs() < 1e-9);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let (rows, targets) = step_data();
        let mut tree = DecisionTreeRegressor::new(DecisionTreeConfig {
            min_samples_leaf: 6, // cannot split 10 rows into two ≥6-row leaves
            ..Default::default()
        });
        tree.fit(&rows, &targets).unwrap();
        assert_eq!(tree.node_count(), 1);
    }

    #[test]
    fn constant_targets_yield_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, (i * 3) as f64]).collect();
        let targets = vec![vec![7.0]; 6];
        let mut tree = DecisionTreeRegressor::new(DecisionTreeConfig::default());
        tree.fit(&rows, &targets).unwrap();
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict(&[3.0, 9.0]).unwrap()[0] - 7.0).abs() < 1e-12);
    }

    #[test]
    fn predict_rejects_wrong_width_and_unfitted() {
        let (rows, targets) = step_data();
        let mut tree = DecisionTreeRegressor::new(DecisionTreeConfig::default());
        assert!(matches!(tree.predict(&[1.0]), Err(MlError::NotFitted)));
        tree.fit(&rows, &targets).unwrap();
        assert!(tree.predict(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn deeper_trees_fit_piecewise_structure() {
        // Piecewise-constant target with 4 segments needs depth >= 2.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let targets: Vec<Vec<f64>> = (0..40).map(|i| vec![(i / 10) as f64]).collect();
        let mut tree = DecisionTreeRegressor::new(DecisionTreeConfig::default());
        tree.fit(&rows, &targets).unwrap();
        assert!(tree.depth() >= 2);
        for seg in 0..4 {
            let x = (seg * 10 + 5) as f64;
            assert!((tree.predict(&[x]).unwrap()[0] - seg as f64).abs() < 1e-9);
        }
    }
}
