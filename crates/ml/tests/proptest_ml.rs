//! Property-based tests for the ML substrate.

use ae_ml::dataset::{Dataset, KFold};
use ae_ml::forest::{RandomForestConfig, RandomForestRegressor};
use ae_ml::linreg::SimpleLinearFit;
use ae_ml::metrics::{empirical_cdf, iqr_filtered_mean, total_absolute_error_ratio};
use ae_ml::tree::{DecisionTreeConfig, DecisionTreeRegressor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every k-fold split partitions the rows: folds are disjoint and cover everything.
    #[test]
    fn kfold_partitions_rows(n in 5usize..200, k in 2usize..5, seed in 0u64..1000) {
        prop_assume!(k <= n);
        let splits = KFold::new(k, seed).splits(n).unwrap();
        let mut seen = vec![false; n];
        for s in &splits {
            for &i in &s.test {
                prop_assert!(!seen[i], "row {} appears in two test folds", i);
                seen[i] = true;
            }
            prop_assert_eq!(s.train.len() + s.test.len(), n);
        }
        prop_assert!(seen.into_iter().all(|b| b));
    }

    /// A linear fit on exactly-linear data recovers the line parameters.
    #[test]
    fn linear_fit_recovers_line(intercept in -100.0f64..100.0, slope in -10.0f64..10.0) {
        let xs: Vec<f64> = (1..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| intercept + slope * x).collect();
        let fit = SimpleLinearFit::fit(&xs, &ys).unwrap();
        prop_assert!((fit.intercept - intercept).abs() < 1e-6);
        prop_assert!((fit.slope - slope).abs() < 1e-6);
    }

    /// Tree predictions on constant targets always return that constant.
    #[test]
    fn tree_constant_target_is_exact(value in -1e6f64..1e6, n in 4usize..50) {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let targets = vec![vec![value]; n];
        let mut tree = DecisionTreeRegressor::new(DecisionTreeConfig::default());
        tree.fit(&rows, &targets).unwrap();
        let p = tree.predict(&[0.0, 3.0]).unwrap();
        prop_assert!((p[0] - value).abs() < 1e-9 * value.abs().max(1.0));
    }

    /// Forest predictions always stay within the range of observed targets
    /// (trees and their averages cannot extrapolate beyond training values).
    #[test]
    fn forest_predictions_bounded_by_training_range(seed in 0u64..50) {
        let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![(i % 11) as f64]).collect();
        let targets: Vec<Vec<f64>> = rows.iter().map(|r| vec![r[0] * 5.0 + 1.0]).collect();
        let lo = 1.0;
        let hi = 10.0 * 5.0 + 1.0;
        let mut data = Dataset::new(vec!["x".into()], vec!["y".into()]);
        for (i, (r, t)) in rows.iter().zip(&targets).enumerate() {
            data.push_row(format!("r{i}"), r.clone(), t.clone()).unwrap();
        }
        let mut rf = RandomForestRegressor::new(RandomForestConfig {
            n_estimators: 8,
            seed,
            ..Default::default()
        });
        rf.fit(&data).unwrap();
        for x in [-5.0, 0.0, 3.0, 10.0, 100.0] {
            let p = rf.predict(&[x]).unwrap()[0];
            prop_assert!(p >= lo - 1e-9 && p <= hi + 1e-9, "prediction {} out of [{}, {}]", p, lo, hi);
        }
    }

    /// E(n)-style error ratio is zero iff predictions equal actuals, and
    /// non-negative otherwise.
    #[test]
    fn error_ratio_nonnegative(values in prop::collection::vec(1.0f64..1e4, 1..30)) {
        prop_assert_eq!(total_absolute_error_ratio(&values, &values), 0.0);
        let shifted: Vec<f64> = values.iter().map(|v| v + 1.0).collect();
        prop_assert!(total_absolute_error_ratio(&shifted, &values) > 0.0);
    }

    /// The IQR-filtered mean always lies within the min..max of the samples.
    #[test]
    fn iqr_mean_within_range(samples in prop::collection::vec(0.0f64..1e5, 1..40)) {
        let m = iqr_filtered_mean(&samples);
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= lo - 1e-9 && m <= hi + 1e-9);
    }

    /// Empirical CDFs are monotone in both coordinates and end at 100%.
    #[test]
    fn cdf_monotone(values in prop::collection::vec(-1e3f64..1e3, 1..50)) {
        let cdf = empirical_cdf(&values);
        prop_assert!((cdf.last().unwrap().1 - 100.0).abs() < 1e-9);
        for w in cdf.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
    }
}
