//! Compiled-vs-interpreted equivalence on adversarial tree shapes.
//!
//! [`CompiledForest`] must be **bit-identical** to the interpreted
//! [`RandomForestRegressor`] — not approximately equal: the serving tier's
//! determinism guarantee ("served answers ≡ the sequential optimizer
//! rule") rests on it. These tests stress the shapes where a compiled
//! representation is most likely to diverge: degenerate single-leaf trees,
//! maximally deep chain trees, zero-information feature columns, empty
//! batches, and (via the proptest shim) random fitted forests.

use ae_ml::compiled::CompiledForest;
use ae_ml::dataset::Dataset;
use ae_ml::forest::{RandomForestConfig, RandomForestRegressor};
use ae_ml::matrix::FeatureMatrix;
use ae_ml::tree::DecisionTreeConfig;
use proptest::prelude::*;

fn bits(values: &[f64]) -> Vec<u64> {
    values.iter().map(|v| v.to_bits()).collect()
}

/// Asserts compiled == interpreted, bit for bit, on single-row and batched
/// paths over the given probe rows.
fn assert_equivalent(forest: &RandomForestRegressor, rows: &[Vec<f64>]) {
    let compiled = CompiledForest::compile(forest).expect("compile");
    assert_eq!(compiled.num_trees(), forest.num_trees());
    assert_eq!(compiled.num_nodes(), forest.total_nodes());

    // Single-row path.
    for (i, row) in rows.iter().enumerate() {
        let interpreted = forest.predict(row).expect("interpreted predict");
        let fast = compiled.predict(row).expect("compiled predict");
        assert_eq!(bits(&interpreted), bits(&fast), "row {i} diverged");
    }

    // Batch-major kernel over the flat matrix.
    let matrix = FeatureMatrix::from_rows(rows).expect("matrix");
    let mut flat = vec![0.0; rows.len() * compiled.num_outputs()];
    compiled
        .predict_batch_into(&matrix, &mut flat)
        .expect("batch kernel");
    let k = compiled.num_outputs();
    for (i, row) in rows.iter().enumerate() {
        let interpreted = forest.predict(row).expect("interpreted predict");
        assert_eq!(
            bits(&interpreted),
            bits(&flat[i * k..(i + 1) * k]),
            "batched row {i} diverged"
        );
    }
}

#[test]
fn single_leaf_trees_are_equivalent() {
    // Constant targets: every tree is exactly one leaf.
    let mut d = Dataset::new(vec!["x".into()], vec!["y".into(), "z".into()]);
    for i in 0..20 {
        d.push_row(format!("r{i}"), vec![i as f64], vec![7.5, -3.25])
            .unwrap();
    }
    let mut rf = RandomForestRegressor::new(RandomForestConfig {
        n_estimators: 8,
        seed: 1,
        ..Default::default()
    });
    rf.fit(&d).unwrap();
    assert_eq!(rf.total_nodes(), 8, "expected one leaf per tree");
    let rows: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64 * 3.0]).collect();
    assert_equivalent(&rf, &rows);
}

#[test]
fn max_depth_chain_trees_are_equivalent() {
    // Exponentially growing targets on one feature: the best split always
    // peels off the largest value, producing a chain tree whose depth
    // approaches the sample count. (Also exercises the iterative
    // `depth()` on a shape where recursion depth would equal the chain.)
    let n = 160;
    let mut d = Dataset::new(vec!["x".into()], vec!["y".into()]);
    for i in 0..n {
        d.push_row(format!("r{i}"), vec![i as f64], vec![2.0f64.powi(i as i32)])
            .unwrap();
    }
    let mut rf = RandomForestRegressor::new(RandomForestConfig {
        n_estimators: 4,
        bootstrap: false, // keep every sample so the chain is as deep as possible
        seed: 3,
        ..Default::default()
    });
    rf.fit(&d).unwrap();
    assert!(
        rf.max_tree_depth() >= n / 2,
        "expected a deep chain, got depth {}",
        rf.max_tree_depth()
    );
    let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 + 0.5]).collect();
    assert_equivalent(&rf, &rows);
}

#[test]
fn constant_feature_rows_are_equivalent() {
    // Every feature column is constant: no split has positive gain, so
    // every tree degenerates to its root leaf even though targets vary.
    let mut d = Dataset::new(vec!["a".into(), "b".into()], vec!["y".into()]);
    for i in 0..30 {
        d.push_row(format!("r{i}"), vec![1.0, 2.0], vec![i as f64])
            .unwrap();
    }
    let mut rf = RandomForestRegressor::new(RandomForestConfig {
        n_estimators: 6,
        seed: 9,
        ..Default::default()
    });
    rf.fit(&d).unwrap();
    let rows = vec![vec![1.0, 2.0], vec![-5.0, 100.0], vec![0.0, 0.0]];
    assert_equivalent(&rf, &rows);
}

#[test]
fn empty_batches_and_zero_width_trees_are_handled() {
    // Empty batch through the compiled kernel.
    let mut d = Dataset::new(vec!["x".into()], vec!["y".into()]);
    for i in 0..10 {
        d.push_row(format!("r{i}"), vec![i as f64], vec![i as f64])
            .unwrap();
    }
    let mut rf = RandomForestRegressor::new(RandomForestConfig {
        n_estimators: 3,
        seed: 2,
        ..Default::default()
    });
    rf.fit(&d).unwrap();
    let compiled = CompiledForest::compile(&rf).unwrap();
    let empty = FeatureMatrix::new(1);
    let mut out: Vec<f64> = Vec::new();
    compiled.predict_batch_into(&empty, &mut out).unwrap();
    assert!(out.is_empty());

    // A tree fitted on zero-width (empty-feature) rows is a single leaf;
    // its prediction on the empty row must survive unchanged.
    let rows: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let targets: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
    let mut tree = ae_ml::tree::DecisionTreeRegressor::new(DecisionTreeConfig::default());
    tree.fit(&rows, &targets).unwrap();
    assert_eq!(tree.node_count(), 1);
    assert_eq!(tree.depth(), 0);
    assert!((tree.predict(&[]).unwrap()[0] - 2.0).abs() < 1e-12);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_fitted_forests_are_equivalent(
        seed in 0u64..1_000,
        n_rows in 8usize..40,
        n_features in 1usize..4,
        n_outputs in 1usize..3,
        n_estimators in 1usize..10,
        max_depth in 0usize..6,
        scale in 0.1f64..50.0,
    ) {
        let feature_names: Vec<String> = (0..n_features).map(|i| format!("f{i}")).collect();
        let target_names: Vec<String> = (0..n_outputs).map(|i| format!("t{i}")).collect();
        let mut d = Dataset::new(feature_names, target_names);
        // Deterministic pseudo-random rows derived from the drawn seed.
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for i in 0..n_rows {
            let features: Vec<f64> = (0..n_features).map(|_| next() * scale).collect();
            let targets: Vec<f64> = (0..n_outputs)
                .map(|o| features.iter().sum::<f64>() * (o as f64 + 1.0) + next())
                .collect();
            d.push_row(format!("r{i}"), features, targets).unwrap();
        }
        let mut rf = RandomForestRegressor::new(RandomForestConfig {
            n_estimators,
            seed,
            tree: DecisionTreeConfig {
                max_depth: if max_depth == 0 { None } else { Some(max_depth) },
                ..Default::default()
            },
            ..Default::default()
        });
        rf.fit(&d).unwrap();
        let compiled = CompiledForest::compile(&rf).unwrap();
        let probes: Vec<Vec<f64>> = (0..10)
            .map(|_| (0..n_features).map(|_| next() * scale * 1.5 - scale * 0.25).collect())
            .collect();
        let matrix = FeatureMatrix::from_rows(&probes).unwrap();
        let mut flat = vec![0.0; probes.len() * compiled.num_outputs()];
        compiled.predict_batch_into(&matrix, &mut flat).unwrap();
        let k = compiled.num_outputs();
        for (i, row) in probes.iter().enumerate() {
            let interpreted = rf.predict(row).unwrap();
            let single = compiled.predict(row).unwrap();
            prop_assert_eq!(bits(&interpreted), bits(&single));
            prop_assert_eq!(bits(&interpreted), bits(&flat[i * k..(i + 1) * k]));
        }
    }
}
