//! Fleet resilience suite:
//!
//! * a fleet with [`FleetFaultPlan::none`] is **bit-identical** to a fleet
//!   built without a plan (scores *and* stats) at 1/2/4 shards,
//! * a seeded chaos plan under 3-level concurrent load preserves the
//!   accounting identities exactly: `aggregate().completed` equals the
//!   client-visible Ok count and `aggregate().errors` equals client-visible
//!   errors plus failover retry attempts — zero lost tickets,
//! * an induced crash drives quarantine (successor rerouting off the
//!   ring), failover rescues the in-flight failures, and probation
//!   re-admits the shard once the fault clears,
//! * quarantine evacuation moves `Standard` backlog to survivors but
//!   **never** `Interactive`,
//! * shutdown is idempotent and safe concurrently with quarantine and
//!   evacuation: every ticket resolves, nothing double-counted.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ae_serve::{
    FleetConfig, FleetFaultPlan, HealthPolicy, HealthState, InducedFault, RuntimeConfig,
    ScoreRequest, ScoreTicket, ServiceLevel, ShardedRuntime, TenantId,
};
use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

fn fixture() -> (Arc<ModelRegistry>, AutoExecutorConfig, Vec<f64>) {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<QueryInstance> = ["q3", "q19", "q55", "q68", "q79", "q94"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 8;
    config.forest.seed = 11;
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&training, &config).unwrap();
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("ppm", model.to_portable("ppm").unwrap())
        .unwrap();
    let features = autoexecutor::featurize_plan(&generator.instance("q27").plan);
    (registry, config, features)
}

/// The per-shard template every resilience test uses: one worker, small
/// batches, no inline shortcut (every request goes through the queues the
/// failover machinery operates on), and a queue deep enough that neither
/// saturation nor shedding can occur — those would be *policy* outcomes,
/// not faults, and would perturb the accounting identities under test.
fn shard_runtime(config: &AutoExecutorConfig) -> RuntimeConfig {
    RuntimeConfig::from_auto_executor(config)
        .with_workers(1)
        .with_max_batch(4)
        .with_batch_window(Duration::ZERO)
        .with_inline_when_idle(false)
        .with_queue_capacity(4096)
}

/// The first `count` tenant ids that route to `shard` on the fleet's
/// *current* ring (call before any quarantine changes membership).
fn tenants_for_shard(fleet: &ShardedRuntime, shard: usize, count: usize) -> Vec<TenantId> {
    let mut out = Vec::new();
    let mut id = 0u64;
    while out.len() < count {
        assert!(id < 1_000_000, "tenant search diverged");
        if fleet.shard_for_tenant(TenantId(id)) == shard {
            out.push(TenantId(id));
        }
        id += 1;
    }
    out
}

/// Redeems a detached ticket, panicking if it never resolves — the
/// zero-lost-tickets assertion.
fn redeem(ticket: ScoreTicket) -> ae_serve::Result<ae_serve::ScoreOutcome> {
    match ticket.wait_timeout(Duration::from_secs(10)) {
        Ok(result) => result,
        Err(_) => panic!("ticket stranded past the redemption deadline"),
    }
}

fn wait_until(deadline: Duration, mut condition: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if condition() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    condition()
}

/// The tentpole inertness pin: a deterministic fleet with an explicit
/// [`FleetFaultPlan::none`] (even a seeded one — zero rates are what make
/// a plan inert) is bit-identical to a fleet built without one, at every
/// shard count: same scores, same per-shard counters, all-healthy, every
/// resilience counter zero.
#[test]
fn none_plan_fleet_is_bit_identical_to_a_plain_fleet() {
    let (registry, config, _) = fixture();
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let scoring: Vec<Vec<f64>> = ["q7", "q11", "q27", "q34", "q46", "q59", "q72", "q88"]
        .iter()
        .map(|n| autoexecutor::featurize_plan(&generator.instance(n).plan))
        .collect();
    for shards in [1usize, 2, 4] {
        let plain = ShardedRuntime::new(
            Arc::clone(&registry),
            "ppm",
            FleetConfig::deterministic(shards, &config),
        );
        let chaos_free = ShardedRuntime::new(
            Arc::clone(&registry),
            "ppm",
            FleetConfig::deterministic(shards, &config)
                .with_fault_plan(FleetFaultPlan::none().with_seed(0xC0FFEE)),
        );
        for (i, features) in scoring.iter().enumerate() {
            let tenant = TenantId(i as u64 * 17);
            let a = plain
                .submit(ScoreRequest::from_features(features.clone()).with_tenant(tenant))
                .unwrap();
            let b = chaos_free
                .submit(ScoreRequest::from_features(features.clone()).with_tenant(tenant))
                .unwrap();
            assert_eq!(
                a.request.executors, b.request.executors,
                "{shards} shards, query {i}: executors"
            );
            let a_bits: Vec<u64> = a
                .request
                .predicted_ppm
                .parameters()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            let b_bits: Vec<u64> = b
                .request
                .predicted_ppm
                .parameters()
                .iter()
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(a_bits, b_bits, "{shards} shards, query {i}: ppm parameters");
            let a_curve: Vec<(usize, u64)> = a
                .request
                .predicted_curve
                .iter()
                .map(|&(n, t)| (n, t.to_bits()))
                .collect();
            let b_curve: Vec<(usize, u64)> = b
                .request
                .predicted_curve
                .iter()
                .map(|&(n, t)| (n, t.to_bits()))
                .collect();
            assert_eq!(a_curve, b_curve, "{shards} shards, query {i}: curve");
            assert_eq!(a.level, b.level);
        }
        let a = plain.stats();
        let b = chaos_free.stats();
        assert_eq!(a, b, "{shards} shards: stats must match field for field");
        assert_eq!(a.quarantines, 0);
        assert_eq!(a.recoveries, 0);
        assert_eq!(a.evacuated_requests, 0);
        assert_eq!(a.failover_retries, 0);
        assert_eq!(a.retries_denied, 0);
        assert!(b.health.iter().all(|&h| h == HealthState::Healthy));
        assert!(chaos_free.shard_fault(0).is_none());
        plain.shutdown();
        chaos_free.shutdown();
    }
}

/// The seeded chaos pin: a reproducible kill/stall schedule under
/// 3-level concurrent load, with health monitoring and failover active.
/// Whatever the schedule does, the accounting identities are exact:
/// every submission resolves, `completed` equals the client Ok count,
/// and `errors` equals client-visible errors plus failover attempts —
/// a rescued retry leaves one error on the failed shard and one
/// completion on the target.
#[test]
fn seeded_chaos_accounting_is_exact_under_concurrent_load() {
    let (registry, config, features) = fixture();
    let plan = FleetFaultPlan::none()
        .with_seed(42)
        .with_crashes(20.0, Duration::from_millis(100))
        .with_stalls(10.0, Duration::from_millis(60), Duration::from_millis(1))
        .with_horizon(Duration::from_secs(5));
    let policy = HealthPolicy::default()
        .with_check_interval(Duration::from_millis(1))
        .with_error_rate(0.5, 4)
        .with_stall_watchdog(4, 3)
        .with_quarantine_hold(Duration::from_millis(15))
        .with_probation(2, 4, 2)
        .with_retry_budget(100_000, 100_000.0);
    let fleet = Arc::new(ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::new(4, shard_runtime(&config))
            .with_health(policy)
            .with_fault_plan(plan),
    ));
    fleet.warm().unwrap();

    const THREADS: usize = 3;
    const PER_THREAD: usize = 1200;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let fleet = Arc::clone(&fleet);
            let features = features.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut err = 0u64;
                for i in 0..PER_THREAD {
                    let level = ServiceLevel::from_index((i + t) % 3).unwrap();
                    let tenant = TenantId(((i * 7 + t * 131) % 64) as u64);
                    let request = ScoreRequest::from_features(features.clone())
                        .with_tenant(tenant)
                        .with_level(level);
                    match fleet.submit(request) {
                        Ok(_) => ok += 1,
                        Err(_) => err += 1,
                    }
                    // Pace the load so it overlaps several fault windows
                    // instead of finishing before the first arrival.
                    if i % 16 == 0 {
                        std::thread::sleep(Duration::from_micros(300));
                    }
                }
                (ok, err)
            })
        })
        .collect();
    let mut ok_total = 0u64;
    let mut err_total = 0u64;
    for handle in handles {
        let (ok, err) = handle.join().unwrap();
        ok_total += ok;
        err_total += err;
    }
    assert_eq!(
        ok_total + err_total,
        (THREADS * PER_THREAD) as u64,
        "every submission resolved exactly once"
    );

    // All submissions were synchronous, so the fleet is quiescent and the
    // snapshot is exact.
    let stats = fleet.stats();
    let aggregate = stats.aggregate();
    // Policy outcomes would break the identities; the deep queues must
    // have prevented them entirely.
    assert_eq!(aggregate.dropped, 0, "blocking submits cannot saturate");
    for level in ServiceLevel::ALL {
        assert_eq!(aggregate.level(level).shed, 0, "{level:?} was shed");
    }
    assert_eq!(
        aggregate.completed, ok_total,
        "every client Ok is exactly one shard completion"
    );
    assert_eq!(
        aggregate.errors,
        err_total + stats.failover_retries,
        "shard errors = client errors + failover attempts (a rescued retry \
         leaves one error behind)"
    );
    fleet.shutdown();
}

/// The full failure lifecycle on one shard: an induced crash is detected
/// by the error-rate signal (failover rescuing every client call along
/// the way), the shard is quarantined off the ring with successor
/// rerouting, and — once the fault clears — the probation trickle proves
/// recovery and re-admits it to full membership.
#[test]
fn crash_quarantine_failover_and_probationary_recovery() {
    let (registry, config, features) = fixture();
    let policy = HealthPolicy::default()
        .with_check_interval(Duration::from_millis(1))
        .with_error_rate(0.5, 2)
        // Effectively disable the stall watchdog: this test's signal is
        // the error rate, and a briefly descheduled healthy shard must
        // not add a second quarantine.
        .with_stall_watchdog(1024, 1000)
        .with_quarantine_hold(Duration::from_millis(10))
        .with_probation(2, 4, 2)
        .with_retry_budget(100_000, 100_000.0);
    let fleet = ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::new(2, shard_runtime(&config))
            .without_steal()
            .with_health(policy),
    );
    fleet.warm().unwrap();
    let victim = fleet.shard_for_tenant(TenantId(0));
    let survivor = 1 - victim;
    let victim_tenants = tenants_for_shard(&fleet, victim, 8);
    let survivor_tenants = tenants_for_shard(&fleet, survivor, 8);

    fleet.induce_shard_fault(victim, InducedFault::Crash);
    assert_eq!(fleet.shard_fault(victim), Some(InducedFault::Crash));
    let mut ok = 0u64;
    let mut i = 0usize;
    let deadline = Instant::now() + Duration::from_secs(10);
    while fleet.stats().quarantines == 0 {
        assert!(Instant::now() < deadline, "shard was never quarantined");
        let tenant = if i.is_multiple_of(2) {
            victim_tenants[(i / 2) % 8]
        } else {
            survivor_tenants[(i / 2) % 8]
        };
        fleet
            .submit(ScoreRequest::from_features(features.clone()).with_tenant(tenant))
            .expect("failover must rescue every call while a survivor exists");
        ok += 1;
        i += 1;
    }
    // Quarantined (or already in probation — both are off the ring):
    // traffic reroutes to the survivor.
    assert!(!fleet.shard_health(victim).is_routable());
    assert!(!fleet.ring().shard_ids().contains(&(victim as u16)));
    assert_ne!(fleet.shard_for_tenant(victim_tenants[0]), victim);
    assert_eq!(fleet.shard_health(survivor), HealthState::Healthy);

    // Clear the fault and keep offering traffic: the probation trickle
    // must prove the shard and re-admit it.
    fleet.clear_shard_fault(victim);
    assert_eq!(fleet.shard_fault(victim), None);
    let deadline = Instant::now() + Duration::from_secs(10);
    while fleet.stats().recoveries == 0 {
        assert!(
            Instant::now() < deadline,
            "probation never re-admitted the recovered shard"
        );
        let tenant = survivor_tenants[i % 8];
        fleet
            .submit(ScoreRequest::from_features(features.clone()).with_tenant(tenant))
            .expect("post-clear traffic must succeed");
        ok += 1;
        i += 1;
    }
    assert_eq!(fleet.shard_health(victim), HealthState::Healthy);
    assert!(fleet.ring().shard_ids().contains(&(victim as u16)));

    let stats = fleet.stats();
    assert!(stats.quarantines >= 1);
    assert!(stats.recoveries >= 1);
    assert!(
        stats.failover_retries > 0,
        "crashed-shard calls must have been retried cross-shard"
    );
    assert_eq!(stats.retries_denied, 0, "the budget was ample");
    let aggregate = stats.aggregate();
    assert_eq!(aggregate.completed, ok, "every client Ok counted once");
    assert_eq!(
        aggregate.errors, stats.failover_retries,
        "no client-visible errors, so shard errors are exactly the \
         rescued attempts"
    );
    fleet.shutdown();
}

/// Evacuation QoS invariant: when the drain-stall watchdog quarantines a
/// wedged shard, its queued `Standard` backlog moves to the survivor —
/// but `Interactive` requests are never evacuated; they drain (slowly)
/// on their home shard. Every ticket completes.
#[test]
fn evacuation_moves_standard_backlog_but_never_interactive() {
    let (registry, config, features) = fixture();
    let policy = HealthPolicy::default()
        .with_check_interval(Duration::from_millis(1))
        // Error-rate signal effectively off: a stall produces no errors.
        .with_error_rate(0.9, 1_000_000)
        .with_stall_watchdog(1, 2)
        // Stay quarantined for the whole test: recovery is not under test
        // and the probation trickle would blur per-shard placement.
        .with_quarantine_hold(Duration::from_secs(30))
        .with_retry_budget(0, 0.0);
    let fleet = ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::new(2, shard_runtime(&config))
            .without_steal()
            .with_health(policy),
    );
    fleet.warm().unwrap();
    let victim = fleet.shard_for_tenant(TenantId(0));
    let survivor = 1 - victim;
    let victim_tenants = tenants_for_shard(&fleet, victim, 4);

    fleet.induce_shard_fault(victim, InducedFault::Stall(Duration::from_millis(20)));
    const INTERACTIVE: usize = 16;
    const STANDARD: usize = 64;
    let mut tickets = Vec::with_capacity(INTERACTIVE + STANDARD);
    // Interactive first: all admitted to the victim well before the
    // watchdog can fire, so none can route to the survivor afterwards.
    for i in 0..INTERACTIVE {
        let request = ScoreRequest::from_features(features.clone())
            .with_tenant(victim_tenants[i % 4])
            .with_level(ServiceLevel::Interactive);
        tickets.push(fleet.submit_detached(request).unwrap());
    }
    for i in 0..STANDARD {
        let request = ScoreRequest::from_features(features.clone())
            .with_tenant(victim_tenants[i % 4])
            .with_level(ServiceLevel::Standard);
        tickets.push(fleet.submit_detached(request).unwrap());
    }
    assert!(
        wait_until(Duration::from_secs(5), || fleet.stats().quarantines >= 1),
        "the drain-stall watchdog never quarantined the wedged shard"
    );
    let mut completed = 0u64;
    for ticket in tickets {
        redeem(ticket).expect("a stall only delays; every ticket must complete");
        completed += 1;
    }
    let stats = fleet.stats();
    assert!(
        stats.evacuated_requests > 0,
        "quarantine must have evacuated the standard backlog"
    );
    assert_eq!(
        stats
            .shard(survivor)
            .level(ServiceLevel::Interactive)
            .completed,
        0,
        "Interactive must never be evacuated off its home shard"
    );
    assert_eq!(
        stats
            .shard(victim)
            .level(ServiceLevel::Interactive)
            .completed,
        INTERACTIVE as u64,
        "every Interactive request drained on the stalled home shard"
    );
    let aggregate = stats.aggregate();
    assert_eq!(aggregate.completed, completed);
    assert_eq!(aggregate.completed, (INTERACTIVE + STANDARD) as u64);
    assert_eq!(aggregate.errors, 0);
    fleet.clear_shard_fault(victim);
    fleet.shutdown();
}

/// Shutdown satellite: concurrent and repeated `shutdown` calls racing
/// an active health monitor (mid-quarantine, mid-evacuation) strand no
/// ticket and double-count nothing — `completed + errors` equals the
/// admitted total exactly, and a stopped fleet's snapshot is stable.
#[test]
fn shutdown_is_idempotent_and_safe_during_quarantine_and_evacuation() {
    let (registry, config, features) = fixture();
    let policy = HealthPolicy::default()
        .with_check_interval(Duration::from_millis(1))
        .with_error_rate(0.5, 2)
        .with_quarantine_hold(Duration::from_millis(5))
        .with_probation(2, 2, 1)
        // No failover: every admitted ticket is counted by exactly the
        // shard(s) that held it, so errors match the client tally 1:1.
        .with_retry_budget(0, 0.0);
    let fleet = Arc::new(ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::new(4, shard_runtime(&config)).with_health(policy),
    ));
    fleet.warm().unwrap();

    const TOTAL: usize = 600;
    let mut tickets = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        let request = ScoreRequest::from_features(features.clone())
            .with_tenant(TenantId((i % 32) as u64))
            .with_level(ServiceLevel::from_index(i % 3).unwrap());
        tickets.push(fleet.submit_detached(request).unwrap());
    }
    fleet.induce_shard_fault(0, InducedFault::Crash);
    fleet.induce_shard_fault(1, InducedFault::Stall(Duration::from_millis(5)));
    // Let the monitor begin quarantining/evacuating, then race it.
    std::thread::sleep(Duration::from_millis(4));
    let handles: Vec<_> = (0..3)
        .map(|_| {
            let fleet = Arc::clone(&fleet);
            std::thread::spawn(move || fleet.shutdown())
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    fleet.shutdown(); // and once more, for idempotence

    let mut ok = 0u64;
    let mut err = 0u64;
    for ticket in tickets {
        match redeem(ticket) {
            Ok(_) => ok += 1,
            Err(_) => err += 1,
        }
    }
    assert_eq!(ok + err, TOTAL as u64, "every ticket resolved exactly once");
    let stats = fleet.stats();
    let aggregate = stats.aggregate();
    assert_eq!(aggregate.completed, ok, "every Ok counted exactly once");
    assert_eq!(aggregate.errors, err, "every failure counted exactly once");
    assert_eq!(
        aggregate.completed + aggregate.errors,
        TOTAL as u64,
        "no ticket lost or double-counted across shutdown, quarantine, \
         and evacuation"
    );
    assert_eq!(
        fleet.stats(),
        stats,
        "a stopped fleet's snapshot must be stable"
    );
}
