//! Fleet stress battery:
//!
//! * flooding one shard's tenants triggers bounded work stealing that
//!   migrates only `Standard`/`BestEffort` backlog — the per-shard QoS
//!   invariants (Interactive isolation, nothing shed below saturation,
//!   no lost or double-counted requests) hold throughout,
//! * graceful shutdown drains all shards with **no lost tickets**: every
//!   detached submission resolves to a score or `ShutDown`, and the two
//!   client-side counts match the fleet's counters exactly, and
//! * [`FleetStats`] aggregation is exact under concurrent multi-level
//!   load: per-shard counters sum to the client-observed totals, and
//!   `delta_since` isolates a traffic phase precisely.

use std::sync::Arc;
use std::time::Duration;

use ae_serve::{
    FleetConfig, RuntimeConfig, ScoreRequest, ServeError, ServiceLevel, ShardedRuntime,
    StealPolicy, TenantId,
};
use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

fn fixture(seed: u64) -> (Arc<ModelRegistry>, AutoExecutorConfig, Vec<f64>) {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<QueryInstance> = ["q3", "q19", "q55", "q68", "q79", "q94"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 8;
    config.forest.seed = seed;
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&training, &config).unwrap();
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("ppm", model.to_portable("ppm").unwrap())
        .unwrap();
    let features = autoexecutor::featurize_plan(&generator.instance("q27").plan);
    (registry, config, features)
}

/// Tenants of one shard: walks the id space until `count` tenants routing
/// to `shard` are found.
fn tenants_of_shard(fleet: &ShardedRuntime, shard: usize, count: usize) -> Vec<TenantId> {
    let mut found = Vec::new();
    let mut id = 0u64;
    while found.len() < count {
        if fleet.shard_for_tenant(TenantId(id)) == shard {
            found.push(TenantId(id));
        }
        id += 1;
        assert!(id < 1_000_000, "ring starved shard {shard}");
    }
    found
}

/// Floods a single shard's tenants at a rate its one worker cannot match
/// and checks the steal path end to end: stealing happens, it is bounded
/// by the policy, it never migrates `Interactive` work, and the fleet's
/// books stay exact (every request completes exactly once, on exactly one
/// shard).
#[test]
fn flooding_one_shard_steals_bounded_non_interactive_backlog() {
    let (registry, config, features) = fixture(31);
    const SHARDS: usize = 4;
    const TOTAL: usize = 3000;
    let policy = StealPolicy {
        imbalance_ratio: 1.5,
        min_backlog: 16,
        max_steal: 32,
        interval: Duration::from_micros(50),
    };
    let fleet = ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::new(
            SHARDS,
            RuntimeConfig::from_auto_executor(&config)
                .with_workers(1)
                .with_max_batch(4)
                .with_batch_window(Duration::ZERO)
                .with_inline_when_idle(false)
                .with_queue_capacity(4096),
        )
        .with_steal(policy.clone()),
    );
    fleet.warm().unwrap();

    // All traffic targets tenants of one shard, so only stealing can put
    // work anywhere else.
    let victim = fleet.shard_for_tenant(TenantId(0));
    let tenants = tenants_of_shard(&fleet, victim, 8);

    let mut tickets = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        // ~10% Interactive (must stay on the victim), the rest Standard
        // (eligible for migration).
        let level = if i % 10 == 0 {
            ServiceLevel::Interactive
        } else {
            ServiceLevel::Standard
        };
        let request = ScoreRequest::from_features(features.clone())
            .with_tenant(tenants[i % tenants.len()])
            .with_level(level)
            .with_deadline_budget(Duration::from_secs(60));
        tickets.push(fleet.submit_detached(request).unwrap());
    }
    for ticket in tickets {
        ticket.wait().unwrap();
    }

    let stats = fleet.stats();
    let aggregate = stats.aggregate();

    // Work actually migrated, within the policy's bounds.
    assert!(stats.steal_ops > 0, "the flood never triggered a steal");
    assert!(stats.stolen_requests > 0);
    assert!(
        stats.stolen_requests <= stats.steal_ops * policy.max_steal as u64,
        "a steal operation exceeded max_steal"
    );
    let foreign_completed: u64 = (0..SHARDS)
        .filter(|&s| s != victim)
        .map(|s| stats.shard(s).completed)
        .sum();
    assert!(
        foreign_completed > 0,
        "stolen requests never completed off the victim shard"
    );

    // Interactive isolation: every Interactive request completed on the
    // shard it was routed to — stealing never moves them.
    for shard in 0..SHARDS {
        if shard != victim {
            assert_eq!(
                stats
                    .shard(shard)
                    .level(ServiceLevel::Interactive)
                    .completed,
                0,
                "an Interactive request was scored off its home shard {shard}"
            );
        }
    }
    assert_eq!(
        stats
            .shard(victim)
            .level(ServiceLevel::Interactive)
            .completed,
        (TOTAL as u64).div_ceil(10)
    );

    // Exact books: every request completed exactly once somewhere, none
    // double-counted on migration, none shed/dropped/errored (the queue
    // never saturated and no tenant policy is set).
    assert_eq!(aggregate.completed, TOTAL as u64);
    assert_eq!(
        (0..SHARDS).map(|s| stats.shard(s).completed).sum::<u64>(),
        TOTAL as u64
    );
    assert_eq!(aggregate.errors, 0);
    assert_eq!(aggregate.dropped, 0);
    assert_eq!(aggregate.shed(), 0);
    assert_eq!(aggregate.demoted, 0);
    assert_eq!(aggregate.throttled, 0);
    // Per-shard QoS invariant from qos_behavior.rs, now per shard: only
    // BestEffort is ever shed, and below saturation nothing is.
    for shard in 0..SHARDS {
        let s = stats.shard(shard);
        assert_eq!(s.level(ServiceLevel::Interactive).shed, 0);
        assert_eq!(s.level(ServiceLevel::Standard).shed, 0);
    }
    fleet.shutdown();
}

/// Graceful shutdown with non-empty queues on every shard: no ticket is
/// lost — each resolves to a score or to `ShutDown` — and the client-side
/// tallies match the fleet counters exactly.
#[test]
fn shutdown_drains_all_shards_without_losing_tickets() {
    let (registry, config, features) = fixture(32);
    const SHARDS: usize = 2;
    const TOTAL: usize = 400;
    let fleet = ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::new(
            SHARDS,
            RuntimeConfig::from_auto_executor(&config)
                .with_workers(1)
                .with_max_batch(4)
                .with_inline_when_idle(false)
                .with_queue_capacity(4096),
        ),
    );
    fleet.warm().unwrap();

    // Spread across many tenants so both shards hold backlog when the
    // shutdown lands.
    let mut tickets = Vec::with_capacity(TOTAL);
    for i in 0..TOTAL {
        let request = ScoreRequest::from_features(features.clone())
            .with_tenant(TenantId(i as u64))
            .with_deadline_budget(Duration::from_secs(60));
        tickets.push(fleet.submit_detached(request).unwrap());
    }
    fleet.shutdown();

    let mut scored = 0u64;
    let mut shut_down = 0u64;
    for ticket in tickets {
        match ticket.wait_timeout(Duration::from_secs(10)) {
            Ok(Ok(_)) => scored += 1,
            Ok(Err(ServeError::ShutDown)) => shut_down += 1,
            Ok(Err(other)) => panic!("unexpected error after shutdown: {other}"),
            Err(_) => panic!("a ticket was lost: unresolved after shutdown"),
        }
    }
    assert_eq!(scored + shut_down, TOTAL as u64, "a ticket vanished");

    let stats = fleet.stats();
    let aggregate = stats.aggregate();
    assert_eq!(
        aggregate.completed, scored,
        "completed != client-side scores"
    );
    assert_eq!(
        aggregate.errors, shut_down,
        "errors != client-side ShutDowns"
    );
    assert_eq!(aggregate.completed + aggregate.errors, TOTAL as u64);
    assert!(
        fleet.queue_depths().iter().all(|&d| d == 0),
        "a shard still holds queued requests after shutdown"
    );
}

/// `FleetStats` exactness under concurrent multi-level load with stealing
/// enabled: per-shard counters sum to the client-observed totals (no
/// double-count on stolen requests), per-level completions match what the
/// clients submitted, and `delta_since` isolates a second traffic phase
/// exactly.
#[test]
fn fleet_stats_sum_exactly_under_concurrent_load() {
    let (registry, config, features) = fixture(33);
    const SHARDS: usize = 4;
    const THREADS: usize = 4;
    const PER_THREAD: usize = 150;
    let fleet = Arc::new(ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::new(
            SHARDS,
            RuntimeConfig::from_auto_executor(&config)
                .with_workers(1)
                .with_max_batch(8)
                .with_queue_capacity(4096),
        )
        .with_steal(StealPolicy {
            imbalance_ratio: 1.5,
            min_backlog: 8,
            max_steal: 16,
            interval: Duration::from_micros(50),
        }),
    ));
    fleet.warm().unwrap();

    // One phase of concurrent blocking submissions; returns the per-level
    // client-side completion counts. Blocking submits mean the fleet is
    // quiescent once every thread has joined.
    let run_phase = |phase: usize| -> [u64; 3] {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let fleet = Arc::clone(&fleet);
                let features = features.clone();
                std::thread::spawn(move || {
                    let mut counts = [0u64; 3];
                    for i in 0..PER_THREAD {
                        let level = ServiceLevel::from_index((i + t) % 3).unwrap();
                        let outcome = fleet
                            .submit(
                                ScoreRequest::from_features(features.clone())
                                    .with_tenant(TenantId((phase * 100_000 + t * 1000 + i) as u64))
                                    .with_level(level)
                                    .with_deadline_budget(Duration::from_secs(60)),
                            )
                            .unwrap();
                        counts[outcome.level.index()] += 1;
                    }
                    counts
                })
            })
            .collect();
        let mut totals = [0u64; 3];
        for handle in handles {
            let counts = handle.join().unwrap();
            for (total, count) in totals.iter_mut().zip(counts) {
                *total += count;
            }
        }
        totals
    };

    let phase1 = run_phase(1);
    let snapshot = fleet.stats();
    let phase2 = run_phase(2);
    let finish = fleet.stats();

    let phase_total = (THREADS * PER_THREAD) as u64;
    assert_eq!(phase1.iter().sum::<u64>(), phase_total);
    assert_eq!(phase2.iter().sum::<u64>(), phase_total);

    // Snapshot after phase 1: per-shard counters sum exactly to what the
    // clients observed — no request lost or double-counted by stealing.
    let agg1 = snapshot.aggregate();
    assert_eq!(agg1.completed, phase_total);
    assert_eq!(
        (0..SHARDS)
            .map(|s| snapshot.shard(s).completed)
            .sum::<u64>(),
        phase_total
    );
    for level in ServiceLevel::ALL {
        assert_eq!(agg1.level(level).completed, phase1[level.index()]);
    }
    assert_eq!(agg1.errors, 0);
    assert_eq!(agg1.dropped, 0);
    assert_eq!(agg1.shed(), 0);

    // The delta isolates phase 2 exactly, counter for counter.
    let delta = finish.delta_since(&snapshot);
    let agg_delta = delta.aggregate();
    assert_eq!(agg_delta.completed, phase_total);
    for level in ServiceLevel::ALL {
        assert_eq!(agg_delta.level(level).completed, phase2[level.index()]);
    }
    assert_eq!(
        (0..SHARDS).map(|s| delta.shard(s).completed).sum::<u64>(),
        phase_total
    );
    // Steal accounting deltas never run backwards.
    assert!(finish.steal_ops >= snapshot.steal_ops);
    assert_eq!(delta.steal_ops, finish.steal_ops - snapshot.steal_ops);

    let agg_final = finish.aggregate();
    assert_eq!(agg_final.completed, 2 * phase_total);
    assert_eq!(agg_final.errors, 0);
    fleet.shutdown();
}
