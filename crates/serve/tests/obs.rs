//! Observability integration tests:
//!
//! * obs **disabled** is a provable no-op — scored outcomes are
//!   bit-identical with and without observability, and a default-config
//!   runtime exposes no handles;
//! * obs **enabled** records coherent events, latency histograms, and
//!   registry metrics that agree with [`ae_serve::RuntimeStats`];
//! * the stats source unregisters itself with the runtime (weak link).

use std::sync::Arc;

use ae_obs::{EventKind, MetricValue, MetricsRegistry};
use ae_serve::{ObsConfig, RuntimeConfig, ScoreRequest, ScoringRuntime, ServiceLevel};
use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

fn fixture() -> (Arc<ModelRegistry>, AutoExecutorConfig, Vec<QueryInstance>) {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<QueryInstance> = ["q1", "q5", "q12", "q42", "q69", "q94"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 8;
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&training, &config).unwrap();
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("ppm", model.to_portable("ppm").unwrap())
        .unwrap();
    let scoring: Vec<QueryInstance> = ["q3", "q7", "q11", "q19", "q27", "q34", "q46", "q55"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    (registry, config, scoring)
}

#[test]
fn disabled_observability_is_a_noop() {
    let (registry, config, queries) = fixture();
    let plain = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(&config),
    );
    assert!(plain.observability().is_none());

    let metrics = Arc::new(MetricsRegistry::new());
    let observed = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(&config)
            .with_observability(ObsConfig::new(Arc::clone(&metrics))),
    );

    // Observability must never change answers: outcomes are bit-identical.
    for query in &queries {
        let a = plain.score(&query.plan).unwrap();
        let b = observed.score(&query.plan).unwrap();
        assert_eq!(a.executors, b.executors, "{}", query.name);
        let a_curve: Vec<(usize, u64)> = a
            .predicted_curve
            .iter()
            .map(|&(n, t)| (n, t.to_bits()))
            .collect();
        let b_curve: Vec<(usize, u64)> = b
            .predicted_curve
            .iter()
            .map(|&(n, t)| (n, t.to_bits()))
            .collect();
        assert_eq!(a_curve, b_curve, "{}", query.name);
    }
    // And identical counters (same traffic, same accounting).
    let a = plain.stats();
    let b = observed.stats();
    assert_eq!(a, b);
}

#[test]
fn enabled_observability_agrees_with_stats() {
    let (model_registry, config, queries) = fixture();
    let metrics = Arc::new(MetricsRegistry::new());
    let runtime = ScoringRuntime::new(
        model_registry,
        "ppm",
        RuntimeConfig::deterministic(&config)
            .with_observability(ObsConfig::new(Arc::clone(&metrics)).with_prefix("rt")),
    );

    for query in &queries {
        runtime
            .submit(ScoreRequest::from_plan(&query.plan).with_level(ServiceLevel::Interactive))
            .unwrap();
    }
    let stats = runtime.stats();
    assert_eq!(stats.completed, queries.len() as u64);

    let obs = runtime.observability().expect("obs enabled");

    // Latency histogram: one sample per completed interactive request.
    let latency = obs.latency(ServiceLevel::Interactive);
    assert_eq!(latency.count(), queries.len() as u64);
    assert!(latency.max() > 0);
    assert_eq!(obs.latency(ServiceLevel::BestEffort).count(), 0);

    // Events: one admission per request, batch drains consistent with
    // the batches counter (deterministic mode queues everything).
    let events = obs.events().snapshot();
    let admissions = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Admission { .. }))
        .count();
    assert_eq!(admissions, queries.len());
    let drains = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::BatchDrain { .. }))
        .count();
    assert_eq!(drains as u64, stats.batches);

    // Registry snapshot: stats-source counters agree with stats(), the
    // batch histogram totals the batches, latency histograms are named.
    let snap = metrics.snapshot();
    assert_eq!(snap.counter("rt.completed"), Some(stats.completed));
    assert_eq!(
        snap.counter("rt.level.interactive.completed"),
        Some(stats.level(ServiceLevel::Interactive).completed)
    );
    match snap.get("rt.batch_size") {
        Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), stats.batches),
        other => panic!("rt.batch_size missing or mistyped: {other:?}"),
    }
    match snap.get("rt.latency_ns.interactive") {
        Some(MetricValue::Histogram(h)) => assert_eq!(h.count(), queries.len() as u64),
        other => panic!("rt.latency_ns.interactive missing or mistyped: {other:?}"),
    }

    // Shutdown is evented exactly once, even when called twice.
    runtime.shutdown();
    runtime.shutdown();
    let shutdowns = obs
        .events()
        .snapshot()
        .iter()
        .filter(|e| matches!(e.kind, EventKind::Shutdown))
        .count();
    assert_eq!(shutdowns, 1);
}

#[test]
fn stats_source_vanishes_with_the_runtime() {
    let (model_registry, config, queries) = fixture();
    let metrics = Arc::new(MetricsRegistry::new());
    let runtime = ScoringRuntime::new(
        model_registry,
        "ppm",
        RuntimeConfig::deterministic(&config)
            .with_observability(ObsConfig::new(Arc::clone(&metrics)).with_prefix("gone")),
    );
    runtime.score(&queries[0].plan).unwrap();
    assert_eq!(metrics.snapshot().counter("gone.completed"), Some(1));
    drop(runtime);
    // The weak stats source no longer upgrades; its names disappear.
    assert_eq!(metrics.snapshot().counter("gone.completed"), None);
    // The latency histograms are registry-owned and survive (still
    // queryable, frozen at their last recorded state).
    assert!(metrics
        .snapshot()
        .get("gone.latency_ns.interactive")
        .is_some());
}
