//! Behavioural tests of the QoS layer: service-level scheduling, deadline
//! accounting (including zero-deadline requests), BestEffort shedding under
//! saturation, per-tenant token-bucket fairness (no starvation of a light
//! tenant under a flooding one), and shutdown with non-empty priority
//! queues.

use std::sync::Arc;
use std::time::Duration;

use ae_serve::{
    QosConfig, RuntimeConfig, ScoreRequest, ScoringRuntime, ServeError, ServiceLevel, TenantId,
    TenantPolicy,
};
use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

fn fixture(seed: u64) -> (Arc<ModelRegistry>, AutoExecutorConfig, Vec<QueryInstance>) {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<QueryInstance> = ["q3", "q19", "q55", "q68", "q79", "q94"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 8;
    config.forest.seed = seed;
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&training, &config).unwrap();
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("ppm", model.to_portable("ppm").unwrap())
        .unwrap();
    let scoring = ["q7", "q11", "q27"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    (registry, config, scoring)
}

#[test]
fn outcomes_carry_level_and_curve_derived_quotes() {
    let (registry, config, queries) = fixture(21);
    let runtime = ScoringRuntime::new(registry, "ppm", RuntimeConfig::deterministic(&config));
    let features = autoexecutor::featurize_plan(&queries[0].plan);
    let mut prices = Vec::new();
    for level in [
        ServiceLevel::BestEffort,
        ServiceLevel::Standard,
        ServiceLevel::Interactive,
    ] {
        let outcome = runtime
            .submit(ScoreRequest::from_features(features.clone()).with_level(level))
            .unwrap();
        assert_eq!(outcome.level, level);
        let quote = outcome.quote().expect("non-empty predicted curve");
        assert_eq!(quote.level, level);
        assert!(quote.price.is_finite() && quote.price > 0.0);
        assert!(quote.multiplier >= 1.0);
        prices.push(quote.price);
    }
    // Stricter levels never cost less: best-effort <= standard <= interactive.
    assert!(prices[0] <= prices[1]);
    assert!(prices[1] <= prices[2]);
}

#[test]
fn zero_deadline_requests_complete_and_count_as_misses() {
    let (registry, config, queries) = fixture(22);
    let runtime = ScoringRuntime::new(registry, "ppm", RuntimeConfig::deterministic(&config));
    let features = autoexecutor::featurize_plan(&queries[0].plan);
    let outcome = runtime
        .submit(
            ScoreRequest::from_features(features)
                .with_level(ServiceLevel::Interactive)
                .with_deadline_budget(Duration::ZERO),
        )
        .expect("a zero-deadline request is still answered");
    assert!(outcome.missed_deadline, "a zero deadline cannot be met");
    assert!((1..=48).contains(&outcome.request.executors));
    let stats = runtime.stats();
    assert_eq!(stats.level(ServiceLevel::Interactive).completed, 1);
    assert_eq!(stats.level(ServiceLevel::Interactive).deadline_misses, 1);
    assert_eq!(stats.errors, 0);
}

#[test]
fn generous_deadlines_are_met_and_not_counted_as_misses() {
    let (registry, config, queries) = fixture(23);
    let runtime = ScoringRuntime::new(registry, "ppm", RuntimeConfig::deterministic(&config));
    for query in &queries {
        let outcome = runtime
            .submit(
                ScoreRequest::from_plan(&query.plan)
                    .with_level(ServiceLevel::Standard)
                    .with_deadline_budget(Duration::from_secs(30)),
            )
            .unwrap();
        assert!(!outcome.missed_deadline);
    }
    let stats = runtime.stats();
    assert_eq!(
        stats.level(ServiceLevel::Standard).completed,
        queries.len() as u64
    );
    assert_eq!(stats.level(ServiceLevel::Standard).deadline_misses, 0);
}

#[test]
fn saturation_sheds_best_effort_to_admit_higher_levels() {
    let (registry, config, queries) = fixture(24);
    // No workers: requests stay queued, so admission is exercised
    // deterministically against a full queue.
    let runtime = Arc::new(ScoringRuntime::new(
        registry,
        "ppm",
        RuntimeConfig::deterministic(&config)
            .with_workers(0)
            .with_queue_capacity(2),
    ));
    let parked_best_effort: Vec<_> = (0..2)
        .map(|_| {
            let runtime = Arc::clone(&runtime);
            let plan = queries[0].plan.clone();
            std::thread::spawn(move || {
                runtime.submit(ScoreRequest::from_plan(&plan).with_level(ServiceLevel::BestEffort))
            })
        })
        .collect();
    while runtime.queue_depth() < 2 {
        std::thread::yield_now();
    }

    // An incoming BestEffort request cannot evict its own level: try_submit
    // saturates, blocking submit would wait.
    assert!(matches!(
        runtime.try_submit(
            ScoreRequest::from_plan(&queries[1].plan).with_level(ServiceLevel::BestEffort)
        ),
        Err(ServeError::Saturated)
    ));
    assert_eq!(runtime.stats().dropped, 1);

    // An Interactive request sheds a parked BestEffort request instead of
    // saturating; it then parks itself (no workers run).
    let interactive = {
        let runtime = Arc::clone(&runtime);
        let plan = queries[2].plan.clone();
        std::thread::spawn(move || {
            runtime.try_submit(ScoreRequest::from_plan(&plan).with_level(ServiceLevel::Interactive))
        })
    };
    while runtime.stats().level(ServiceLevel::BestEffort).shed < 1 {
        std::thread::yield_now();
    }
    // Queue capacity stayed 2: one BestEffort out, one Interactive in.
    assert_eq!(runtime.queue_depth(), 2);

    // Shutdown releases the survivors; exactly one parked BestEffort was
    // shed, the other (and the Interactive request) see ShutDown.
    runtime.shutdown();
    let shed_results: Vec<_> = parked_best_effort
        .into_iter()
        .map(|handle| handle.join().unwrap())
        .collect();
    assert_eq!(
        shed_results
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Shed)))
            .count(),
        1
    );
    assert_eq!(
        shed_results
            .iter()
            .filter(|r| matches!(r, Err(ServeError::ShutDown)))
            .count(),
        1
    );
    assert!(matches!(
        interactive.join().unwrap(),
        Err(ServeError::ShutDown)
    ));
    assert_eq!(runtime.stats().level(ServiceLevel::BestEffort).shed, 1);
}

#[test]
fn flooding_tenant_cannot_starve_a_light_tenant() {
    let (registry, config, queries) = fixture(25);
    // Tight queue + demote-on-violation fairness: the flooding tenant blows
    // through its burst, gets demoted to BestEffort, and its parked flood
    // is exactly what the light tenant's Standard requests shed through.
    let qos = QosConfig::default().with_fairness(TenantPolicy::demote(50.0, 64.0));
    let runtime = Arc::new(ScoringRuntime::new(
        registry,
        "ppm",
        RuntimeConfig::from_auto_executor(&config)
            .with_workers(1)
            .with_queue_capacity(2)
            .with_inline_when_idle(false)
            .with_qos(qos),
    ));
    runtime.warm().unwrap();

    let heavy = TenantId(1);
    let light = TenantId(2);
    let flood: Vec<_> = (0..4)
        .map(|t| {
            let runtime = Arc::clone(&runtime);
            let plan = queries[t % queries.len()].plan.clone();
            std::thread::spawn(move || {
                let mut shed_or_dropped = 0u64;
                for _ in 0..3000 {
                    match runtime.try_submit(
                        ScoreRequest::from_plan(&plan)
                            .with_level(ServiceLevel::Interactive)
                            .with_tenant(heavy),
                    ) {
                        Ok(_) => {}
                        Err(ServeError::Shed) | Err(ServeError::Saturated) => shed_or_dropped += 1,
                        Err(other) => panic!("unexpected error under flood: {other}"),
                    }
                }
                shed_or_dropped
            })
        })
        .collect();

    // The light tenant stays comfortably inside the burst (20 spaced
    // requests against a 64-token bucket) and must never be starved,
    // shed, or throttled: each blocking submit must come back Ok at the
    // requested level (true starvation would hang this loop and time the
    // test out, not falsify a counter).
    for i in 0..20 {
        let outcome = runtime
            .submit(
                ScoreRequest::from_plan(&queries[i % queries.len()].plan)
                    .with_level(ServiceLevel::Standard)
                    .with_tenant(light),
            )
            .expect("the light tenant must not be starved");
        assert_eq!(outcome.level, ServiceLevel::Standard, "no demotion in-rate");
        std::thread::sleep(Duration::from_millis(1));
    }

    let flood_shed: u64 = flood.into_iter().map(|h| h.join().unwrap()).sum();
    let stats = runtime.stats();
    assert!(
        stats.demoted > 0,
        "the flooding tenant must exceed its token bucket"
    );
    assert_eq!(stats.throttled, 0, "demote policy never rejects outright");
    assert_eq!(
        stats.level(ServiceLevel::Standard).shed,
        0,
        "only BestEffort (demoted flood) is ever shed"
    );
    // Five submitters race into a 2-deep queue: the 12000-request flood
    // must have hit saturation somewhere (sheds and/or drops).
    assert!(flood_shed > 0 || stats.shed() > 0 || stats.dropped > 0);
    runtime.shutdown();
}

#[test]
fn reject_policy_throttles_over_rate_tenants() {
    let (registry, config, queries) = fixture(26);
    let qos = QosConfig::default().with_fairness(TenantPolicy::reject(0.0, 2.0));
    let runtime = ScoringRuntime::new(
        registry,
        "ppm",
        RuntimeConfig::deterministic(&config).with_qos(qos),
    );
    let tenant = TenantId(9);
    for _ in 0..2 {
        runtime
            .submit(ScoreRequest::from_plan(&queries[0].plan).with_tenant(tenant))
            .unwrap();
    }
    match runtime.submit(ScoreRequest::from_plan(&queries[0].plan).with_tenant(tenant)) {
        Err(ServeError::Throttled(t)) => assert_eq!(t, tenant),
        other => panic!("expected Throttled, got {other:?}"),
    }
    // Untracked (tenant-less) requests are exempt from policing.
    runtime.score(&queries[1].plan).unwrap();
    let stats = runtime.stats();
    assert_eq!(stats.throttled, 1);
    assert_eq!(stats.demoted, 0);
}

#[test]
fn detached_submission_redeems_tickets_with_latency_and_quotes() {
    let (registry, config, queries) = fixture(28);
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::from_auto_executor(&config).with_workers(1),
    );
    runtime.warm().unwrap();
    // Fire a burst without waiting, then redeem every ticket.
    let tickets: Vec<_> = (0..12)
        .map(|i| {
            runtime
                .submit_detached(
                    ScoreRequest::from_plan(&queries[i % queries.len()].plan)
                        .with_level(ServiceLevel::Interactive),
                )
                .unwrap()
        })
        .collect();
    for ticket in tickets {
        assert_eq!(ticket.level(), ServiceLevel::Interactive);
        let outcome = ticket.wait().unwrap();
        assert!((1..=48).contains(&outcome.request.executors));
        assert!(outcome.latency > Duration::ZERO);
        assert!(outcome.quote().is_some());
    }
    let stats = runtime.stats();
    assert_eq!(stats.completed, 12);
    // Detached submissions never take the inline shortcut.
    assert_eq!(stats.inline_scored, 0);
    assert_eq!(stats.level(ServiceLevel::Interactive).completed, 12);

    // The try_ variant saturates instead of blocking: with no workers and a
    // tiny queue, a third Standard detached submission must drop.
    let runtime = ScoringRuntime::new(
        registry,
        "ppm",
        RuntimeConfig::deterministic(&config)
            .with_workers(0)
            .with_queue_capacity(2),
    );
    let _a = runtime
        .try_submit_detached(ScoreRequest::from_plan(&queries[0].plan))
        .unwrap();
    let _b = runtime
        .try_submit_detached(ScoreRequest::from_plan(&queries[1].plan))
        .unwrap();
    assert!(matches!(
        runtime.try_submit_detached(ScoreRequest::from_plan(&queries[2].plan)),
        Err(ServeError::Saturated)
    ));
    assert_eq!(runtime.stats().dropped, 1);
    runtime.shutdown();
}

#[test]
fn shutdown_fails_requests_parked_across_all_priority_levels() {
    let (registry, config, queries) = fixture(27);
    let runtime = Arc::new(ScoringRuntime::new(
        registry,
        "ppm",
        RuntimeConfig::deterministic(&config)
            .with_workers(0)
            .with_queue_capacity(16),
    ));
    let parked: Vec<_> = [
        ServiceLevel::Interactive,
        ServiceLevel::Standard,
        ServiceLevel::BestEffort,
        ServiceLevel::Interactive,
        ServiceLevel::BestEffort,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, level)| {
        let runtime = Arc::clone(&runtime);
        let plan = queries[i % queries.len()].plan.clone();
        std::thread::spawn(move || runtime.submit(ScoreRequest::from_plan(&plan).with_level(level)))
    })
    .collect();
    while runtime.queue_depth() < parked.len() {
        std::thread::yield_now();
    }
    runtime.shutdown();
    for handle in parked {
        assert!(matches!(handle.join().unwrap(), Err(ServeError::ShutDown)));
    }
    assert_eq!(runtime.queue_depth(), 0);
    // Every abandoned request is accounted as an error, none as completed.
    let stats = runtime.stats();
    assert_eq!(stats.errors, 5);
    assert_eq!(stats.completed, 0);
}
