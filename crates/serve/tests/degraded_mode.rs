//! Integration tests for the degraded-mode serving path: the circuit
//! breaker trips to the heuristic fallback under model outage, recovers
//! through a half-open probe once the model is healthy, and the
//! `wait_timeout` ticket variant survives shutdown with an outstanding
//! ticket.

use std::sync::Arc;
use std::time::Duration;

use ae_serve::{BreakerConfig, RuntimeConfig, ScoreRequest, ScoringRuntime, ServeError};
use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

fn scoring_queries() -> Vec<QueryInstance> {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    ["q3", "q19", "q55", "q68", "q79", "q94"]
        .iter()
        .map(|n| generator.instance(n))
        .collect()
}

fn trained_portable() -> ae_ml::portable::PortableModel {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<QueryInstance> = ["q1", "q5", "q12", "q42", "q69", "q94"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 10;
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&training, &config).unwrap();
    model.to_portable("ppm").unwrap()
}

fn trained_registry() -> Arc<ModelRegistry> {
    let registry = Arc::new(ModelRegistry::in_memory());
    registry.register("ppm", trained_portable()).unwrap();
    registry
}

fn breaker_config() -> BreakerConfig {
    BreakerConfig::default()
        .with_failure_threshold(2)
        .with_cooldown(Duration::from_millis(10))
}

#[test]
fn breaker_trips_to_heuristic_fallback_on_model_outage() {
    // No model is ever registered: every model-path attempt fails.
    let registry = Arc::new(ModelRegistry::in_memory());
    let config = AutoExecutorConfig::default();
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "missing",
        RuntimeConfig::deterministic(&config).with_breaker(breaker_config()),
    );
    let queries = scoring_queries();
    for query in &queries {
        let outcome = runtime
            .submit(ScoreRequest::from_plan(&query.plan))
            .expect("degraded mode must answer despite the missing model");
        assert!(outcome.degraded, "fallback answers must be marked degraded");
        let executors = outcome.request.executors;
        assert!((1..=48).contains(&executors));
        assert!(outcome
            .request
            .predicted_curve
            .iter()
            .all(|&(_, t)| t.is_finite() && t > 0.0));
    }
    let stats = runtime.stats();
    assert_eq!(stats.completed, queries.len() as u64);
    assert_eq!(stats.degraded, queries.len() as u64);
    assert!(
        stats.breaker_trips >= 1,
        "the breaker must have tripped: {stats:?}"
    );
    // Once open, the model path is skipped: trips stop accumulating per
    // request (the first two failures trip it once; later requests ride
    // the open breaker or a failing probe).
    assert!(stats.breaker_trips < stats.completed);
}

#[test]
fn without_breaker_model_errors_surface_unchanged() {
    let registry = Arc::new(ModelRegistry::in_memory());
    let config = AutoExecutorConfig::default();
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "missing",
        RuntimeConfig::deterministic(&config),
    );
    let query = &scoring_queries()[0];
    match runtime.submit(ScoreRequest::from_plan(&query.plan)) {
        Err(ServeError::Model(_)) => {}
        other => panic!("expected a Model error, got {other:?}"),
    }
    let stats = runtime.stats();
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.breaker_trips, 0);
}

#[test]
fn breaker_recovers_after_model_registration() {
    // Start broken (no model), trip the breaker, then register the model
    // and wait out the cooldown: the half-open probe must succeed and
    // subsequent answers must come from the model (not degraded).
    let registry = Arc::new(ModelRegistry::in_memory());
    let config = AutoExecutorConfig::default();
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(&config).with_breaker(breaker_config()),
    );
    let queries = scoring_queries();
    for query in queries.iter().take(3) {
        let outcome = runtime
            .submit(ScoreRequest::from_plan(&query.plan))
            .unwrap();
        assert!(outcome.degraded);
    }
    let tripped = runtime.stats();
    assert!(tripped.breaker_trips >= 1);
    assert_eq!(tripped.degraded, 3);

    // Heal the dependency and let the cooldown elapse.
    registry.register("ppm", trained_portable()).unwrap();
    std::thread::sleep(Duration::from_millis(20));

    let recovered = runtime
        .submit(ScoreRequest::from_plan(&queries[3].plan))
        .unwrap();
    assert!(
        !recovered.degraded,
        "the half-open probe must restore the model path"
    );
    for query in queries.iter().skip(4) {
        let outcome = runtime
            .submit(ScoreRequest::from_plan(&query.plan))
            .unwrap();
        assert!(
            !outcome.degraded,
            "recovered runtime must stay on the model"
        );
    }
    let healthy_stats = runtime.stats();
    assert_eq!(healthy_stats.degraded, 3, "no new degraded answers");
    assert_eq!(healthy_stats.completed, queries.len() as u64);
}

#[test]
fn wait_timeout_returns_ticket_and_survives_shutdown() {
    // Zero workers: a detached submission is admitted but never drained,
    // so wait_timeout must time out and hand the ticket back; shutdown
    // then fails the stranded request with ShutDown.
    let registry = trained_registry();
    let config = AutoExecutorConfig::default();
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(&config).with_workers(0),
    );
    let query = &scoring_queries()[0];
    let ticket = runtime
        .submit_detached(ScoreRequest::from_plan(&query.plan))
        .unwrap();
    let ticket = match ticket.wait_timeout(Duration::from_millis(20)) {
        Err(ticket) => ticket,
        Ok(result) => panic!("nothing drains a 0-worker queue, got {result:?}"),
    };
    runtime.shutdown();
    match ticket.wait() {
        Err(ServeError::ShutDown) => {}
        other => panic!("expected ShutDown for the stranded ticket, got {other:?}"),
    }
}

#[test]
fn wait_timeout_redeems_a_completed_ticket() {
    let registry = trained_registry();
    let config = AutoExecutorConfig::default();
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(&config),
    );
    let query = &scoring_queries()[0];
    let ticket = runtime
        .submit_detached(ScoreRequest::from_plan(&query.plan))
        .unwrap();
    // Generous timeout: the single worker scores it almost immediately.
    let outcome = ticket
        .wait_timeout(Duration::from_secs(30))
        .expect("must complete well within the timeout")
        .expect("scoring must succeed");
    assert!(!outcome.degraded);
    assert!((1..=48).contains(&outcome.request.executors));
}
