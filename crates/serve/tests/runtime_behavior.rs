//! Behavioural tests of the serving runtime: the inline idle shortcut,
//! backpressure and saturation, shutdown semantics, missing models, and
//! RCU-style pickup of model re-registration.

use std::sync::Arc;
use std::time::Duration;

use ae_serve::{RuntimeConfig, ScoringRuntime, ServeError};
use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

fn fixture(seed: u64) -> (Arc<ModelRegistry>, AutoExecutorConfig, Vec<QueryInstance>) {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<QueryInstance> = ["q3", "q19", "q55", "q68", "q79", "q94"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 8;
    config.forest.seed = seed;
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&training, &config).unwrap();
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("ppm", model.to_portable("ppm").unwrap())
        .unwrap();
    let scoring = ["q7", "q11", "q27"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    (registry, config, scoring)
}

#[test]
fn idle_runtime_scores_inline() {
    let (registry, config, queries) = fixture(1);
    let runtime = ScoringRuntime::new(registry, "ppm", RuntimeConfig::from_auto_executor(&config));
    runtime.warm().unwrap();
    for query in &queries {
        let request = runtime.score(&query.plan).unwrap();
        assert!((1..=48).contains(&request.executors));
    }
    let stats = runtime.stats();
    // A single uncontended submitter always finds the queue empty.
    assert_eq!(stats.inline_scored, queries.len() as u64);
    assert_eq!(stats.batches, 0);
}

#[test]
fn missing_model_surfaces_as_model_error() {
    let registry = Arc::new(ModelRegistry::in_memory());
    let config = AutoExecutorConfig::default();
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "absent",
        RuntimeConfig::deterministic(&config),
    );
    let plan = WorkloadGenerator::new(ScaleFactor::SF10)
        .instance("q7")
        .plan;
    match runtime.score(&plan) {
        Err(ServeError::Model(msg)) => assert!(msg.contains("absent")),
        other => panic!("expected a model error, got {other:?}"),
    }
    assert_eq!(runtime.stats().errors, 1);
}

#[test]
fn saturation_rejects_and_counts_dropped_requests() {
    let (registry, config, queries) = fixture(2);
    // No workers and no inline shortcut: requests queue and stay queued, so
    // the admission bound is exercised deterministically.
    let runtime = Arc::new(ScoringRuntime::new(
        registry,
        "ppm",
        RuntimeConfig::deterministic(&config)
            .with_workers(0)
            .with_queue_capacity(2),
    ));
    let blocked: Vec<_> = (0..2)
        .map(|_| {
            let runtime = Arc::clone(&runtime);
            let plan = queries[0].plan.clone();
            std::thread::spawn(move || runtime.score(&plan))
        })
        .collect();
    // Wait until both requests sit in the queue.
    while runtime.queue_depth() < 2 {
        std::thread::yield_now();
    }
    assert!(matches!(
        runtime.try_score(&queries[1].plan),
        Err(ServeError::Saturated)
    ));
    assert_eq!(runtime.stats().dropped, 1);

    // Shutdown (on the shared handle) fails the parked requests instead of
    // leaking them.
    runtime.shutdown();
    for handle in blocked {
        assert!(matches!(handle.join().unwrap(), Err(ServeError::ShutDown)));
    }
}

#[test]
fn malformed_feature_width_is_rejected_up_front() {
    let (registry, config, queries) = fixture(6);
    let runtime = ScoringRuntime::new(registry, "ppm", RuntimeConfig::deterministic(&config));
    // Wrong-width rows must be rejected at submission (both entry points),
    // not panic inside a worker batch.
    for bad in [vec![], vec![1.0; 3]] {
        assert!(matches!(
            runtime.score_features(bad.clone()),
            Err(ServeError::Scoring(_))
        ));
        assert!(matches!(
            runtime.try_score_features(bad),
            Err(ServeError::Scoring(_))
        ));
    }
    // The runtime stays fully operational afterwards.
    assert!(runtime.score(&queries[0].plan).is_ok());
}

#[test]
fn scoring_after_shutdown_fails_cleanly() {
    let (registry, config, queries) = fixture(3);
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(&config),
    );
    runtime.score(&queries[0].plan).unwrap();
    // Shutdown consumes the runtime; re-create and drop to exercise Drop.
    runtime.shutdown();
    let runtime = ScoringRuntime::new(registry, "ppm", RuntimeConfig::deterministic(&config));
    drop(runtime);
}

#[test]
fn reregistration_is_picked_up_without_restart() {
    let (registry, config, queries) = fixture(4);
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(&config),
    );
    let before = runtime.score(&queries[0].plan).unwrap();

    // Re-register a model trained with a different seed (an RCU swap in the
    // registry); the runtime must serve the new model on the next request.
    let (registry2, _, _) = fixture(99);
    let replacement = registry2.load("ppm").unwrap();
    registry.register("ppm", (*replacement).clone()).unwrap();
    let after = runtime.score(&queries[0].plan).unwrap();

    assert_ne!(
        before.predicted_ppm.parameters(),
        after.predicted_ppm.parameters(),
        "a different forest must predict different parameters"
    );
}

#[test]
fn batch_window_forms_batches_under_load() {
    let (registry, config, queries) = fixture(5);
    let runtime = Arc::new(ScoringRuntime::new(
        registry,
        "ppm",
        RuntimeConfig::from_auto_executor(&config)
            .with_workers(1)
            .with_max_batch(16)
            .with_batch_window(Duration::from_millis(2))
            .with_inline_when_idle(false),
    ));
    runtime.warm().unwrap();
    let handles: Vec<_> = (0..6)
        .map(|t| {
            let runtime = Arc::clone(&runtime);
            let plan = queries[t % queries.len()].plan.clone();
            std::thread::spawn(move || {
                let mut served = 0usize;
                for _ in 0..10 {
                    runtime.score(&plan).unwrap();
                    served += 1;
                }
                served
            })
        })
        .collect();
    let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert_eq!(total, 60);
    let stats = runtime.stats();
    assert_eq!(stats.completed, 60);
    assert_eq!(stats.errors, 0);
    // With 6 competing submitters and a batch window, at least one batch
    // must have scored more than one request.
    assert!(
        stats.mean_batch_size() > 1.0,
        "expected micro-batching, histogram {:?}",
        stats.batch_size_histogram
    );
}
