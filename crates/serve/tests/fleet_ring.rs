//! Property tests for the fleet's consistent-hash ring (public
//! [`ae_serve::HashRing`] API):
//!
//! * every tenant maps to **exactly one** shard, and that shard is a
//!   member of the ring,
//! * the mapping is a pure function of `(seed, shard set)` — rebuilt
//!   rings agree key for key,
//! * **removal stability**: deleting one shard moves only the keys that
//!   were on the removed shard; every other key stays put, and
//! * untenanted routing by feature content is value-stable.

use ae_serve::{HashRing, TenantId};

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

    /// Every tenant maps to exactly one shard, the same shard on every
    /// call and on an independently rebuilt identical ring, and the shard
    /// is one of the ring's members.
    #[test]
    fn every_tenant_maps_to_exactly_one_member_shard(
        seed in 0u64..u64::MAX,
        shards in 1usize..12,
        tenant in 0u64..u64::MAX,
    ) {
        let ring = HashRing::new(seed, 64, shards);
        let rebuilt = HashRing::new(seed, 64, shards);
        let tenant = TenantId(tenant);
        let shard = ring.shard_for_tenant(tenant);
        proptest::prop_assert!(ring.shard_ids().contains(&shard));
        proptest::prop_assert_eq!(shard, ring.shard_for_tenant(tenant));
        proptest::prop_assert_eq!(shard, rebuilt.shard_for_tenant(tenant));
    }

    /// Removal stability: removing one shard from the ring moves only the
    /// keys that lived on it. Every key previously on a surviving shard
    /// routes to the same shard after the removal.
    #[test]
    fn removing_a_shard_moves_only_its_own_keys(
        seed in 0u64..u64::MAX,
        shards in 2usize..10,
        removed in 0usize..10,
    ) {
        proptest::prop_assume!(removed < shards);
        let removed = removed as u16;
        let full: Vec<u16> = (0..shards as u16).collect();
        let survivors: Vec<u16> = full.iter().copied().filter(|&s| s != removed).collect();
        let before = HashRing::with_shard_ids(seed, 64, &full);
        let after = HashRing::with_shard_ids(seed, 64, &survivors);
        let mut moved = 0usize;
        for tenant in 0..512u64 {
            let tenant = TenantId(tenant);
            let was = before.shard_for_tenant(tenant);
            let now = after.shard_for_tenant(tenant);
            if was == removed {
                moved += 1;
                proptest::prop_assert!(survivors.contains(&now));
            } else {
                proptest::prop_assert!(
                    was == now,
                    "a surviving shard's key moved: {} -> {}",
                    was,
                    now
                );
            }
        }
        // Sanity: with 512 tenants and <=10 shards the removed shard owned
        // at least one key, so the loop actually exercised reassignment.
        proptest::prop_assert!(moved > 0);
    }

    /// Quarantine routing: `without_shard` (the failover reroute) is
    /// deterministic — two independent removals agree key for key — and
    /// hits only survivors: no key ever routes to the quarantined shard,
    /// and keys that weren't on it stay exactly where they were.
    #[test]
    fn routing_with_one_shard_quarantined_is_deterministic_and_hits_only_survivors(
        seed in 0u64..u64::MAX,
        shards in 2usize..10,
        quarantined in 0usize..10,
    ) {
        proptest::prop_assume!(quarantined < shards);
        let quarantined = quarantined as u16;
        let full = HashRing::new(seed, 64, shards);
        let degraded = full.without_shard(quarantined);
        let again = full.without_shard(quarantined);
        proptest::prop_assert!(!degraded.shard_ids().contains(&quarantined));
        proptest::prop_assert_eq!(degraded.num_shards(), shards - 1);
        for tenant in 0..512u64 {
            let tenant = TenantId(tenant);
            let now = degraded.shard_for_tenant(tenant);
            // Deterministic: an independent removal routes identically.
            proptest::prop_assert_eq!(now, again.shard_for_tenant(tenant));
            // Only survivors: never the quarantined shard.
            proptest::prop_assert!(now != quarantined);
            proptest::prop_assert!(degraded.shard_ids().contains(&now));
            // Stability: keys not on the quarantined shard stay put.
            let was = full.shard_for_tenant(tenant);
            if was != quarantined {
                proptest::prop_assert_eq!(was, now);
            }
        }
    }

    /// Raw-key routing agrees with the successor rule everywhere on the
    /// ring, including wraparound: the chosen shard owns the first vnode
    /// point at or after the key.
    #[test]
    fn raw_keys_route_to_the_successor_vnode(
        seed in 0u64..u64::MAX,
        shards in 1usize..8,
        key in 0u64..u64::MAX,
    ) {
        let ring = HashRing::new(seed, 32, shards);
        let shard = ring.shard_for_key(key);
        proptest::prop_assert!(ring.shard_ids().contains(&shard));
        proptest::prop_assert_eq!(shard, ring.shard_for_key(key));
    }

    /// Untenanted requests route by feature content: equal feature
    /// vectors always agree, on this ring and on a rebuilt one.
    #[test]
    fn feature_routing_is_content_stable(
        seed in 0u64..u64::MAX,
        shards in 1usize..8,
        features in proptest::prop::collection::vec(-1.0e6f64..1.0e6, 1..16),
    ) {
        let ring = HashRing::new(seed, 64, shards);
        let rebuilt = HashRing::new(seed, 64, shards);
        let copy = features.clone();
        let key = HashRing::key_for_features(&features);
        proptest::prop_assert_eq!(key, HashRing::key_for_features(&copy));
        proptest::prop_assert_eq!(
            ring.shard_for_key(key),
            rebuilt.shard_for_key(key)
        );
    }
}

/// Deterministic spot-check outside proptest: a fixed seed gives every
/// shard of an 8-shard ring a non-trivial share of 4096 tenants (vnode
/// spreading works), and a reseed redistributes.
#[test]
fn fixed_seed_spreads_tenants_across_all_shards() {
    let ring = HashRing::new(0xFEED, 128, 8);
    let reseeded = HashRing::new(0xBEEF, 128, 8);
    let mut counts = [0usize; 8];
    let mut moved = 0usize;
    for tenant in 0..4096u64 {
        let tenant = TenantId(tenant);
        let shard = ring.shard_for_tenant(tenant);
        counts[shard as usize] += 1;
        if reseeded.shard_for_tenant(tenant) != shard {
            moved += 1;
        }
    }
    for (shard, &count) in counts.iter().enumerate() {
        assert!(
            count > 4096 / 8 / 4,
            "shard {shard} starved: {count} of 4096 tenants"
        );
    }
    assert!(moved > 0, "reseeding must redistribute tenants");
}
