//! Regression tests pinning the serving runtime against the sequential
//! `AutoExecutorRule`:
//!
//! * deterministic mode produces **bit-identical** `ResourceRequest`s to
//!   the sequential rule over the synthetic suite, and
//! * N threads × M queries through one concurrent runtime produce the same
//!   per-query results as the sequential rule (determinism under
//!   concurrency).

use std::collections::HashMap;
use std::sync::Arc;

use ae_serve::{RuntimeConfig, ScoreRequest, ScoringRuntime, ServiceLevel};
use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::optimizer::ResourceRequest;
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

fn fixture() -> (Arc<ModelRegistry>, AutoExecutorConfig, Vec<QueryInstance>) {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<QueryInstance> = ["q1", "q5", "q12", "q42", "q69", "q94", "q23b", "q77"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 12;
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&training, &config).unwrap();
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("ppm", model.to_portable("ppm").unwrap())
        .unwrap();
    // A disjoint scoring set, large enough to form real batches.
    let scoring: Vec<QueryInstance> = [
        "q3", "q7", "q11", "q19", "q27", "q34", "q39b", "q46", "q55", "q59", "q64", "q68", "q72",
        "q79", "q88", "q96", "q14b", "q2", "q31", "q50", "q65", "q80", "q93", "q99",
    ]
    .iter()
    .map(|n| generator.instance(n))
    .collect();
    (registry, config, scoring)
}

/// Scores every query through the pre-PR-equivalent sequential path: an
/// `Optimizer` with the `AutoExecutorRule` registered last, one query at a
/// time.
fn sequential_requests(
    registry: &Arc<ModelRegistry>,
    config: &AutoExecutorConfig,
    queries: &[QueryInstance],
) -> Vec<ResourceRequest> {
    let rule = AutoExecutorRule::from_config(Arc::clone(registry), "ppm", config);
    let optimizer = Optimizer::with_default_rules().with_rule(Box::new(rule));
    queries
        .iter()
        .map(|q| {
            optimizer
                .optimize(q.plan.clone())
                .unwrap()
                .resource_request
                .unwrap()
        })
        .collect()
}

/// Bit-level comparison of two resource requests (executor count, PPM
/// parameters, and every point of the predicted curve).
fn assert_bit_identical(name: &str, sequential: &ResourceRequest, served: &ResourceRequest) {
    assert_eq!(sequential.executors, served.executors, "{name}: executors");
    let seq_params: Vec<u64> = sequential
        .predicted_ppm
        .parameters()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let srv_params: Vec<u64> = served
        .predicted_ppm
        .parameters()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(seq_params, srv_params, "{name}: ppm parameters");
    let seq_curve: Vec<(usize, u64)> = sequential
        .predicted_curve
        .iter()
        .map(|&(n, t)| (n, t.to_bits()))
        .collect();
    let srv_curve: Vec<(usize, u64)> = served
        .predicted_curve
        .iter()
        .map(|&(n, t)| (n, t.to_bits()))
        .collect();
    assert_eq!(seq_curve, srv_curve, "{name}: predicted curve");
}

#[test]
fn deterministic_mode_is_bit_identical_to_sequential_rule() {
    let (registry, config, queries) = fixture();
    let sequential = sequential_requests(&registry, &config, &queries);

    // The rule's optimizer pipeline applies CollapseProjects/CombineFilters
    // before the AutoExecutor rule; mirror it for the serving path, which
    // scores already-optimized plans.
    let rewriter = Optimizer::with_default_rules();
    let runtime = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(&config),
    );
    for (query, seq) in queries.iter().zip(&sequential) {
        let optimized = rewriter.optimize(query.plan.clone()).unwrap().plan;
        let served = runtime.score(&optimized).unwrap();
        assert_bit_identical(&query.name, seq, &served);
    }
    let stats = runtime.stats();
    assert_eq!(stats.completed, queries.len() as u64);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.errors, 0);
    // Deterministic mode routes everything through the single FIFO worker.
    assert_eq!(stats.inline_scored, 0);
    runtime.shutdown();
}

/// The QoS regression pin: uniform single-level traffic through the
/// priority queues — at *any* service level — must stay bit-identical to
/// the sequential rule (and therefore to the PR 2/3 serving output).
/// Service levels schedule; they never touch answers.
#[test]
fn single_level_deterministic_traffic_is_bit_identical_at_every_level() {
    let (registry, config, queries) = fixture();
    let sequential = sequential_requests(&registry, &config, &queries);
    let rewriter = Optimizer::with_default_rules();
    let optimized: Vec<ae_engine::plan::QueryPlan> = queries
        .iter()
        .map(|q| rewriter.optimize(q.plan.clone()).unwrap().plan)
        .collect();
    for level in ServiceLevel::ALL {
        let runtime = ScoringRuntime::new(
            Arc::clone(&registry),
            "ppm",
            RuntimeConfig::deterministic(&config),
        );
        for ((query, seq), plan) in queries.iter().zip(&sequential).zip(&optimized) {
            let outcome = runtime
                .submit(ScoreRequest::from_plan(plan).with_level(level))
                .unwrap();
            assert_eq!(outcome.level, level);
            assert_bit_identical(&query.name, seq, &outcome.request);
        }
        let stats = runtime.stats();
        assert_eq!(stats.completed, queries.len() as u64);
        assert_eq!(stats.level(level).completed, queries.len() as u64);
        assert_eq!(stats.shed(), 0);
        runtime.shutdown();
    }
}

#[test]
fn concurrent_scoring_matches_sequential_results() {
    let (registry, config, queries) = fixture();
    let sequential = sequential_requests(&registry, &config, &queries);
    let expected: HashMap<String, ResourceRequest> = queries
        .iter()
        .zip(&sequential)
        .map(|(q, r)| (q.name.clone(), r.clone()))
        .collect();

    let rewriter = Optimizer::with_default_rules();
    let optimized: Vec<(String, ae_engine::plan::QueryPlan)> = queries
        .iter()
        .map(|q| {
            (
                q.name.clone(),
                rewriter.optimize(q.plan.clone()).unwrap().plan,
            )
        })
        .collect();

    // A deliberately batching-heavy configuration: 2 workers, small window,
    // inline shortcut enabled (both paths must agree anyway).
    let runtime = Arc::new(ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::from_auto_executor(&config)
            .with_workers(2)
            .with_max_batch(8),
    ));
    runtime.warm().unwrap();

    const THREADS: usize = 8;
    const ROUNDS: usize = 3;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let runtime = Arc::clone(&runtime);
            let optimized = optimized.clone();
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for round in 0..ROUNDS {
                    // Each thread walks the suite from a different offset so
                    // batches mix queries.
                    for i in 0..optimized.len() {
                        let (name, plan) = &optimized[(i + t * 3 + round) % optimized.len()];
                        let request = runtime.score(plan).unwrap();
                        results.push((name.clone(), request));
                    }
                }
                results
            })
        })
        .collect();

    let mut total = 0usize;
    for handle in handles {
        for (name, served) in handle.join().unwrap() {
            assert_bit_identical(&name, &expected[&name], &served);
            total += 1;
        }
    }
    assert_eq!(total, THREADS * ROUNDS * optimized.len());

    let stats = runtime.stats();
    assert_eq!(stats.completed, total as u64);
    assert_eq!(stats.dropped, 0);
    assert_eq!(stats.errors, 0);
    assert_eq!(
        stats.inline_scored + stats.batched(),
        stats.completed,
        "every request is either inline or batched"
    );
}
