//! Fleet determinism suite:
//!
//! * same seed + same shard count ⇒ identical per-tenant routing across
//!   fleet instances,
//! * a 1-shard fleet in deterministic mode is **bit-identical** to a bare
//!   `ScoringRuntime` (scores *and* counters),
//! * deterministic-mode scores are bit-identical to the sequential rule
//!   at every shard count (routing never changes answers), and
//! * N threads × M queries through a multi-shard fleet produce the same
//!   per-query result set as the sequential rule, with per-shard
//!   completion counts exactly matching the router's placement.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use ae_serve::{
    FleetConfig, RuntimeConfig, ScoreRequest, ScoringRuntime, ServiceLevel, ShardedRuntime,
    TenantId,
};
use ae_workload::{QueryInstance, ScaleFactor, WorkloadGenerator};
use autoexecutor::optimizer::ResourceRequest;
use autoexecutor::prelude::*;
use autoexecutor::ModelRegistry;

fn fixture() -> (Arc<ModelRegistry>, AutoExecutorConfig, Vec<QueryInstance>) {
    let generator = WorkloadGenerator::new(ScaleFactor::SF10);
    let training: Vec<QueryInstance> = ["q1", "q5", "q12", "q42", "q69", "q94", "q23b", "q77"]
        .iter()
        .map(|n| generator.instance(n))
        .collect();
    let mut config = AutoExecutorConfig::default();
    config.forest.n_estimators = 12;
    config.training_run.noise_cv = 0.0;
    let (_, model) = train_from_workload(&training, &config).unwrap();
    let registry = Arc::new(ModelRegistry::in_memory());
    registry
        .register("ppm", model.to_portable("ppm").unwrap())
        .unwrap();
    let scoring: Vec<QueryInstance> = [
        "q3", "q7", "q11", "q19", "q27", "q34", "q39b", "q46", "q55", "q59", "q64", "q68", "q72",
        "q79", "q88", "q96", "q14b", "q2", "q31", "q50", "q65", "q80", "q93", "q99",
    ]
    .iter()
    .map(|n| generator.instance(n))
    .collect();
    (registry, config, scoring)
}

fn sequential_requests(
    registry: &Arc<ModelRegistry>,
    config: &AutoExecutorConfig,
    queries: &[QueryInstance],
) -> Vec<ResourceRequest> {
    let rule = AutoExecutorRule::from_config(Arc::clone(registry), "ppm", config);
    let optimizer = Optimizer::with_default_rules().with_rule(Box::new(rule));
    queries
        .iter()
        .map(|q| {
            optimizer
                .optimize(q.plan.clone())
                .unwrap()
                .resource_request
                .unwrap()
        })
        .collect()
}

fn assert_bit_identical(name: &str, sequential: &ResourceRequest, served: &ResourceRequest) {
    assert_eq!(sequential.executors, served.executors, "{name}: executors");
    let seq_params: Vec<u64> = sequential
        .predicted_ppm
        .parameters()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let srv_params: Vec<u64> = served
        .predicted_ppm
        .parameters()
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(seq_params, srv_params, "{name}: ppm parameters");
    let seq_curve: Vec<(usize, u64)> = sequential
        .predicted_curve
        .iter()
        .map(|&(n, t)| (n, t.to_bits()))
        .collect();
    let srv_curve: Vec<(usize, u64)> = served
        .predicted_curve
        .iter()
        .map(|&(n, t)| (n, t.to_bits()))
        .collect();
    assert_eq!(seq_curve, srv_curve, "{name}: predicted curve");
}

/// Same seed + same shard count ⇒ the same tenant→shard map, across fleet
/// instances and independent of everything else in the config; a
/// different seed redistributes.
#[test]
fn routing_is_identical_across_fleet_instances_with_the_same_seed() {
    let config = AutoExecutorConfig::default();
    let registry = Arc::new(ModelRegistry::in_memory());
    let fleet_a = ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::deterministic(4, &config).with_ring_seed(7),
    );
    let fleet_b = ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        // Different runtime template, same ring parameters: placement
        // must not depend on worker count or batching.
        FleetConfig::new(
            4,
            RuntimeConfig::from_auto_executor(&config).with_workers(3),
        )
        .with_ring_seed(7),
    );
    let reseeded = ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::deterministic(4, &config).with_ring_seed(8),
    );
    let mut moved = 0usize;
    for tenant in 0..2000u64 {
        let tenant = TenantId(tenant);
        let a = fleet_a.shard_for_tenant(tenant);
        assert_eq!(a, fleet_b.shard_for_tenant(tenant));
        assert!(a < 4);
        if a != reseeded.shard_for_tenant(tenant) {
            moved += 1;
        }
        // `route` agrees with `shard_for_tenant` for tenanted requests.
        let request = ScoreRequest::from_features(vec![0.0; 8]).with_tenant(tenant);
        assert_eq!(fleet_a.route(&request), a);
    }
    assert!(moved > 0, "a different seed must redistribute some tenants");
    fleet_a.shutdown();
    fleet_b.shutdown();
    reseeded.shutdown();
}

/// The single-shard pin: a 1-shard deterministic fleet is the bare
/// deterministic `ScoringRuntime`, bit for bit — same scores, same
/// counters, no steal activity.
#[test]
fn one_shard_deterministic_fleet_is_bit_identical_to_bare_runtime() {
    let (registry, config, queries) = fixture();
    let rewriter = Optimizer::with_default_rules();
    let optimized: Vec<ae_engine::plan::QueryPlan> = queries
        .iter()
        .map(|q| rewriter.optimize(q.plan.clone()).unwrap().plan)
        .collect();

    let bare = ScoringRuntime::new(
        Arc::clone(&registry),
        "ppm",
        RuntimeConfig::deterministic(&config),
    );
    let fleet = ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::deterministic(1, &config),
    );
    assert_eq!(fleet.num_shards(), 1);
    // A generous deadline budget keeps `deadline_misses` deterministically
    // zero, so the stats comparison below is exact even on a loaded host.
    let budget = Duration::from_secs(60);
    for (query, plan) in queries.iter().zip(&optimized) {
        let tenant = TenantId(query.name.len() as u64);
        let from_bare = bare
            .submit(
                ScoreRequest::from_plan(plan)
                    .with_tenant(tenant)
                    .with_deadline_budget(budget),
            )
            .unwrap();
        let from_fleet = fleet
            .submit(
                ScoreRequest::from_plan(plan)
                    .with_tenant(tenant)
                    .with_deadline_budget(budget),
            )
            .unwrap();
        assert_bit_identical(&query.name, &from_bare.request, &from_fleet.request);
        assert_eq!(from_bare.level, from_fleet.level);
        assert!(!from_bare.missed_deadline);
        assert!(!from_fleet.missed_deadline);
    }
    let bare_stats = bare.stats();
    let fleet_stats = fleet.stats();
    assert_eq!(fleet_stats.num_shards(), 1);
    // The shard's counters are the bare runtime's counters, field for
    // field, and the aggregate adds nothing.
    assert_eq!(*fleet_stats.shard(0), bare_stats);
    assert_eq!(fleet_stats.aggregate(), bare_stats);
    assert_eq!(fleet_stats.steal_ops, 0);
    assert_eq!(fleet_stats.stolen_requests, 0);
    fleet.shutdown();
    bare.shutdown();
}

/// Routing never changes answers: at every shard count, deterministic-mode
/// scores are bit-identical to the sequential rule, and per-shard
/// completion counts match the router's placement exactly.
#[test]
fn deterministic_scores_are_bit_identical_at_every_shard_count() {
    let (registry, config, queries) = fixture();
    let sequential = sequential_requests(&registry, &config, &queries);
    let rewriter = Optimizer::with_default_rules();
    let optimized: Vec<ae_engine::plan::QueryPlan> = queries
        .iter()
        .map(|q| rewriter.optimize(q.plan.clone()).unwrap().plan)
        .collect();
    for shards in [1usize, 2, 4] {
        let fleet = ShardedRuntime::new(
            Arc::clone(&registry),
            "ppm",
            FleetConfig::deterministic(shards, &config),
        );
        let mut routed = vec![0u64; shards];
        for ((query, seq), plan) in queries.iter().zip(&sequential).zip(&optimized) {
            let tenant = TenantId(fnv(&query.name));
            let request = ScoreRequest::from_plan(plan).with_tenant(tenant);
            routed[fleet.route(&request)] += 1;
            let outcome = fleet.submit(request).unwrap();
            assert_bit_identical(&query.name, seq, &outcome.request);
        }
        let stats = fleet.stats();
        let aggregate = stats.aggregate();
        assert_eq!(aggregate.completed, queries.len() as u64, "{shards} shards");
        assert_eq!(aggregate.errors, 0);
        assert_eq!(aggregate.dropped, 0);
        for (shard, &expected) in routed.iter().enumerate() {
            assert_eq!(
                stats.shard(shard).completed,
                expected,
                "{shards} shards: shard {shard} completion count vs routing"
            );
        }
        fleet.shutdown();
    }
}

fn fnv(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in name.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// N threads × M queries through a 4-shard fleet: every served result is
/// bit-identical to the sequential rule (set equality keyed by query
/// name), totals are exact, and each shard completed exactly the requests
/// routed to it (stealing disabled so placement is the routing).
#[test]
fn concurrent_submitters_produce_the_sequential_result_set_across_shards() {
    let (registry, config, queries) = fixture();
    let sequential = sequential_requests(&registry, &config, &queries);
    let expected: HashMap<String, ResourceRequest> = queries
        .iter()
        .zip(&sequential)
        .map(|(q, r)| (q.name.clone(), r.clone()))
        .collect();
    let rewriter = Optimizer::with_default_rules();
    let optimized: Vec<(String, ae_engine::plan::QueryPlan)> = queries
        .iter()
        .map(|q| {
            (
                q.name.clone(),
                rewriter.optimize(q.plan.clone()).unwrap().plan,
            )
        })
        .collect();

    const SHARDS: usize = 4;
    let fleet = Arc::new(ShardedRuntime::new(
        Arc::clone(&registry),
        "ppm",
        FleetConfig::new(
            SHARDS,
            RuntimeConfig::from_auto_executor(&config)
                .with_workers(1)
                .with_max_batch(8),
        )
        .without_steal(),
    ));
    fleet.warm().unwrap();

    // Expected placement: tenant is derived from the query name, so every
    // thread submits query `q` under the same tenant.
    let mut routed: HashMap<usize, u64> = HashMap::new();
    for (name, _) in &optimized {
        let shard = fleet.shard_for_tenant(TenantId(fnv(name)));
        *routed.entry(shard).or_default() += 1;
    }

    const THREADS: usize = 6;
    const ROUNDS: usize = 2;
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let fleet = Arc::clone(&fleet);
            let optimized = optimized.clone();
            std::thread::spawn(move || {
                let mut results = Vec::new();
                for round in 0..ROUNDS {
                    for i in 0..optimized.len() {
                        let (name, plan) = &optimized[(i + t * 5 + round) % optimized.len()];
                        let outcome = fleet
                            .submit(
                                ScoreRequest::from_plan(plan)
                                    .with_tenant(TenantId(fnv(name)))
                                    .with_level(ServiceLevel::Standard),
                            )
                            .unwrap();
                        results.push((name.clone(), outcome.request));
                    }
                }
                results
            })
        })
        .collect();

    let mut total = 0usize;
    for handle in handles {
        for (name, served) in handle.join().unwrap() {
            assert_bit_identical(&name, &expected[&name], &served);
            total += 1;
        }
    }
    assert_eq!(total, THREADS * ROUNDS * optimized.len());

    let stats = fleet.stats();
    let aggregate = stats.aggregate();
    assert_eq!(aggregate.completed, total as u64);
    assert_eq!(aggregate.errors, 0);
    assert_eq!(aggregate.dropped, 0);
    assert_eq!(stats.stolen_requests, 0, "stealing was disabled");
    let repeats = (THREADS * ROUNDS) as u64;
    for shard in 0..SHARDS {
        let expected_count = routed.get(&shard).copied().unwrap_or(0) * repeats;
        assert_eq!(
            stats.shard(shard).completed,
            expected_count,
            "shard {shard} must complete exactly the requests routed to it"
        );
    }
    fleet.shutdown();
}
