//! Service levels, deadlines, pricing, and the priority admission queues.
//!
//! A serverless serving tier does not sell "a scoring call"; it sells a
//! *promise* — how fast the answer comes back and at what price (the
//! PixelsDB model of tiered SLAs). This module is that promise layer on top
//! of the batching runtime:
//!
//! * [`ServiceLevel`] — the three tiers (`Interactive` / `Standard` /
//!   `BestEffort`), each with a completion-deadline budget, a weighted
//!   share of the drain bandwidth, and a run-time target on the predicted
//!   performance curve that its price is derived from.
//! * [`QosConfig`] — the per-level budgets, drain weights, curve targets,
//!   and the optional per-tenant fairness policy.
//! * [`PriceQuote`] — the executor count, predicted run time, and
//!   executor-seconds price implied by scoring a query at a level, computed
//!   from the predicted [`PerfCurve`](ae_ppm::PerfCurve)-shaped curve via
//!   [`ae_ppm::selection`]'s deadline/pricing lookups.
//! * `PriorityQueues` (crate-internal) — the admission structure replacing
//!   the single FIFO: one earliest-deadline-first heap per level, drained
//!   by weighted round-robin across levels, with `BestEffort` shed first
//!   under saturation.
//!
//! Scheduling never changes *answers* (scoring stays a pure function of
//! features and model); levels only decide *when* a request is scored and
//! what its promise costs.

use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use ae_ppm::selection::{cheapest_config, cost_at, price_for_deadline};

use crate::tenant::TenantPolicy;

/// A tiered service level: the per-request price-performance promise.
///
/// Levels are ordered by priority: `BestEffort < Standard < Interactive`.
/// The level decides the request's completion-deadline budget, its weighted
/// share of the drain bandwidth, whether it may be shed under saturation
/// (only `BestEffort` is sheddable), and which point of the predicted
/// performance curve its price is quoted from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceLevel {
    /// Lowest tier: no run-time promise beyond completion, first to be shed
    /// under saturation, priced at the curve's cheapest operating point.
    BestEffort = 0,
    /// The default tier: a moderate deadline at a bounded-slowdown point of
    /// the curve.
    Standard = 1,
    /// Highest tier: tight deadline, near-fastest point of the curve,
    /// highest price.
    Interactive = 2,
}

impl ServiceLevel {
    /// Number of service levels.
    pub const COUNT: usize = 3;

    /// All levels in ascending priority order (`BestEffort` first).
    pub const ALL: [ServiceLevel; Self::COUNT] = [
        ServiceLevel::BestEffort,
        ServiceLevel::Standard,
        ServiceLevel::Interactive,
    ];

    /// Stable index of this level into per-level arrays
    /// (`BestEffort = 0`, `Standard = 1`, `Interactive = 2`).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The level for a per-level array index, if valid.
    pub fn from_index(index: usize) -> Option<ServiceLevel> {
        Self::ALL.get(index).copied()
    }

    /// Lower-case display name (`"interactive"` etc.).
    pub fn name(self) -> &'static str {
        match self {
            ServiceLevel::Interactive => "interactive",
            ServiceLevel::Standard => "standard",
            ServiceLevel::BestEffort => "best_effort",
        }
    }
}

impl std::fmt::Display for ServiceLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// QoS tuning of the serving tier: one entry per [`ServiceLevel`], indexed
/// by [`ServiceLevel::index`].
#[derive(Debug, Clone)]
pub struct QosConfig {
    /// Completion-deadline budget per level: a request admitted at `t` must
    /// be answered by `t + budget` or it counts as a deadline miss (the
    /// request is still answered — a miss is an SLA violation, not a
    /// failure).
    pub deadline_budgets: [Duration; ServiceLevel::COUNT],
    /// Weighted-round-robin drain weights: within one batch-formation
    /// round, each level contributes up to its weight before the next round
    /// starts, highest priority first. Zero weights are treated as 1.
    pub drain_weights: [u32; ServiceLevel::COUNT],
    /// Run-time target per level as a slowdown factor over the curve's
    /// minimum time (`1.05` = "within 5 % of the fastest possible run").
    /// `f64::INFINITY` means "no run-time promise" — the level is priced at
    /// the curve's cheapest operating point.
    pub slowdown_targets: [f64; ServiceLevel::COUNT],
    /// Protected `BestEffort` queue floor: shedding never shrinks the
    /// queued `BestEffort` class below this many requests (clamped to an
    /// eighth of the queue capacity, so small test queues shed freely).
    /// The floor guarantees best-effort traffic keeps *flowing* under
    /// sustained overload — admitted survivors drain at the WRR share
    /// instead of the class being evicted to extinction; overflow beyond
    /// the floor is shed, bounding best-effort queueing.
    pub best_effort_floor: usize,
    /// Price of one executor-second, the unit [`PriceQuote::price`] is
    /// denominated in.
    pub unit_price: f64,
    /// Per-tenant token-bucket fairness; `None` disables tenant policing
    /// (every request is admitted on level alone).
    pub fairness: Option<TenantPolicy>,
}

impl Default for QosConfig {
    fn default() -> Self {
        let mut deadline_budgets = [Duration::ZERO; ServiceLevel::COUNT];
        deadline_budgets[ServiceLevel::Interactive.index()] = Duration::from_millis(10);
        deadline_budgets[ServiceLevel::Standard.index()] = Duration::from_millis(50);
        deadline_budgets[ServiceLevel::BestEffort.index()] = Duration::from_millis(250);
        let mut drain_weights = [1u32; ServiceLevel::COUNT];
        drain_weights[ServiceLevel::Interactive.index()] = 8;
        drain_weights[ServiceLevel::Standard.index()] = 4;
        drain_weights[ServiceLevel::BestEffort.index()] = 1;
        let mut slowdown_targets = [f64::INFINITY; ServiceLevel::COUNT];
        slowdown_targets[ServiceLevel::Interactive.index()] = 1.05;
        slowdown_targets[ServiceLevel::Standard.index()] = 1.15;
        Self {
            deadline_budgets,
            drain_weights,
            slowdown_targets,
            best_effort_floor: 128,
            unit_price: 1.0,
            fairness: None,
        }
    }
}

impl QosConfig {
    /// The completion-deadline budget of one level.
    pub fn deadline_budget(&self, level: ServiceLevel) -> Duration {
        self.deadline_budgets[level.index()]
    }

    /// Overrides one level's completion-deadline budget.
    pub fn with_deadline_budget(mut self, level: ServiceLevel, budget: Duration) -> Self {
        self.deadline_budgets[level.index()] = budget;
        self
    }

    /// Overrides one level's drain weight.
    pub fn with_drain_weight(mut self, level: ServiceLevel, weight: u32) -> Self {
        self.drain_weights[level.index()] = weight;
        self
    }

    /// Overrides the protected `BestEffort` queue floor.
    pub fn with_best_effort_floor(mut self, floor: usize) -> Self {
        self.best_effort_floor = floor;
        self
    }

    /// Sets the per-tenant fairness policy.
    pub fn with_fairness(mut self, policy: TenantPolicy) -> Self {
        self.fairness = Some(policy);
        self
    }
}

/// The price-performance promise implied by scoring one query at one level:
/// which point of the predicted curve the level buys, and what it costs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PriceQuote {
    /// The level the quote is for.
    pub level: ServiceLevel,
    /// Executor count the level's run-time target selects on the curve.
    pub executors: usize,
    /// Predicted run time at that count (curve units, the paper's seconds).
    pub predicted_seconds: f64,
    /// Price: `executors × predicted_seconds × unit_price`.
    pub price: f64,
    /// Price relative to the curve's cheapest operating point (the
    /// `BestEffort` anchor) — the level's *derived* price multiplier.
    pub multiplier: f64,
    /// False when the level's run-time target is below the curve's minimum
    /// (the promise cannot be met at any count); the quote then falls back
    /// to the fastest point and callers should surface the shortfall.
    pub attainable: bool,
}

/// Quotes a level's price off a predicted `(n, t)` curve.
///
/// The level's slowdown target sets a run-time deadline `target × t_min`;
/// the quote buys the **cheapest** point honoring it
/// ([`price_for_deadline`]). An infinite target prices at the curve's
/// cheapest executor-seconds point ([`cheapest_config`]) — the best-effort
/// anchor every multiplier is relative to. An unattainable target
/// (possible only with a target below 1) falls back to the fastest sampled
/// point with `attainable = false`. Returns `None` only for an empty
/// curve.
pub fn price_quote(
    curve: &[(usize, f64)],
    level: ServiceLevel,
    cfg: &QosConfig,
) -> Option<PriceQuote> {
    price_quote_parts(curve, level, &cfg.slowdown_targets, cfg.unit_price)
}

/// [`price_quote`] from the raw pricing inputs (per-level slowdown targets
/// and unit price) instead of a full [`QosConfig`] — what
/// [`ScoreOutcome::quote`](crate::ScoreOutcome::quote) captures so quotes
/// can be derived lazily, off the scoring hot path.
pub fn price_quote_parts(
    curve: &[(usize, f64)],
    level: ServiceLevel,
    slowdown_targets: &[f64; ServiceLevel::COUNT],
    unit_price: f64,
) -> Option<PriceQuote> {
    let (cheapest_n, base_cost) = cheapest_config(curve)?;
    let target = slowdown_targets[level.index()];
    let ((executors, cost), attainable) = if target.is_infinite() {
        ((cheapest_n, base_cost), true)
    } else {
        let t_min = curve.iter().map(|&(_, t)| t).fold(f64::INFINITY, f64::min);
        match price_for_deadline(curve, t_min * target) {
            Some(point) => (point, true),
            // Fastest sampled point: the closest the curve gets.
            None => {
                let n = curve
                    .iter()
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|&(n, _)| n)?;
                ((n, cost_at(curve, n)?), false)
            }
        }
    };
    let predicted_seconds = curve
        .iter()
        .find(|&&(n, _)| n == executors)
        .map(|&(_, t)| t)?;
    Some(PriceQuote {
        level,
        executors,
        predicted_seconds,
        price: cost * unit_price,
        multiplier: if base_cost > 0.0 {
            cost / base_cost
        } else {
            1.0
        },
        attainable,
    })
}

/// One request admitted into the priority queues: the featurized plan, its
/// promise (level + absolute deadline), and its completion slot.
pub(crate) struct QueuedRequest {
    pub(crate) features: Vec<f64>,
    pub(crate) level: ServiceLevel,
    pub(crate) admitted_at: Instant,
    pub(crate) deadline: Instant,
    pub(crate) done: std::sync::Arc<crate::runtime::Completion>,
}

/// Heap entry ordering admitted requests earliest-deadline-first within a
/// level; the admission sequence number breaks deadline ties FIFO, which is
/// what keeps single-level equal-budget traffic exactly FIFO (the PR 2/3
/// deterministic-mode contract).
struct EdfEntry {
    deadline: Instant,
    seq: u64,
    request: QueuedRequest,
}

impl PartialEq for EdfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for EdfEntry {}
impl PartialOrd for EdfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EdfEntry {
    // Reversed so `BinaryHeap` (a max-heap) pops the earliest deadline;
    // among equal deadlines, the lowest sequence number (FIFO).
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Levels in drain-priority order (highest first).
const DRAIN_ORDER: [ServiceLevel; ServiceLevel::COUNT] = [
    ServiceLevel::Interactive,
    ServiceLevel::Standard,
    ServiceLevel::BestEffort,
];

/// The per-level admission queues: one EDF heap per [`ServiceLevel`],
/// drained weighted-round-robin across levels (highest priority first
/// within a round), with `BestEffort` shed first under saturation.
pub(crate) struct PriorityQueues {
    heaps: [BinaryHeap<EdfEntry>; ServiceLevel::COUNT],
    drain_weights: [u32; ServiceLevel::COUNT],
    /// Effective protected floor: `cfg.best_effort_floor` clamped to an
    /// eighth of the queue capacity.
    best_effort_floor: usize,
    /// WRR position: index into [`DRAIN_ORDER`] of the level currently
    /// being granted, and how many grants it has left this round. The
    /// cursor persists **across batches** — a `max_batch` smaller than one
    /// level's weight must not restart the round at `Interactive` every
    /// time, or lower levels would starve.
    cursor: usize,
    budget: u32,
    next_seq: u64,
    len: usize,
}

impl PriorityQueues {
    pub(crate) fn new(cfg: &QosConfig, queue_capacity: usize) -> Self {
        Self {
            heaps: std::array::from_fn(|_| BinaryHeap::new()),
            drain_weights: cfg.drain_weights,
            best_effort_floor: cfg.best_effort_floor.min(queue_capacity / 8),
            cursor: 0,
            budget: cfg.drain_weights[DRAIN_ORDER[0].index()].max(1),
            next_seq: 0,
            len: 0,
        }
    }

    /// Total queued requests across all levels.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued requests at `Standard` ∪ `BestEffort` — the migratable
    /// backlog. [`steal_least_urgent`](Self::steal_least_urgent) moves
    /// exactly these; `Interactive` never leaves its home shard, so the
    /// steal coordinator and the quarantine evacuator size their work
    /// from this count, not [`len`](Self::len).
    pub(crate) fn evacuable_len(&self) -> usize {
        self.heaps[ServiceLevel::Standard.index()].len()
            + self.heaps[ServiceLevel::BestEffort.index()].len()
    }

    /// Admits one request into its level's EDF heap.
    pub(crate) fn push(&mut self, request: QueuedRequest) {
        let level = request.level;
        let entry = EdfEntry {
            deadline: request.deadline,
            seq: self.next_seq,
            request,
        };
        self.next_seq += 1;
        self.heaps[level.index()].push(entry);
        self.len += 1;
    }

    /// Sheds one `BestEffort` request to make room for a higher level under
    /// saturation: the **least-urgent** entry (latest deadline, newest on
    /// ties) is dropped — the EDF-consistent choice, since the entry with
    /// the most slack is the cheapest promise to break, while requests
    /// already close to their deadline keep their place in line. Costs one
    /// O(n) scan + re-heapify of the `BestEffort` heap, paid only at
    /// saturation (where the alternative is dropping the arrival outright).
    /// Returns `None` when shedding would shrink the queued `BestEffort`
    /// class to (or below) its protected floor — including when nothing is
    /// queued.
    pub(crate) fn shed_best_effort(&mut self) -> Option<QueuedRequest> {
        let heap = &mut self.heaps[ServiceLevel::BestEffort.index()];
        if heap.len() <= self.best_effort_floor {
            return None;
        }
        let mut entries = std::mem::take(heap).into_vec();
        let victim_index = entries
            .iter()
            .enumerate()
            .max_by_key(|&(_, entry)| (entry.deadline, entry.seq))
            .map(|(i, _)| i)?;
        let victim = entries.swap_remove(victim_index);
        *heap = BinaryHeap::from(entries);
        self.len -= 1;
        Some(victim.request)
    }

    /// Forms one drain batch of up to `take` requests: weighted round-robin
    /// across levels (each round grants every level up to its drain weight,
    /// highest priority first), earliest-deadline-first within a level.
    /// Single-level traffic therefore drains in pure EDF order — FIFO when
    /// deadlines share one budget.
    ///
    /// The round-robin cursor carries over between calls, so small batches
    /// (`take` below a level's weight) consume a round across several
    /// batches instead of restarting at `Interactive` — every level keeps
    /// its share of the drain bandwidth no matter the batch size.
    pub(crate) fn pop_batch(&mut self, take: usize) -> Vec<QueuedRequest> {
        let mut out = Vec::with_capacity(take.min(self.len));
        while out.len() < take && self.len > 0 {
            let level = DRAIN_ORDER[self.cursor];
            if self.budget > 0 {
                if let Some(entry) = self.heaps[level.index()].pop() {
                    self.len -= 1;
                    self.budget -= 1;
                    out.push(entry.request);
                    continue;
                }
            }
            // Level out of budget or empty: move the round to the next one.
            self.cursor = (self.cursor + 1) % DRAIN_ORDER.len();
            self.budget = self.drain_weights[DRAIN_ORDER[self.cursor].index()].max(1);
        }
        out
    }

    /// Removes up to `max` of the **least-urgent** queued requests for
    /// cross-shard work stealing: latest deadline first (newest on ties)
    /// across `Standard` ∪ `BestEffort`. `Interactive` entries are never
    /// stolen — their deadlines are tight enough that a migration (queue
    /// hand-off plus the thief's batch formation) could itself cause the
    /// deadline inversion stealing exists to prevent, so they always drain
    /// on their home shard. The surviving entries are re-heapified, so
    /// drain order afterwards is still EDF within each level.
    ///
    /// Costs one O(n log n) rebuild of the two sheddable heaps, paid only
    /// when the steal coordinator fires (imbalance, not the hot path).
    pub(crate) fn steal_least_urgent(&mut self, max: usize) -> Vec<QueuedRequest> {
        if max == 0 || self.len == 0 {
            return Vec::new();
        }
        let mut entries: Vec<EdfEntry> = Vec::new();
        for level in [ServiceLevel::Standard, ServiceLevel::BestEffort] {
            entries.extend(std::mem::take(&mut self.heaps[level.index()]).into_vec());
        }
        // Least urgent first: latest deadline, newest admission on ties —
        // the EDF tail, exactly the entries with the most slack to spend
        // on a migration.
        entries.sort_by_key(|entry| std::cmp::Reverse((entry.deadline, entry.seq)));
        let take = max.min(entries.len());
        let stolen: Vec<QueuedRequest> = entries.drain(..take).map(|entry| entry.request).collect();
        for entry in entries {
            self.heaps[entry.request.level.index()].push(entry);
        }
        self.len -= stolen.len();
        stolen
    }

    /// Empties every queue (shutdown), returning the abandoned requests.
    pub(crate) fn drain_all(&mut self) -> Vec<QueuedRequest> {
        let mut out = Vec::with_capacity(self.len);
        for heap in &mut self.heaps {
            out.extend(heap.drain().map(|entry| entry.request));
        }
        self.len = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn queued(level: ServiceLevel, deadline: Instant) -> QueuedRequest {
        QueuedRequest {
            features: Vec::new(),
            level,
            admitted_at: Instant::now(),
            deadline,
            done: Arc::new(crate::runtime::Completion::default()),
        }
    }

    #[test]
    fn level_order_and_indexing() {
        assert!(ServiceLevel::BestEffort < ServiceLevel::Standard);
        assert!(ServiceLevel::Standard < ServiceLevel::Interactive);
        for level in ServiceLevel::ALL {
            assert_eq!(ServiceLevel::from_index(level.index()), Some(level));
        }
        assert_eq!(ServiceLevel::from_index(3), None);
        assert_eq!(ServiceLevel::Interactive.to_string(), "interactive");
    }

    #[test]
    fn edf_within_a_level_and_fifo_on_ties() {
        let cfg = QosConfig::default();
        let mut queues = PriorityQueues::new(&cfg, 4);
        let base = Instant::now();
        // Out-of-deadline-order arrival within one level.
        queues.push(queued(
            ServiceLevel::Standard,
            base + Duration::from_millis(30),
        ));
        queues.push(queued(
            ServiceLevel::Standard,
            base + Duration::from_millis(10),
        ));
        queues.push(queued(
            ServiceLevel::Standard,
            base + Duration::from_millis(20),
        ));
        let batch = queues.pop_batch(3);
        let deadlines: Vec<Instant> = batch.iter().map(|r| r.deadline).collect();
        assert_eq!(
            deadlines,
            vec![
                base + Duration::from_millis(10),
                base + Duration::from_millis(20),
                base + Duration::from_millis(30)
            ]
        );
        // Equal deadlines drain FIFO by admission order.
        let mut queues = PriorityQueues::new(&cfg, 4);
        for i in 0..4 {
            let mut request = queued(ServiceLevel::Standard, base);
            request.features = vec![i as f64];
            queues.push(request);
        }
        let order: Vec<f64> = queues.pop_batch(4).iter().map(|r| r.features[0]).collect();
        assert_eq!(order, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn weighted_round_robin_across_levels() {
        let cfg = QosConfig::default(); // weights: I=8, S=4, B=1
        let mut queues = PriorityQueues::new(&cfg, 4);
        let base = Instant::now();
        for _ in 0..20 {
            queues.push(queued(ServiceLevel::Interactive, base));
            queues.push(queued(ServiceLevel::Standard, base));
            queues.push(queued(ServiceLevel::BestEffort, base));
        }
        let batch = queues.pop_batch(13); // exactly one WRR round
        let count = |level: ServiceLevel| batch.iter().filter(|r| r.level == level).count();
        assert_eq!(count(ServiceLevel::Interactive), 8);
        assert_eq!(count(ServiceLevel::Standard), 4);
        assert_eq!(count(ServiceLevel::BestEffort), 1);
        // The round starts with the highest priority level.
        assert_eq!(batch[0].level, ServiceLevel::Interactive);
        // BestEffort is never starved across rounds.
        let rest = queues.pop_batch(26); // two more rounds
        assert_eq!(
            rest.iter()
                .filter(|r| r.level == ServiceLevel::BestEffort)
                .count(),
            2
        );
    }

    #[test]
    fn small_batches_do_not_starve_lower_levels() {
        // A batch size at or below the Interactive drain weight must not
        // restart the WRR round every batch: the cursor persists, so
        // Standard and BestEffort still get their share of the bandwidth.
        let cfg = QosConfig::default(); // weights: I=8, S=4, B=1
        let mut queues = PriorityQueues::new(&cfg, 4);
        let base = Instant::now();
        for _ in 0..40 {
            queues.push(queued(ServiceLevel::Interactive, base));
        }
        for _ in 0..6 {
            queues.push(queued(ServiceLevel::Standard, base));
        }
        for _ in 0..3 {
            queues.push(queued(ServiceLevel::BestEffort, base));
        }
        // Drain in batches of 4 (half the Interactive weight). Over 13
        // rounds' worth of pops, every level must appear.
        let mut drained = [0usize; ServiceLevel::COUNT];
        for _ in 0..7 {
            for request in queues.pop_batch(4) {
                drained[request.level.index()] += 1;
            }
        }
        // 28 pops span two-plus WRR rounds: all 6 Standard and at least 2
        // BestEffort must have drained despite the Interactive backlog.
        assert_eq!(drained.iter().sum::<usize>(), 28);
        assert!(
            drained[ServiceLevel::Standard.index()] >= 6,
            "standard starved: {drained:?}"
        );
        assert!(
            drained[ServiceLevel::BestEffort.index()] >= 2,
            "best-effort starved: {drained:?}"
        );
    }

    #[test]
    fn shedding_takes_best_effort_only_and_least_urgent_first() {
        let cfg = QosConfig::default();
        let mut queues = PriorityQueues::new(&cfg, 4);
        let base = Instant::now();
        queues.push(queued(ServiceLevel::Interactive, base));
        queues.push(queued(
            ServiceLevel::BestEffort,
            base + Duration::from_millis(5),
        ));
        queues.push(queued(
            ServiceLevel::BestEffort,
            base + Duration::from_millis(1),
        ));
        queues.push(queued(
            ServiceLevel::BestEffort,
            base + Duration::from_millis(3),
        ));
        // The entry with the most slack (latest deadline) is evicted first;
        // the most urgent one survives longest.
        let shed = queues.shed_best_effort().unwrap();
        assert_eq!(shed.level, ServiceLevel::BestEffort);
        assert_eq!(shed.deadline, base + Duration::from_millis(5));
        assert_eq!(
            queues.shed_best_effort().unwrap().deadline,
            base + Duration::from_millis(3)
        );
        // The survivor still drains (after the Interactive entry) in EDF
        // order once the heap is rebuilt.
        let drained = queues.pop_batch(2);
        assert_eq!(drained[0].level, ServiceLevel::Interactive);
        assert_eq!(drained[1].deadline, base + Duration::from_millis(1));
        // Nothing left to shed.
        assert!(queues.shed_best_effort().is_none());
        assert!(queues.is_empty());
    }

    #[test]
    fn protected_floor_stops_shedding_but_not_draining() {
        // Capacity 1024 → effective floor min(128, 1024/8) = 128.
        let cfg = QosConfig::default();
        let mut queues = PriorityQueues::new(&cfg, 1024);
        let base = Instant::now();
        for i in 0..130 {
            queues.push(queued(
                ServiceLevel::BestEffort,
                base + Duration::from_millis(i),
            ));
        }
        // Only the overflow beyond the floor is sheddable.
        assert!(queues.shed_best_effort().is_some());
        assert!(queues.shed_best_effort().is_some());
        assert!(queues.shed_best_effort().is_none());
        assert_eq!(queues.len(), 128);
        // The floor never blocks draining.
        assert_eq!(queues.pop_batch(128).len(), 128);
        assert!(queues.is_empty());
        // A small queue capacity clamps the floor to zero: shedding works
        // on the first queued entry.
        let mut small = PriorityQueues::new(&cfg, 4);
        small.push(queued(ServiceLevel::BestEffort, base));
        assert!(small.shed_best_effort().is_some());
    }

    #[test]
    fn stealing_takes_the_least_urgent_and_never_interactive() {
        let cfg = QosConfig::default();
        let mut queues = PriorityQueues::new(&cfg, 64);
        let base = Instant::now();
        queues.push(queued(ServiceLevel::Interactive, base));
        queues.push(queued(
            ServiceLevel::Standard,
            base + Duration::from_millis(50),
        ));
        queues.push(queued(
            ServiceLevel::Standard,
            base + Duration::from_millis(10),
        ));
        queues.push(queued(
            ServiceLevel::BestEffort,
            base + Duration::from_millis(250),
        ));
        // The overall latest deadline goes first, regardless of level.
        let stolen = queues.steal_least_urgent(2);
        assert_eq!(stolen.len(), 2);
        assert_eq!(stolen[0].deadline, base + Duration::from_millis(250));
        assert_eq!(stolen[0].level, ServiceLevel::BestEffort);
        assert_eq!(stolen[1].deadline, base + Duration::from_millis(50));
        assert_eq!(stolen[1].level, ServiceLevel::Standard);
        assert_eq!(queues.len(), 2);
        // Asking for more than the sheddable backlog leaves Interactive
        // untouched.
        let rest = queues.steal_least_urgent(10);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].level, ServiceLevel::Standard);
        assert_eq!(queues.len(), 1);
        let remaining = queues.pop_batch(10);
        assert_eq!(remaining.len(), 1);
        assert_eq!(remaining[0].level, ServiceLevel::Interactive);
        // An empty queue (or a zero budget) steals nothing.
        assert!(queues.steal_least_urgent(4).is_empty());
        queues.push(queued(ServiceLevel::Standard, base));
        assert!(queues.steal_least_urgent(0).is_empty());
    }

    #[test]
    fn stealing_preserves_edf_order_of_survivors() {
        let cfg = QosConfig::default();
        let mut queues = PriorityQueues::new(&cfg, 64);
        let base = Instant::now();
        for ms in [40u64, 10, 30, 20, 50] {
            queues.push(queued(
                ServiceLevel::Standard,
                base + Duration::from_millis(ms),
            ));
        }
        let stolen = queues.steal_least_urgent(2); // takes 50 and 40
        assert_eq!(stolen[0].deadline, base + Duration::from_millis(50));
        assert_eq!(stolen[1].deadline, base + Duration::from_millis(40));
        let drained: Vec<Instant> = queues.pop_batch(3).iter().map(|r| r.deadline).collect();
        assert_eq!(
            drained,
            vec![
                base + Duration::from_millis(10),
                base + Duration::from_millis(20),
                base + Duration::from_millis(30)
            ]
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// Steal-victim selection never picks an `Interactive` entry, no
        /// matter the queue mix or how much is asked for, and accounting
        /// stays exact: stolen + remaining = pushed.
        #[test]
        fn steal_victims_are_never_interactive(
            levels in proptest::prop::collection::vec(0usize..3, 1..40),
            max in 0usize..48,
        ) {
            let cfg = QosConfig::default();
            let mut queues = PriorityQueues::new(&cfg, 64);
            let base = Instant::now();
            let mut interactive_pushed = 0usize;
            for (i, &level_index) in levels.iter().enumerate() {
                let level = ServiceLevel::from_index(level_index).unwrap();
                if level == ServiceLevel::Interactive {
                    interactive_pushed += 1;
                }
                queues.push(queued(level, base + Duration::from_millis(i as u64 % 7)));
            }
            let stolen = queues.steal_least_urgent(max);
            proptest::prop_assert!(
                stolen.iter().all(|r| r.level != ServiceLevel::Interactive)
            );
            proptest::prop_assert!(stolen.len() <= max);
            proptest::prop_assert_eq!(stolen.len() + queues.len(), levels.len());
            // Every Interactive entry is still drainable from its heap.
            let drained = queues.pop_batch(levels.len());
            let interactive_left = drained
                .iter()
                .filter(|r| r.level == ServiceLevel::Interactive)
                .count();
            proptest::prop_assert_eq!(interactive_left, interactive_pushed);
        }
    }

    #[test]
    fn drain_all_empties_every_level() {
        let cfg = QosConfig::default();
        let mut queues = PriorityQueues::new(&cfg, 4);
        let base = Instant::now();
        for level in ServiceLevel::ALL {
            queues.push(queued(level, base));
            queues.push(queued(level, base));
        }
        assert_eq!(queues.len(), 6);
        let drained = queues.drain_all();
        assert_eq!(drained.len(), 6);
        assert!(queues.is_empty());
    }

    #[test]
    fn price_quotes_order_by_level_strictness() {
        let cfg = QosConfig::default();
        // A saturating curve: t(n) = 30 + 470/n sampled over 1..=48.
        let curve: Vec<(usize, f64)> = (1..=48).map(|n| (n, 30.0 + 470.0 / n as f64)).collect();
        let interactive = price_quote(&curve, ServiceLevel::Interactive, &cfg).unwrap();
        let standard = price_quote(&curve, ServiceLevel::Standard, &cfg).unwrap();
        let best_effort = price_quote(&curve, ServiceLevel::BestEffort, &cfg).unwrap();
        assert!(interactive.attainable && standard.attainable && best_effort.attainable);
        // Stricter promises buy more executors at a higher price.
        assert!(interactive.executors > standard.executors);
        assert!(standard.executors >= best_effort.executors);
        assert!(interactive.price > standard.price);
        assert!(standard.price >= best_effort.price);
        // The multiplier is anchored at the cheapest point.
        assert!((best_effort.multiplier - 1.0).abs() < 1e-12);
        assert!(interactive.multiplier > 1.0);
        // Predicted time orders the other way.
        assert!(interactive.predicted_seconds < best_effort.predicted_seconds);
    }

    #[test]
    fn unattainable_target_falls_back_to_fastest_point() {
        let cfg = QosConfig {
            slowdown_targets: {
                let mut t = QosConfig::default().slowdown_targets;
                t[ServiceLevel::Interactive.index()] = 0.5; // below t_min: impossible
                t
            },
            ..QosConfig::default()
        };
        let curve = vec![(1, 100.0), (2, 60.0), (4, 40.0)];
        let quote = price_quote(&curve, ServiceLevel::Interactive, &cfg).unwrap();
        assert!(!quote.attainable);
        assert_eq!(quote.executors, 4);
        assert_eq!(price_quote(&[], ServiceLevel::Standard, &cfg), None);
    }
}
