//! Observability wiring for the scoring runtime.
//!
//! Observability is **opt-in and zero-cost when off**: a runtime built
//! without [`ObsConfig`] carries `None` and every instrumentation site is
//! a single branch on that `Option` — no allocation, no atomics, no
//! event formatting. With it, the runtime
//!
//! * registers one [`ae_obs::ShardedHistogram`] of fulfillment latency
//!   per [`ServiceLevel`] (named `{prefix}.latency_ns.{level}`) in the
//!   supplied [`MetricsRegistry`],
//! * publishes its [`crate::RuntimeStats`] counters and the batch-size
//!   histogram through a [`ae_obs::MetricSource`] polled at snapshot
//!   time (named `{prefix}.completed`, `{prefix}.level.{level}.shed`,
//!   `{prefix}.batch_size`, …), so the existing hot-path counters are the
//!   single source of truth, and
//! * records typed [`ae_obs::Event`]s (admission, shed, drop, demotion,
//!   throttle, batch drain, breaker transitions, model swaps, shutdown)
//!   into a bounded [`EventSink`] reachable via
//!   [`crate::ScoringRuntime::observability`].
//!
//! Give each runtime sharing one registry a distinct `prefix`, otherwise
//! their metric names collide (histograms would be silently shared and
//! the stats source would emit duplicate names).

use std::sync::Arc;
use std::time::Duration;

use ae_obs::{EventSink, HistogramSnapshot, Ladder, MetricsRegistry, ShardedHistogram};

use crate::qos::ServiceLevel;

/// Opt-in observability for a [`crate::ScoringRuntime`]: where metrics
/// go and how much event history to keep.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// The metric namespace this runtime registers its instruments in
    /// and publishes its stats through.
    pub registry: Arc<MetricsRegistry>,
    /// Capacity of the bounded event sink (events beyond it evict the
    /// oldest per shard and are counted, never blocking the hot path).
    pub event_capacity: usize,
    /// Metric-name prefix; must be unique per runtime within `registry`.
    pub prefix: String,
}

impl ObsConfig {
    /// Observability into `registry` with the default `"serve"` prefix
    /// and room for 65 536 events.
    pub fn new(registry: Arc<MetricsRegistry>) -> Self {
        Self {
            registry,
            event_capacity: 65_536,
            prefix: "serve".to_string(),
        }
    }

    /// Overrides the event-sink capacity (clamped to at least 1).
    pub fn with_event_capacity(mut self, capacity: usize) -> Self {
        self.event_capacity = capacity.max(1);
        self
    }

    /// Overrides the metric-name prefix.
    pub fn with_prefix(mut self, prefix: impl Into<String>) -> Self {
        self.prefix = prefix.into();
        self
    }
}

/// Live observability handles of a running [`crate::ScoringRuntime`],
/// returned by [`crate::ScoringRuntime::observability`].
#[derive(Debug)]
pub struct RuntimeObs {
    events: EventSink,
    latency: [Arc<ShardedHistogram>; ServiceLevel::COUNT],
}

impl RuntimeObs {
    pub(crate) fn new(cfg: &ObsConfig) -> Self {
        let latency = std::array::from_fn(|i| {
            let level = ServiceLevel::from_index(i).expect("level index in range");
            cfg.registry.histogram(
                &format!("{}.latency_ns.{}", cfg.prefix, level.name()),
                Ladder::latency(),
            )
        });
        Self {
            events: EventSink::new(cfg.event_capacity),
            latency,
        }
    }

    /// The runtime's bounded event sink (drain or snapshot it for typed
    /// events; see [`ae_obs::EventKind`] for the vocabulary).
    pub fn events(&self) -> &EventSink {
        &self.events
    }

    /// Merged snapshot of the fulfillment-latency histogram of `level`
    /// (queue wait + scoring for queued requests, pure scoring for
    /// inline ones).
    pub fn latency(&self, level: ServiceLevel) -> HistogramSnapshot {
        self.latency[level.index()].snapshot()
    }

    pub(crate) fn record_latency(&self, level: ServiceLevel, latency: Duration) {
        self.latency[level.index()].record_duration(latency);
    }
}
