//! Runtime counters, batch-size accounting, and latency summaries.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex as StdMutex;
use std::time::Duration;

/// Interior counters shared between workers and submitters.
#[derive(Debug, Default)]
pub(crate) struct StatsInner {
    completed: AtomicU64,
    inline_scored: AtomicU64,
    batches: AtomicU64,
    dropped: AtomicU64,
    errors: AtomicU64,
    /// `histogram[i]` counts worker batches of size `i + 1`; sizes beyond
    /// the vector (after a config change) land in the last bucket.
    histogram: StdMutex<Vec<u64>>,
}

impl StatsInner {
    pub(crate) fn new(max_batch: usize) -> Self {
        Self {
            histogram: StdMutex::new(vec![0; max_batch.max(1)]),
            ..Default::default()
        }
    }

    pub(crate) fn record_inline(&self) {
        self.inline_scored.fetch_add(1, Ordering::Relaxed);
        self.completed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_batch(&self, size: usize, failed: bool) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        if failed {
            self.errors.fetch_add(size as u64, Ordering::Relaxed);
        } else {
            self.completed.fetch_add(size as u64, Ordering::Relaxed);
        }
        let mut hist = self
            .histogram
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        let bucket = size.clamp(1, hist.len()) - 1;
        hist[bucket] += 1;
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dropped(&self) {
        self.dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> RuntimeStats {
        RuntimeStats {
            completed: self.completed.load(Ordering::Relaxed),
            inline_scored: self.inline_scored.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batch_size_histogram: self
                .histogram
                .lock()
                .unwrap_or_else(|poison| poison.into_inner())
                .clone(),
        }
    }
}

/// A point-in-time snapshot of the runtime's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Successfully scored requests (inline + batched).
    pub completed: u64,
    /// Requests served on the submitting thread via the idle shortcut.
    pub inline_scored: u64,
    /// Worker batches processed.
    pub batches: u64,
    /// Requests rejected by `try_score` because the queue was full.
    pub dropped: u64,
    /// Requests that completed with an error.
    pub errors: u64,
    /// `batch_size_histogram[i]` = number of worker batches of size `i + 1`.
    pub batch_size_histogram: Vec<u64>,
}

impl RuntimeStats {
    /// Requests that went through worker batches (completed minus inline).
    pub fn batched(&self) -> u64 {
        self.completed.saturating_sub(self.inline_scored)
    }

    /// Mean worker-batch size (0.0 when no batches ran).
    pub fn mean_batch_size(&self) -> f64 {
        let batches: u64 = self.batch_size_histogram.iter().sum();
        if batches == 0 {
            return 0.0;
        }
        let requests: u64 = self
            .batch_size_histogram
            .iter()
            .enumerate()
            .map(|(i, &count)| (i as u64 + 1) * count)
            .sum();
        requests as f64 / batches as f64
    }
}

/// Client-side latency collector: each load-generator thread records its
/// per-request latencies, then recorders are merged and summarized into
/// p50/p99 for the serving benchmark.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ns: Vec<u64>,
}

impl LatencyRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder with room for `n` samples.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            samples_ns: Vec::with_capacity(n),
        }
    }

    /// Records one request latency.
    pub fn record(&mut self, latency: Duration) {
        self.samples_ns.push(latency.as_nanos() as u64);
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples_ns.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ns.is_empty()
    }

    /// Moves another recorder's samples into this one.
    pub fn merge(&mut self, other: LatencyRecorder) {
        self.samples_ns.extend(other.samples_ns);
    }

    /// Sorts the samples and computes count/mean/p50/p99/max.
    pub fn summarize(mut self) -> LatencySummary {
        if self.samples_ns.is_empty() {
            return LatencySummary::default();
        }
        self.samples_ns.sort_unstable();
        let count = self.samples_ns.len();
        let total: u128 = self.samples_ns.iter().map(|&ns| ns as u128).sum();
        let at = |p: f64| {
            // Nearest-rank percentile.
            let rank = ((p * count as f64).ceil() as usize).clamp(1, count);
            Duration::from_nanos(self.samples_ns[rank - 1])
        };
        LatencySummary {
            count,
            mean: Duration::from_nanos((total / count as u128) as u64),
            p50: at(0.50),
            p99: at(0.99),
            max: Duration::from_nanos(*self.samples_ns.last().expect("non-empty")),
        }
    }
}

/// Percentile summary of a set of request latencies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: Duration,
    /// Median (nearest-rank).
    pub p50: Duration,
    /// 99th percentile (nearest-rank).
    pub p99: Duration,
    /// Worst observed latency.
    pub max: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_and_mean_batch_size() {
        let inner = StatsInner::new(4);
        inner.record_batch(1, false);
        inner.record_batch(3, false);
        inner.record_batch(3, false);
        inner.record_batch(9, false); // clamped into the last bucket
        let snap = inner.snapshot();
        assert_eq!(snap.batch_size_histogram, vec![1, 0, 2, 1]);
        assert_eq!(snap.completed, 16);
        assert_eq!(snap.batches, 4);
        // Mean over the histogram uses clamped sizes: (1 + 3 + 3 + 4) / 4.
        assert!((snap.mean_batch_size() - 2.75).abs() < 1e-12);
    }

    #[test]
    fn inline_and_batched_accounting() {
        let inner = StatsInner::new(8);
        inner.record_inline();
        inner.record_inline();
        inner.record_batch(5, false);
        inner.record_batch(2, true);
        inner.record_error();
        inner.record_dropped();
        let snap = inner.snapshot();
        assert_eq!(snap.completed, 7);
        assert_eq!(snap.inline_scored, 2);
        assert_eq!(snap.batched(), 5);
        assert_eq!(snap.errors, 3);
        assert_eq!(snap.dropped, 1);
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut rec = LatencyRecorder::with_capacity(100);
        for i in 1..=100u64 {
            rec.record(Duration::from_micros(i));
        }
        let mut other = LatencyRecorder::new();
        other.record(Duration::from_micros(1000));
        rec.merge(other);
        assert_eq!(rec.len(), 101);
        let summary = rec.summarize();
        assert_eq!(summary.count, 101);
        assert_eq!(summary.p50, Duration::from_micros(51));
        assert_eq!(summary.p99, Duration::from_micros(100));
        assert_eq!(summary.max, Duration::from_micros(1000));
        assert!(summary.mean >= Duration::from_micros(50));
    }

    #[test]
    fn empty_recorder_summarizes_to_zero() {
        let summary = LatencyRecorder::new().summarize();
        assert_eq!(summary.count, 0);
        assert_eq!(summary.p99, Duration::ZERO);
    }
}
